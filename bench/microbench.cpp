// Google-benchmark microbenchmarks of the hot kernels: state push, IPD
// rounds by memory depth and lookup mode, analytic evaluators, Fermi rule,
// and the mini-runtime's broadcast.
#include <benchmark/benchmark.h>

#include "core/engine.hpp"
#include "core/fitness.hpp"
#include "game/ipd.hpp"
#include "game/markov.hpp"
#include "game/named.hpp"
#include "par/runtime.hpp"
#include "pop/fermi.hpp"
#include "util/rng.hpp"

namespace {

using namespace egt;

void BM_StatePush(benchmark::State& state) {
  const game::StateCodec codec(static_cast<int>(state.range(0)));
  game::State s = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    s = codec.push(s, game::from_bit(static_cast<int>(i & 1)),
                   game::from_bit(static_cast<int>((i >> 1) & 1)));
    benchmark::DoNotOptimize(s);
    ++i;
  }
}
BENCHMARK(BM_StatePush)->Arg(1)->Arg(6);

void BM_IpdRound(benchmark::State& state) {
  const int memory = static_cast<int>(state.range(0));
  const auto mode = state.range(1) == 0 ? game::LookupMode::Indexed
                                        : game::LookupMode::LinearSearch;
  game::IpdParams params;
  params.rounds = 512;
  const game::IpdEngine engine(memory, params, mode);
  util::Xoshiro256 rng(1);
  const auto a = game::PureStrategy::random(memory, rng);
  const auto b = game::PureStrategy::random(memory, rng);
  std::uint64_t g = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.play(a, b, util::StreamRng(0, ++g)).payoff_a);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          params.rounds);
}
BENCHMARK(BM_IpdRound)
    ->Args({1, 0})
    ->Args({3, 0})
    ->Args({6, 0})
    ->Args({1, 1})
    ->Args({3, 1})
    ->Args({6, 1});

void BM_MixedIpdRound(benchmark::State& state) {
  game::IpdParams params;
  params.rounds = 512;
  params.noise = 0.05;
  const game::IpdEngine engine(1, params);
  const game::Strategy a = game::named::generous_tit_for_tat(1, 0.3);
  const game::Strategy b = game::named::random_strategy(1, 0.5);
  std::uint64_t g = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.play(a, b, util::StreamRng(0, ++g)).payoff_a);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          params.rounds);
}
BENCHMARK(BM_MixedIpdRound);

void BM_ExactPureGame(benchmark::State& state) {
  const int memory = static_cast<int>(state.range(0));
  util::Xoshiro256 rng(2);
  const auto a = game::PureStrategy::random(memory, rng);
  const auto b = game::PureStrategy::random(memory, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        game::markov::exact_pure_game(a, b, game::paper_payoff(), 200)
            .payoff_a);
  }
}
BENCHMARK(BM_ExactPureGame)->Arg(1)->Arg(6);

void BM_ExpectedGameMem1(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  const game::Strategy a = game::MixedStrategy::random(1, rng);
  const game::Strategy b = game::MixedStrategy::random(1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        game::markov::expected_game_mem1(a, b, game::paper_payoff(), 200, 0.05)
            .payoff_a);
  }
}
BENCHMARK(BM_ExpectedGameMem1);

void BM_Fermi(benchmark::State& state) {
  double x = 0.0;
  for (auto _ : state) {
    x += 1e-9;
    benchmark::DoNotOptimize(pop::fermi_probability(3.0, x, 1.0));
  }
}
BENCHMARK(BM_Fermi);

void BM_GenerationFitnessFullBlock(benchmark::State& state) {
  core::SimConfig cfg;
  cfg.ssets = 32;
  cfg.memory = 1;
  cfg.fitness_mode = core::FitnessMode::Sampled;
  const auto pop = core::make_initial_population(cfg);
  core::BlockFitness fit(cfg, 0, cfg.ssets);
  std::uint64_t gen = 0;
  for (auto _ : state) {
    fit.begin_generation(pop, ++gen);
    benchmark::DoNotOptimize(fit.block().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          cfg.ssets * (cfg.ssets - 1));
}
BENCHMARK(BM_GenerationFitnessFullBlock);

void BM_RuntimeBcast(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const std::size_t bytes = 512;  // a memory-six pure strategy
  for (auto _ : state) {
    par::run_ranks(nranks, [&](par::Comm& comm) {
      std::vector<std::byte> payload;
      if (comm.rank() == 0) payload.resize(bytes);
      for (int i = 0; i < 16; ++i) comm.bcast(payload, 0);
    });
  }
}
BENCHMARK(BM_RuntimeBcast)->Arg(2)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
