// Ablation: update rules — the paper's pairwise comparison vs Moran
// birth-death.
//
// Scientifically both select for fitness; computationally they differ in
// what Nature must know per learning event: two fitness values (PC) versus
// the whole population's fitness vector (Moran). This bench measures the
// difference twice — real traffic on the mini message-passing runtime, and
// predicted cost at Blue Gene scale from the machine model — making the
// case for the paper's design choice.
#include <iostream>

#include "bench_common.hpp"

#include "core/parallel_engine.hpp"
#include "pop/stats.hpp"

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("ablation_update_rules",
                "pairwise comparison (paper) vs Moran birth-death");
  auto ssets = cli.opt<int>("ssets", 48, "number of SSets");
  auto gens = cli.opt<std::int64_t>("generations", 500, "generations");
  auto ranks = cli.opt<int>("ranks", 8, "ranks (threads)");
  cli.parse(argc, argv);

  core::SimConfig cfg;
  cfg.ssets = static_cast<pop::SSetId>(*ssets);
  cfg.memory = 1;
  cfg.generations = static_cast<std::uint64_t>(*gens);
  cfg.pc_rate = 0.2;
  cfg.mutation_rate = 0.05;
  cfg.beta = 5.0;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  cfg.seed = 31;

  std::cout << "update-rule ablation — " << cfg.summary() << ", " << *ranks
            << " ranks\n\n";

  util::TextTable real({"rule", "p2p bytes", "p2p messages",
                        "dominant share", "coop prob"});
  for (auto rule :
       {pop::UpdateRule::PairwiseComparison, pop::UpdateRule::Moran}) {
    cfg.update_rule = rule;
    const auto res = core::run_parallel(cfg, *ranks);
    char share[16], coop[16];
    std::snprintf(share, sizeof share, "%.2f",
                  pop::dominant_fraction(res.population));
    std::snprintf(coop, sizeof coop, "%.3f",
                  pop::mean_coop_probability(res.population));
    real.add_row({rule == pop::UpdateRule::Moran ? "Moran" : "pairwise (paper)",
                  std::to_string(res.traffic.bytes),
                  std::to_string(res.traffic.messages), share, coop});
  }
  real.print(std::cout);

  // At Blue Gene scale, the machine model quantifies the gap.
  const machine::PerfSimulator sim(machine::bluegene_p(),
                                   machine::default_round_costs());
  machine::Workload w;
  w.memory = 6;
  w.ssets = 4096 * 1024;
  w.games_per_sset = 1;
  w.generations = 1000;
  w.pc_rate = 0.01;
  std::cout << "\nmodelled at 262,144 BG/P processors (4.2M SSets):\n";
  util::TextTable model({"rule", "total (s)", "comm (s)", "comm %"});
  for (bool moran : {false, true}) {
    w.moran_rule = moran;
    const auto rep = sim.simulate(w, 262144);
    model.add_row({moran ? "Moran" : "pairwise (paper)",
                   bench::seconds_str(rep.total_seconds),
                   bench::seconds_str(rep.comm_seconds),
                   bench::pct_str(rep.comm_fraction())});
  }
  model.print(std::cout);
  std::cout << "\nreading: pairwise comparison keeps the population-"
               "dynamics tier latency-bound; Moran's per-event fitness "
               "gather would dominate the runtime at scale.\n";
  return 0;
}
