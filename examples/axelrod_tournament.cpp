// Axelrod-style round-robin tournament (paper §III-B): the named strategies
// of the cooperation literature play everyone else; with errors switched on
// the ranking reshuffles — the effect that motivates memory-n strategies.
//
//   ./axelrod_tournament [--noise 0.02] [--memory 2] [--repetitions 5]
#include <cstdio>
#include <iostream>

#include "game/tournament.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("axelrod_tournament", "round-robin of named strategies");
  auto memory = cli.opt<int>("memory", 1, "memory depth (1..6)");
  auto noise = cli.opt<double>("noise", 0.0, "execution error rate");
  auto reps = cli.opt<int>("repetitions", 5,
                           "games per pair (Axelrod played five)");
  cli.parse(argc, argv);

  const auto entries = game::named::full_catalog(*memory);
  game::TournamentConfig cfg;
  cfg.game.payoff = game::axelrod_payoff();  // Axelrod's [3,0,5,1]
  cfg.game.noise = *noise;
  cfg.repetitions = static_cast<std::uint32_t>(*reps);
  cfg.include_self_play = false;

  std::printf("Axelrod tournament: %zu strategies, memory-%d, noise %.3f, "
              "%d repetitions\n\n",
              entries.size(), *memory, *noise, *reps);
  const auto noiseless = run_tournament(entries, *memory, cfg);
  std::cout << format_ranking(noiseless);
  std::printf(
      "\nwith unconditional cooperators on the menu, ALLD feasts — "
      "Axelrod's point was that *fields of retaliators* flip this:\n\n");

  // The same tournament without the exploitable entries.
  std::vector<game::named::NamedStrategy> retaliators;
  for (const auto& e : entries) {
    if (e.name != "ALLC" && e.name != "FBF" && e.name != "RANDOM") {
      retaliators.push_back(e);
    }
  }
  const auto guarded = run_tournament(retaliators, *memory, cfg);
  std::cout << format_ranking(guarded);

  if (*noise == 0.0) {
    // Show the paper's §III-E point without extra flags: repeat with errors.
    cfg.game.noise = 0.02;
    std::printf("\nretaliator field with 2%% execution errors:\n");
    const auto noisy = run_tournament(retaliators, *memory, cfg);
    std::cout << format_ranking(noisy);
    std::printf(
        "\nerrors reshuffle the table: TFT pairs dissolve into feuds "
        "(watch its cooperation rate drop) while forgiving rules (CTFT, "
        "GTFT) keep cooperating. Which rule *wins* depends on the field — "
        "exactly why round robins are not enough and the paper simulates "
        "evolving populations (§III-E, §VI-A).\n");
  }
  return 0;
}
