// Zero-determinant extortion (Press & Dyson 2012) meets evolution: an
// extortioner beats every opponent one-on-one, yet in an evolving
// population the WSLS-like cooperators the paper's Fig. 2 discovers refuse
// to be exploited and extortion dies out — a nice coda to the paper's
// validation study using the same machinery.
//
//   ./extortion [--chi 3] [--generations 2e5]
#include <cstdio>
#include <iostream>

#include "analysis/coop.hpp"
#include "core/engine.hpp"
#include "game/markov.hpp"
#include "game/named.hpp"
#include "game/zd.hpp"
#include "pop/stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("extortion", "zero-determinant extortion vs evolution");
  auto chi = cli.opt<double>("chi", 3.0, "extortion factor (>= 1)");
  auto gens = cli.opt<std::int64_t>("generations", 200000, "generations");
  auto ssets = cli.opt<int>("ssets", 32, "number of SSets");
  cli.parse(argc, argv);

  const auto payoff = game::paper_payoff();
  const double phi = 0.6 * game::zd::max_phi_extortionate(payoff, *chi);
  const auto probs = game::zd::extortionate(payoff, *chi, phi);
  if (!probs) {
    std::fprintf(stderr, "no valid extortionate strategy for chi=%g\n", *chi);
    return 1;
  }
  const game::Strategy extortioner = game::zd::to_memory_one(*probs);

  // --- 1. one-on-one: the extortioner cannot lose ------------------------
  std::printf("extortionate ZD strategy (chi=%.1f): p = (%.3f, %.3f, %.3f, "
              "%.3f)\n\n",
              *chi, probs->p_cc, probs->p_cd, probs->p_dc, probs->p_dd);
  util::TextTable table({"opponent", "extortioner payoff", "opponent payoff",
                         "surplus ratio"});
  for (const auto& entry : game::named::full_catalog(1)) {
    const auto out = game::markov::stationary_mem1(extortioner,
                                                   entry.strategy, payoff,
                                                   0.0);
    char a[16], b[16], r[16];
    std::snprintf(a, sizeof a, "%.3f", out.payoff_a);
    std::snprintf(b, sizeof b, "%.3f", out.payoff_b);
    const double sa = out.payoff_a - payoff.punishment;
    const double sb = out.payoff_b - payoff.punishment;
    if (sb > 1e-9) {
      std::snprintf(r, sizeof r, "%.2f", sa / sb);
    } else {
      std::snprintf(r, sizeof r, "-");
    }
    table.add_row({entry.name, a, b, r});
  }
  table.print(std::cout);
  std::printf("\n(the surplus ratio equals chi whenever the opponent earns "
              "more than P: the enforced linear relation)\n");

  // --- 2. evolution: extortion in a noisy evolving population ------------
  core::SimConfig cfg;
  cfg.memory = 1;
  cfg.ssets = static_cast<pop::SSetId>(*ssets);
  cfg.generations = static_cast<std::uint64_t>(*gens);
  cfg.space = pop::StrategySpace::Mixed;
  cfg.mutation_kernel = pop::MutationKernel::UShapedProbs;
  cfg.game.noise = 0.02;
  cfg.pc_rate = 1.0;
  cfg.mutation_rate = 0.02;
  cfg.beta = 10.0;
  cfg.seed = 2012;  // Press & Dyson's year
  cfg.fitness_mode = core::FitnessMode::Analytic;

  // Seed the whole population with the extortioner and let evolution act.
  pop::NatureAgent nature(cfg.nature_config());
  std::vector<game::Strategy> ss(cfg.ssets, extortioner);
  core::Engine engine(cfg, core::Engine::RestoredState{
                               0, nature.save_state(),
                               pop::Population(std::move(ss))});
  std::printf("\nevolving a population seeded 100%% extortionate for %lld "
              "generations...\n",
              static_cast<long long>(*gens));
  engine.run(cfg.generations);

  const auto& pop = engine.population();
  const auto coop = analysis::expected_play_cooperation(pop, cfg.game.ipd_params());
  const game::Strategy wsls = game::named::win_stay_lose_shift(1);
  std::printf("\nafter evolution:\n%s", pop::format_census(pop, 4).c_str());
  std::printf("extortioner share: %.1f%%   WSLS-like share: %.1f%%   play "
              "cooperation: %.3f\n",
              100.0 * pop::fraction_near(pop, extortioner, 0.4),
              100.0 * pop::fraction_near(pop, wsls, 0.4),
              coop.mean_coop_rate);
  std::printf("\nmoral: extortion wins games but loses evolutions — "
              "mutual extortion pays P=1 while mutual WSLS pays R=3.\n");
  return 0;
}
