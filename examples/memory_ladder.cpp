// Memory ladder: does remembering more help? Evolve populations at
// memory-1..6 under identical conditions and compare the cooperation level
// they reach — the scientific question (Brunauer et al. 2007) that
// motivates the paper's memory-six capability.
//
//   ./memory_ladder [--ssets 32] [--generations 20000]
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/engine.hpp"
#include "pop/stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("memory_ladder",
                "cooperation reached at each memory depth 1..6");
  auto ssets = cli.opt<int>("ssets", 32, "number of SSets");
  auto gens = cli.opt<std::int64_t>("generations", 20000, "generations");
  auto max_memory = cli.opt<int>("max-memory", 6, "deepest memory to try");
  auto seeds = cli.opt<int>("seeds", 3, "independent runs per depth");
  cli.parse(argc, argv);

  std::printf("memory ladder: %d SSets, %lld generations, %d seeds per "
              "depth, pure strategies, exact fitness\n\n",
              *ssets, static_cast<long long>(*gens), *seeds);

  util::TextTable table({"memory", "strategies (2^4^n)", "mean coop prob",
                         "dominant share", "distinct", "wall (s)"});
  for (int memory = 1; memory <= *max_memory; ++memory) {
    double coop = 0.0, dominant = 0.0, distinct = 0.0;
    util::Timer t;
    for (int s = 0; s < *seeds; ++s) {
      core::SimConfig cfg;
      cfg.memory = memory;
      cfg.ssets = static_cast<pop::SSetId>(*ssets);
      cfg.generations = static_cast<std::uint64_t>(*gens);
      cfg.pc_rate = 0.1;
      cfg.mutation_rate = 0.05;
      cfg.beta = 10.0;
      cfg.seed = 1000 + static_cast<std::uint64_t>(s);
      cfg.fitness_mode = core::FitnessMode::Analytic;
      core::Engine engine(cfg);
      engine.run_all();
      coop += pop::mean_coop_probability(engine.population());
      dominant += pop::dominant_fraction(engine.population());
      distinct += static_cast<double>(
          pop::distinct_strategies(engine.population()));
    }
    const double n = *seeds;
    char space[32];
    if (memory <= 2) {
      std::snprintf(space, sizeof space, "%.0f",
                    std::pow(2.0, game::num_states(memory)));
    } else {
      std::snprintf(space, sizeof space, "2^%u", game::num_states(memory));
    }
    auto num = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3g", v);
      return std::string(buf);
    };
    table.add_row({"memory-" + std::to_string(memory), space, num(coop / n),
                   num(dominant / n), num(distinct / n), num(t.seconds())});
  }
  table.print(std::cout);
  std::printf("\nreading: deeper memory expands the reachable strategy "
              "space (Table IV of the paper); whether that helps "
              "cooperation is exactly what large simulations probe.\n");
  return 0;
}
