// Production front door: run any simulation the library supports from the
// command line — serial or parallel, any memory depth, any fitness engine —
// with time-series CSV output, heat maps, checkpoint/restart and full
// observability (per-phase timing manifests, metrics CSV, progress
// heartbeats). This is the binary a domain scientist drives from a job
// script.
//
//   ./run_simulation --ssets 64 --memory 2 --generations 1e5 \
//       --space mixed --noise 0.02 --series run.csv --checkpoint run.ckpt
//   ./run_simulation ... --resume run.ckpt       # continue after a kill
//   ./run_simulation ... --checkpoint-dir ckpts --checkpoint-every 1000
//   ./run_simulation ... --restore ckpts         # newest intact checkpoint
//   ./run_simulation ... --metrics-out m.json    # egt.run_manifest/v3
//   ./run_simulation ... --trace-out run.trace.json  # Perfetto flight record
//   ./run_simulation ... --metrics-stream live.ndjson  # per-gen telemetry
//   ./run_simulation ... --ranks 8 --metrics-out m.json   # + per-rank traffic
//   ./run_simulation ... --ranks 8 --fault-plan faults.json  # ft engine
//   ./run_simulation ... --progress              # gen/s + ETA heartbeat
//   ./run_simulation --game hawk_dove ...        # preset matrix game
//   ./run_simulation --game pgg ...              # public goods group play
//   ./run_simulation --payoff "[[3,0],[5,1]]" ...  # custom 2x2 payoffs
//   ./run_simulation --list-games                # registry listing
//   ./run_simulation --game rps --memory 0 --preview  # mean-field ODE
//                                                # trajectory, no agents
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>

#include "analysis/coop.hpp"
#include "analysis/heatmap.hpp"
#include "analysis/kmeans.hpp"
#include "analysis/meanfield/preview.hpp"
#include "core/checkpoint.hpp"
#include "core/checkpoint_store.hpp"
#include "core/engine.hpp"
#include "core/observer.hpp"
#include "core/parallel_engine.hpp"
#include "ft/ft_engine.hpp"
#include "game/spec/registry.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_observer.hpp"
#include "obs/metrics_stream.hpp"
#include "obs/tracer.hpp"
#include "pop/stats.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace {

struct OutputPaths {
  std::string series;
  std::string heatmap;
  std::string checkpoint;
  std::string checkpoint_dir;  // rolling checkpoints (warn-and-continue)
  std::string resume;
  std::string manifest;     // legacy summary manifest (--manifest)
  std::string metrics_out;  // egt.run_manifest/v3 (--metrics-out)
  std::string metrics_csv;  // per-phase time-series CSV (--metrics-csv)
  std::string fault_plan;   // egt.fault_plan/v1 JSON (--fault-plan)
  std::string trace_out;       // Chrome trace JSON (--trace-out)
  std::string metrics_stream;  // live NDJSON telemetry (--metrics-stream)
  std::int64_t metrics_stream_every = 1;
  std::int64_t trace_capacity = 0;  // events per thread (0 = default)
  std::int64_t checkpoint_every = 0;
  int checkpoint_keep = 3;
  double ft_detect_ms = 500.0;
  double ft_ping_ms = 250.0;
  int ft_max_pings = 3;
  int ft_standby = 1;
  int ranks = 0;
  bool progress = false;
  bool list_games = false;
  bool preview = false;
  double max_wall_seconds = 0.0;  // 0 = no deadline
};

/// Graceful-shutdown request: SIGTERM/SIGINT land here and the serial
/// generation loop notices at its next boundary — the only place a stop
/// is safe (no checkpoint is ever cut mid-generation).
volatile std::sig_atomic_t g_stop_signal = 0;

extern "C" void request_stop(int sig) { g_stop_signal = sig; }

/// --payoff: a square JSON matrix of row-player payoffs. 2x2 tables map
/// onto the PayoffMatrix view (full memory-n iterated machinery); larger
/// tables become one-shot n-way matrix games.
[[noreturn]] void bad_payoff(const std::string& why) {
  throw std::invalid_argument(
      "--payoff expects a square JSON matrix of row-player payoffs, e.g. "
      "[[3,0],[5,1]]: " +
      why);
}

egt::game::GameSpec parse_payoff_matrix(const std::string& text) {
  using namespace egt;
  const util::JsonValue v = [&] {
    try {
      return util::JsonValue::parse(text);
    } catch (const std::exception& e) {
      bad_payoff(e.what());
    }
  }();
  if (!v.is_array() || v.items().empty()) bad_payoff("not a JSON array");
  const std::size_t m = v.items().size();
  if (m < 2 || m > 255) bad_payoff("need between 2 and 255 actions");
  std::vector<double> flat;
  flat.reserve(m * m);
  for (const auto& row : v.items()) {
    if (!row.is_array() || row.items().size() != m) {
      bad_payoff("every row must hold " + std::to_string(m) + " numbers");
    }
    for (const auto& e : row.items()) flat.push_back(e.as_number());
  }
  if (m == 2) {
    return game::GameSpec::matrix2(
        "custom", game::PayoffMatrix{flat[0], flat[1], flat[2], flat[3]});
  }
  return game::GameSpec::matrix_n("custom", static_cast<std::uint32_t>(m),
                                  std::move(flat));
}

egt::core::SimConfig build_config(egt::util::Cli& cli, int argc, char** argv,
                                  OutputPaths& out) {
  using namespace egt;
  auto memory = cli.opt<int>("memory", 1, "memory steps (0..6)");
  auto ssets = cli.opt<int>("ssets", 64, "number of SSets");
  auto gens = cli.opt<std::int64_t>("generations", 10000, "generations");
  auto rounds = cli.opt<int>("rounds", 200, "IPD rounds per game");
  auto noise = cli.opt<double>("noise", 0.0, "execution error rate");
  auto game_opt = cli.opt<std::string>(
      "game", "", "game preset from the registry (see --list-games)");
  auto payoff_opt = cli.opt<std::string>(
      "payoff", "",
      "custom row-player payoff matrix as square JSON rows, e.g. "
      "[[3,0],[5,1]] (2x2 plays iterated; larger plays one-shot n-way)");
  auto list_games =
      cli.flag("list-games", "list the registered game presets and exit");
  auto pc = cli.opt<double>("pc-rate", 0.1, "pairwise comparison rate");
  auto mu = cli.opt<double>("mu", 0.05, "mutation rate");
  auto beta = cli.opt<double>("beta", 1.0, "Fermi selection intensity");
  auto space = cli.opt<std::string>("space", "pure", "pure | mixed");
  auto kernel = cli.opt<std::string>(
      "kernel", "uniform", "uniform | ushaped | bitflip | gaussian");
  auto fitness = cli.opt<std::string>(
      "fitness", "analytic", "sampled | frozen | analytic");
  auto seed = cli.opt<std::uint64_t>("seed", 1234, "random seed");
  auto gate = cli.flag("teacher-better-gate",
                       "paper's gate: only adopt strictly better teachers");
  auto threads = cli.opt<int>("agent-threads", 0,
                              "agent-tier worker threads (0 = serial)");
  auto sset_threads = cli.opt<int>(
      "sset-threads", 0,
      "SSet-tier worker threads for whole-block fitness passes (0 = serial)");
  auto no_dedup = cli.flag(
      "no-dedup",
      "disable the strategy-interned class-pair payoff cache (analytic "
      "fitness then replays every pair's game)");
  auto ranks_opt = cli.opt<int>(
      "ranks", 0, "run the parallel engine on N ranks (0 = serial engine)");
  auto series_opt = cli.opt<std::string>("series", "", "time-series CSV path");
  auto heatmap_opt =
      cli.opt<std::string>("heatmap", "", "final-population heat-map prefix");
  auto ckpt_opt = cli.opt<std::string>("checkpoint", "",
                                       "checkpoint file to write");
  auto ckpt_every = cli.opt<std::int64_t>(
      "checkpoint-every", 0, "also checkpoint every N generations");
  auto ckpt_dir = cli.opt<std::string>(
      "checkpoint-dir", "",
      "directory for rolling checkpoints (atomically committed "
      "checkpoint_g<gen>.bin every --checkpoint-every generations, newest "
      "--checkpoint-keep retained; unwritable paths warn instead of "
      "aborting the run)");
  auto ckpt_keep = cli.opt<int>(
      "checkpoint-keep", 3,
      "checkpoint generations retained (--checkpoint-dir pruning and the "
      "ft engine's block-checkpoint store)");
  auto resume_opt = cli.opt<std::string>(
      "resume", "",
      "checkpoint to resume from: a file, or a --checkpoint-dir directory "
      "(restores the newest intact generation, skipping corrupt files)");
  auto restore_opt = cli.opt<std::string>(
      "restore", "", "synonym of --resume (restore a checkpoint)");
  auto fault_plan_opt = cli.opt<std::string>(
      "fault-plan", "",
      "egt.fault_plan/v1 JSON of failures to inject; runs the "
      "fault-tolerant engine (requires --ranks)");
  auto ft_detect = cli.opt<double>(
      "ft-detect-ms", 500.0, "ft failure-detection reply deadline (ms)");
  auto ft_ping = cli.opt<double>(
      "ft-ping-ms", 250.0, "ft ping/pong probe deadline (ms)");
  auto ft_pings = cli.opt<int>(
      "ft-max-pings", 3, "ft probes before a suspected rank is declared dead");
  auto ft_standby = cli.opt<int>(
      "ft-standby", 1,
      "warm standby ranks replicating the ft decision log (Nature Agent "
      "failover; 0 makes the master a single point of failure again)");
  auto manifest_opt = cli.opt<std::string>(
      "manifest", "", "write a legacy JSON summary manifest here");
  auto metrics_out_opt = cli.opt<std::string>(
      "metrics-out", "",
      "write an egt.run_manifest/v3 JSON (per-phase times, counters, "
      "traffic) here");
  auto metrics_csv_opt = cli.opt<std::string>(
      "metrics-csv", "",
      "write the per-phase metrics time series (CSV) here");
  auto trace_out_opt = cli.opt<std::string>(
      "trace-out", "",
      "record a flight-recorder trace of the run and write Chrome "
      "trace-event JSON (Perfetto-loadable) here; inspect with trace_report");
  auto trace_capacity_opt = cli.opt<std::int64_t>(
      "trace-capacity", 0,
      "flight-recorder ring capacity in events per thread (0 = default "
      "65536; the ring keeps the newest events and reports the dropped "
      "count in the trace)");
  auto metrics_stream_opt = cli.opt<std::string>(
      "metrics-stream", "",
      "stream one egt.metrics_stream/v1 NDJSON line per generation here "
      "while the run is going (tail -f friendly)");
  auto metrics_stream_every = cli.opt<std::int64_t>(
      "metrics-stream-every", 1,
      "generations between --metrics-stream lines");
  auto max_wall = cli.opt<double>(
      "max-wall-seconds", 0.0,
      "stop gracefully after this much wall time (serial engine): a final "
      "checkpoint is written and the run exits cleanly, same as SIGTERM "
      "(0 = no deadline)");
  auto preview = cli.flag(
      "preview",
      "skip the agent simulation and integrate the mean-field replicator "
      "ODE instead (~1000x faster; well-mixed pure-strategy matrix games "
      "with memory <= 1 only)");
  auto progress = cli.flag(
      "progress", "heartbeat log with gen/s and ETA (implies --verbose)");
  auto verbose = cli.flag("verbose", "info-level logging");
  cli.parse(argc, argv);
  if (*verbose || *progress) util::set_log_level(util::LogLevel::Info);

  core::SimConfig cfg;
  out.list_games = *list_games;
  if (out.list_games) return cfg;
  if (!game_opt->empty() && !payoff_opt->empty()) {
    throw std::invalid_argument("--game and --payoff are mutually exclusive");
  }
  const bool custom_game = !game_opt->empty() || !payoff_opt->empty();
  if (!game_opt->empty()) {
    const game::GameSpec* preset = game::find_game(*game_opt);
    if (!preset) {
      throw std::invalid_argument("unknown game preset \"" + *game_opt +
                                  "\"; registered presets:\n" +
                                  game::registry_listing());
    }
    cfg.game = *preset;
  } else if (!payoff_opt->empty()) {
    cfg.game = parse_payoff_matrix(*payoff_opt);
  }
  cfg.memory = *memory;
  cfg.ssets = static_cast<egt::pop::SSetId>(*ssets);
  cfg.generations = static_cast<std::uint64_t>(*gens);
  // --rounds / --noise layer on top of a preset only when changed from
  // their CLI defaults; the preset's own values rule otherwise.
  if (!custom_game || *rounds != 200) {
    cfg.game.rounds = static_cast<std::uint32_t>(*rounds);
  }
  if (!custom_game || *noise != 0.0) cfg.game.noise = *noise;
  cfg.pc_rate = *pc;
  cfg.mutation_rate = *mu;
  cfg.beta = *beta;
  cfg.seed = *seed;
  cfg.require_teacher_better = *gate;
  cfg.agent_threads = static_cast<unsigned>(*threads);
  cfg.sset_threads = static_cast<unsigned>(*sset_threads);
  cfg.dedup = !*no_dedup;
  cfg.space = *space == "mixed" ? egt::pop::StrategySpace::Mixed
                                : egt::pop::StrategySpace::Pure;
  if (*kernel == "ushaped") {
    cfg.mutation_kernel = egt::pop::MutationKernel::UShapedProbs;
  } else if (*kernel == "bitflip") {
    cfg.mutation_kernel = egt::pop::MutationKernel::PureBitFlip;
  } else if (*kernel == "gaussian") {
    cfg.mutation_kernel = egt::pop::MutationKernel::MixedGaussian;
  }
  if (*fitness == "sampled") {
    cfg.fitness_mode = core::FitnessMode::Sampled;
  } else if (*fitness == "frozen") {
    cfg.fitness_mode = core::FitnessMode::SampledFrozen;
  } else {
    cfg.fitness_mode = core::FitnessMode::Analytic;
  }
  if (cfg.game.requires_memory0() && cfg.memory != 0) {
    std::printf("note: %s plays without history; overriding --memory %d to 0\n",
                cfg.game.display_name.c_str(), *memory);
    cfg.memory = 0;
  }
  if (cfg.game.uses_nway() &&
      cfg.mutation_kernel != pop::MutationKernel::UniformProbs &&
      cfg.mutation_kernel != pop::MutationKernel::PureBitFlip) {
    std::printf(
        "note: n-way games mutate via uniform or bitflip kernels; using "
        "uniform\n");
    cfg.mutation_kernel = pop::MutationKernel::UniformProbs;
  }
  out.series = *series_opt;
  out.heatmap = *heatmap_opt;
  out.checkpoint = *ckpt_opt;
  out.checkpoint_dir = *ckpt_dir;
  out.resume = *resume_opt;
  if (!restore_opt->empty()) {
    if (!out.resume.empty() && *restore_opt != out.resume) {
      throw std::invalid_argument(
          "--resume and --restore name different checkpoints; pass one");
    }
    out.resume = *restore_opt;
  }
  out.fault_plan = *fault_plan_opt;
  out.ft_detect_ms = *ft_detect;
  out.ft_ping_ms = *ft_ping;
  out.ft_max_pings = *ft_pings;
  out.ft_standby = *ft_standby;
  out.manifest = *manifest_opt;
  out.metrics_out = *metrics_out_opt;
  out.metrics_csv = *metrics_csv_opt;
  out.trace_out = *trace_out_opt;
  out.trace_capacity = *trace_capacity_opt;
  out.metrics_stream = *metrics_stream_opt;
  out.metrics_stream_every = *metrics_stream_every;
  out.checkpoint_every = *ckpt_every;
  out.checkpoint_keep = *ckpt_keep;
  out.ranks = *ranks_opt;
  out.progress = *progress;
  out.preview = *preview;
  out.max_wall_seconds = *max_wall;
  return cfg;
}

/// --preview: integrate the mean-field replicator ODE compiled from the
/// exact same SimConfig instead of running agents (DESIGN.md §13). Prints
/// a trajectory table, the final class mix, and the cooperation headline.
int run_preview_mode(const egt::core::SimConfig& cfg) {
  using namespace egt;
  std::string why;
  if (!analysis::meanfield::preview_supported(cfg, &why)) {
    throw std::invalid_argument(
        "--preview cannot compile this config to a mean-field model: " + why +
        " (previews cover well-mixed pure-strategy matrix games with "
        "memory <= 1 under pairwise comparison)");
  }
  util::Timer timer;
  const auto r = analysis::meanfield::run_preview(cfg);
  const auto& traj = r.trajectory;
  std::printf("mean-field preview: replicator ODE over %zu strategy "
              "class(es), %llu accepted / %llu rejected steps\n",
              r.model.classes.size(),
              static_cast<unsigned long long>(traj.steps),
              static_cast<unsigned long long>(traj.rejected_steps));

  std::printf("%12s  %11s  %s\n", "generation", "cooperation",
              "leading class");
  const std::size_t samples = traj.times.size();
  const std::size_t rows = std::min<std::size_t>(13, samples);
  for (std::size_t row = 0; row < rows; ++row) {
    const std::size_t i = rows <= 1 ? 0 : row * (samples - 1) / (rows - 1);
    const auto& x = traj.states[i];
    const std::size_t lead = static_cast<std::size_t>(
        std::max_element(x.begin(), x.end()) - x.begin());
    std::printf("%12.0f  %11.4f  %s (%.3f)\n", traj.times[i],
                r.model.cooperation(x), r.model.labels[lead].c_str(),
                x[lead]);
  }

  std::vector<std::size_t> order(r.model.classes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return traj.final_state[a] > traj.final_state[b];
  });
  std::printf("final class mix:");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, order.size()); ++i) {
    std::printf(" %s=%.3f", r.model.labels[order[i]].c_str(),
                traj.final_state[order[i]]);
  }
  if (order.size() > 5) std::printf(" ...");
  std::printf("\nfinal cooperation: %.4f (initial %.4f)\n",
              r.final_cooperation, r.initial_cooperation);
  std::printf("wall time: %.3f s (no agents were simulated)\n",
              timer.seconds());
  return 0;
}

/// Headline cooperation statistic for the legacy manifest: expected play
/// cooperation for the 2-action iterated games, the mean action-0 /
/// contribution share otherwise.
double headline_cooperation(const egt::pop::Population& pop,
                            const egt::core::SimConfig& cfg,
                            double* mean_payoff) {
  using namespace egt;
  *mean_payoff = 0.0;
  if (cfg.game.uses_nway() || cfg.game.kind == game::GameKind::PublicGoods) {
    double share = 0.0;
    for (pop::SSetId i = 0; i < pop.size(); ++i) {
      const auto& s = pop.strategy(i);
      share += s.is_nway() ? s.as_nway().action_prob(0) : s.coop_prob(0);
    }
    return share / pop.size();
  }
  const auto coop =
      analysis::expected_play_cooperation(pop, cfg.game.ipd_params());
  *mean_payoff = coop.mean_payoff;
  return coop.mean_coop_rate;
}

void write_legacy_manifest(const std::string& path,
                           const egt::core::SimConfig& cfg,
                           const egt::pop::Population& pop,
                           double wall_seconds,
                           std::uint64_t pair_evaluations) {
  using namespace egt;
  std::ofstream out(path);
  util::JsonWriter w(out);
  w.begin_object();
  w.key("tool").value("egtsim/run_simulation");
  w.key("config").begin_object();
  w.field("summary", cfg.summary());
  w.field("memory", cfg.memory);
  w.field("ssets", static_cast<std::uint64_t>(cfg.ssets));
  w.field("generations", cfg.generations);
  w.field("rounds", static_cast<std::uint64_t>(cfg.game.rounds));
  w.field("noise", cfg.game.noise);
  w.field("pc_rate", cfg.pc_rate);
  w.field("mutation_rate", cfg.mutation_rate);
  w.field("beta", cfg.beta);
  w.field("seed", cfg.seed);
  w.field("config_fingerprint", core::config_fingerprint(cfg));
  w.end_object();
  double mean_payoff = 0.0;
  const double play_coop = headline_cooperation(pop, cfg, &mean_payoff);
  const auto census = pop::census(pop);
  w.key("results").begin_object();
  w.field("dominant_fraction",
          static_cast<double>(census.front().count) / pop.size());
  w.field("distinct_strategies", static_cast<std::uint64_t>(census.size()));
  w.field("play_cooperation", play_coop);
  w.field("mean_payoff", mean_payoff);
  w.field("strategy_table_hash", pop.table_hash());
  w.field("wall_seconds", wall_seconds);
  w.field("pair_evaluations", pair_evaluations);
  w.end_object();
  w.end_object();
  out << "\n";
}

/// Shared config block of the egt.run_manifest/v3 output.
egt::obs::ManifestInfo manifest_info(const egt::core::SimConfig& cfg,
                                     int ranks, double wall_seconds) {
  using namespace egt;
  obs::ManifestInfo info;
  info.tool = "egtsim/run_simulation";
  info.config_summary = cfg.summary();
  info.config_fingerprint = core::config_fingerprint(cfg);
  info.game = &cfg.game;  // cfg outlives every manifest write in run_cli
  info.config_fields = [cfg](util::JsonWriter& w) {
    w.field("memory", cfg.memory);
    w.field("ssets", static_cast<std::uint64_t>(cfg.ssets));
    w.field("generations", cfg.generations);
    w.field("rounds", static_cast<std::uint64_t>(cfg.game.rounds));
    w.field("noise", cfg.game.noise);
    w.field("pc_rate", cfg.pc_rate);
    w.field("mutation_rate", cfg.mutation_rate);
    w.field("beta", cfg.beta);
    w.field("seed", cfg.seed);
  };
  info.ranks = ranks;
  info.generations = cfg.generations;
  info.wall_seconds = wall_seconds;
  return info;
}

/// The manifest is written after the simulation has finished; a bad path
/// must not abort and discard an otherwise-complete run. Failures count to
/// obs.write_errors (every observability output shares that counter).
void try_write_metrics_manifest(const std::string& path,
                                const egt::obs::ManifestInfo& info,
                                egt::obs::MetricsRegistry& metrics) {
  try {
    egt::obs::write_run_manifest_file(path, info);
    std::printf("metrics manifest written: %s\n", path.c_str());
  } catch (const std::exception& e) {
    metrics.counter("obs.write_errors").inc();
    std::fprintf(stderr, "warning: %s\n", e.what());
  }
}

/// Start the flight recorder with run-identifying metadata baked into the
/// trace's otherData (trace_report --calibrate reads these back).
void start_tracer(const egt::core::SimConfig& cfg, int ranks,
                  std::int64_t capacity) {
  using namespace egt;
  const char* mode = cfg.fitness_mode == core::FitnessMode::Sampled
                         ? "sampled"
                         : cfg.fitness_mode == core::FitnessMode::SampledFrozen
                               ? "frozen"
                               : "analytic";
  auto& tracer = obs::Tracer::instance();
  tracer.set_meta("tool", "egtsim/run_simulation");
  tracer.set_meta("config_summary", cfg.summary());
  tracer.set_meta("memory", std::to_string(cfg.memory));
  tracer.set_meta("ssets", std::to_string(cfg.ssets));
  tracer.set_meta("rounds", std::to_string(cfg.game.rounds));
  tracer.set_meta("generations", std::to_string(cfg.generations));
  tracer.set_meta("ranks", std::to_string(ranks));
  tracer.set_meta("fitness_mode", mode);
  tracer.start(capacity > 0 ? static_cast<std::size_t>(capacity)
                            : obs::Tracer::kDefaultCapacity);
}

/// Stop the recorder and serialize the session. Same warn-and-continue
/// contract as --metrics-out: the simulation's results are already safe, a
/// bad trace path must not turn the run into a failure.
void try_write_trace(const std::string& path,
                     egt::obs::MetricsRegistry& metrics) {
  using namespace egt;
  auto& tracer = obs::Tracer::instance();
  tracer.stop();
  std::ofstream f(path);
  if (f) tracer.write_chrome_trace(f);
  if (f) {
    std::printf("trace written: %s (%llu events, %llu dropped)\n",
                path.c_str(),
                static_cast<unsigned long long>(tracer.recorded_events()),
                static_cast<unsigned long long>(tracer.dropped_events()));
  } else {
    metrics.counter("obs.write_errors").inc();
    std::fprintf(stderr, "warning: trace not written (cannot open %s)\n",
                 path.c_str());
  }
}

/// Open the live NDJSON stream; an unopenable path warns and streams
/// nothing (the run itself is unaffected).
std::unique_ptr<egt::obs::MetricsStreamWriter> open_metrics_stream(
    const OutputPaths& out, egt::obs::MetricsRegistry& metrics) {
  using namespace egt;
  if (out.metrics_stream.empty()) return nullptr;
  obs::MetricsStreamWriter::Options sopts;
  sopts.path = out.metrics_stream;
  sopts.every = out.metrics_stream_every > 0
                    ? static_cast<std::uint64_t>(out.metrics_stream_every)
                    : 1;
  auto writer = std::make_unique<obs::MetricsStreamWriter>(sopts);
  if (!writer->ok()) {
    metrics.counter("obs.write_errors").inc();
    std::fprintf(stderr,
                 "warning: metrics stream disabled (cannot open %s)\n",
                 out.metrics_stream.c_str());
    return nullptr;
  }
  return writer;
}

/// Rolling checkpoints must not kill a long run over a bad path: warn,
/// count (ft.checkpoint_write_errors) and keep simulating — same contract
/// as --metrics-out.
void try_commit_checkpoint(egt::core::CheckpointDir& dir, std::uint64_t gen,
                           const egt::core::Engine& engine,
                           egt::obs::MetricsRegistry& metrics, bool announce) {
  try {
    dir.commit(gen, egt::core::save_checkpoint(engine));
    if (announce) {
      std::printf("checkpoint written: %s/%s\n", dir.dir().c_str(),
                  egt::core::CheckpointDir::file_name(gen).c_str());
    }
  } catch (const std::exception& e) {
    metrics.counter("ft.checkpoint_write_errors").inc();
    std::fprintf(stderr, "warning: %s\n", e.what());
  }
}

/// Restore from a file or (newest intact generation of) a checkpoint
/// directory. Corrupt directory entries are skipped with a warning — the
/// CRC fallback path.
egt::core::Engine restore_engine(const egt::core::SimConfig& cfg,
                                 const std::string& from, int keep,
                                 egt::obs::MetricsRegistry* metrics) {
  using namespace egt;
  if (!std::filesystem::is_directory(from)) {
    return core::read_checkpoint_file(cfg, from, metrics);
  }
  core::CheckpointDir dir(from, keep);
  const auto loaded = dir.newest_intact(
      [](std::uint64_t gen, const std::string& why) {
        std::fprintf(stderr,
                     "warning: skipping corrupt checkpoint generation %llu "
                     "(%s); falling back to an older one\n",
                     static_cast<unsigned long long>(gen), why.c_str());
      });
  if (!loaded) {
    throw std::runtime_error("no intact checkpoint in directory: " + from);
  }
  return core::restore_checkpoint(cfg, loaded->payload, metrics);
}

void report(const egt::pop::Population& pop, const egt::core::SimConfig& cfg) {
  using namespace egt;
  std::printf("\nfinal population:\n%s", pop::format_census(pop, 5).c_str());
  if (cfg.game.uses_nway()) {
    // Pairwise IPD cooperation is undefined for n-way games; report the
    // population's mean action mix instead.
    std::vector<double> mix(cfg.game.actions, 0.0);
    for (pop::SSetId i = 0; i < pop.size(); ++i) {
      for (std::uint32_t a = 0; a < cfg.game.actions; ++a) {
        mix[a] += pop.strategy(i).as_nway().action_prob(a);
      }
    }
    std::printf("mean action mix:");
    for (std::uint32_t a = 0; a < cfg.game.actions; ++a) {
      std::printf(" %s=%.3f", cfg.game.label(a).c_str(), mix[a] / pop.size());
    }
    std::printf("\n");
    return;
  }
  if (cfg.game.kind == game::GameKind::PublicGoods) {
    double contrib = 0.0;
    for (pop::SSetId i = 0; i < pop.size(); ++i) {
      contrib += pop.strategy(i).coop_prob(0);
    }
    std::printf("mean contribution propensity: %.3f\n", contrib / pop.size());
    return;
  }
  const auto coop = analysis::expected_play_cooperation(pop, cfg.game.ipd_params());
  std::printf("expected play cooperation: %.3f (mean per-round payoff %.3f)\n",
              coop.mean_coop_rate, coop.mean_payoff);
}

}  // namespace

int run_cli(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("run_simulation", "configurable evolutionary-dynamics run");
  OutputPaths out;
  const core::SimConfig cfg = build_config(cli, argc, argv, out);
  if (out.list_games) {
    std::printf("%s", game::registry_listing().c_str());
    return 0;
  }
  if (out.preview) {
    std::printf("previewing: %s\n", cfg.summary().c_str());
    return run_preview_mode(cfg);
  }

  std::printf("running: %s\n", cfg.summary().c_str());
  util::Timer timer;
  obs::MetricsRegistry metrics;
  const auto stream = open_metrics_stream(out, metrics);
  if (!out.trace_out.empty()) {
    start_tracer(cfg, std::max(out.ranks, 1), out.trace_capacity);
  }

  if (!out.fault_plan.empty() && out.ranks <= 0) {
    throw std::invalid_argument("--fault-plan requires --ranks N (N >= 1)");
  }
  if (out.ranks > 0 && !out.resume.empty()) {
    throw std::invalid_argument(
        "--resume/--restore is a serial-engine feature; the parallel "
        "engines replay from generation 0");
  }

  if (!out.fault_plan.empty()) {
    // Fault-tolerant engine: injected failures, detection and recovery.
    ft::FtRunOptions fopts;
    fopts.plan = ft::FaultPlan::from_file(out.fault_plan);
    fopts.checkpoint_every =
        out.checkpoint_every > 0
            ? static_cast<std::uint64_t>(out.checkpoint_every)
            : 0;
    fopts.detect_timeout_ms = out.ft_detect_ms;
    fopts.ping_timeout_ms = out.ft_ping_ms;
    fopts.max_pings = out.ft_max_pings;
    fopts.standby_replicas = out.ft_standby;
    fopts.checkpoint_keep = out.checkpoint_keep;
    fopts.metrics = &metrics;
    fopts.metrics_stream = stream.get();
    const auto result = ft::run_parallel_ft(cfg, out.ranks, fopts);
    if (!out.trace_out.empty()) try_write_trace(out.trace_out, metrics);
    std::printf(
        "fault-tolerant run on %d ranks: %d rank(s) lost, %d failover(s), "
        "%llu recover(ies), %llu block(s) restored, %llu recomputed\n",
        out.ranks, result.ranks_lost, result.failovers,
        static_cast<unsigned long long>(
            result.metrics.counter_value("ft.recoveries")),
        static_cast<unsigned long long>(
            result.metrics.counter_value("ft.recovery.blocks_restored")),
        static_cast<unsigned long long>(
            result.metrics.counter_value("ft.recovery.blocks_recomputed")));
    report(result.population, cfg);
    const double wall = timer.seconds();
    if (stream) {
      std::printf("metrics stream written: %s (%llu lines)\n",
                  stream->path().c_str(),
                  static_cast<unsigned long long>(stream->lines_written()));
    }
    if (!out.metrics_out.empty()) {
      obs::ManifestInfo info = manifest_info(cfg, out.ranks, wall);
      info.metrics = &result.metrics;  // includes the ft.* family
      info.traffic = &result.traffic;
      try_write_metrics_manifest(out.metrics_out, info, metrics);
    }
    if (!out.manifest.empty()) {
      write_legacy_manifest(out.manifest, cfg, result.population, wall,
                            result.metrics.counter_value(
                                "engine.pairs_evaluated"));
      std::printf("manifest written: %s\n", out.manifest.c_str());
    }
    std::printf("wall time: %.2f s\n", wall);
    return 0;
  }

  if (out.ranks > 0) {
    // Parallel engine: same trajectory, message-passing execution.
    core::ParallelRunOptions popts;
    popts.metrics = &metrics;
    popts.progress = out.progress;
    popts.metrics_stream = stream.get();
    const auto result = core::run_parallel(cfg, out.ranks, popts);
    if (!out.trace_out.empty()) try_write_trace(out.trace_out, metrics);
    const auto& t = result.traffic;
    std::printf(
        "parallel run on %d ranks: %llu msgs / %llu bytes "
        "(bcast %llu/%llu, p2p %llu/%llu)\n",
        out.ranks, static_cast<unsigned long long>(t.messages),
        static_cast<unsigned long long>(t.bytes),
        static_cast<unsigned long long>(t.bcast_messages),
        static_cast<unsigned long long>(t.bcast_bytes),
        static_cast<unsigned long long>(t.p2p_messages),
        static_cast<unsigned long long>(t.p2p_bytes));
    report(result.population, cfg);
    const double wall = timer.seconds();
    if (stream) {
      std::printf("metrics stream written: %s (%llu lines)\n",
                  stream->path().c_str(),
                  static_cast<unsigned long long>(stream->lines_written()));
    }
    if (!out.metrics_out.empty()) {
      obs::ManifestInfo info = manifest_info(cfg, out.ranks, wall);
      info.metrics = &result.metrics;
      info.traffic = &result.traffic;
      try_write_metrics_manifest(out.metrics_out, info, metrics);
    }
    if (!out.manifest.empty()) {
      write_legacy_manifest(out.manifest, cfg, result.population, wall,
                            result.metrics.counter_value(
                                "engine.pairs_evaluated"));
      std::printf("manifest written: %s\n", out.manifest.c_str());
    }
    std::printf("wall time: %.2f s\n", wall);
    return 0;
  }

  core::Engine engine =
      out.resume.empty()
          ? core::Engine(cfg, &metrics)
          : restore_engine(cfg, out.resume, out.checkpoint_keep, &metrics);
  if (!out.resume.empty()) {
    std::printf("resumed from %s at generation %llu\n", out.resume.c_str(),
                static_cast<unsigned long long>(engine.generation()));
  }

  // Rolling crash-consistent checkpoints (construction sweeps .tmp orphans
  // left by a crash mid-commit). Pre-register the write-error counter so a
  // clean run's manifest reports it as 0 explicitly.
  std::optional<core::CheckpointDir> rolling;
  if (!out.checkpoint_dir.empty()) {
    rolling.emplace(out.checkpoint_dir, out.checkpoint_keep);
    metrics.counter("ft.checkpoint_write_errors");
  }

  core::MultiObserver obs;
  auto recorder = std::make_unique<core::TimeSeriesRecorder>(
      std::max<std::uint64_t>(1, cfg.generations / 200));
  const core::TimeSeriesRecorder& recorder_ref = *recorder;
  obs.add(std::move(recorder));

  if (stream) {
    obs.add(std::make_unique<obs::MetricsStreamObserver>(*stream, metrics));
  }

  if (!out.metrics_csv.empty() || out.progress) {
    obs::MetricsObserverOptions mopts;
    mopts.csv_path = out.metrics_csv;
    mopts.sample_interval = std::max<std::uint64_t>(1, cfg.generations / 200);
    mopts.progress = out.progress;
    mopts.total_generations = cfg.generations;
    obs.add(std::make_unique<obs::MetricsObserver>(metrics, mopts));
  }

  if (!out.checkpoint.empty() && out.checkpoint_every > 0) {
    obs.add(std::make_unique<core::CallbackObserver>(
        [&](const pop::Population&, const core::GenerationRecord& r) {
          if (r.generation != 0 &&
              r.generation %
                      static_cast<std::uint64_t>(out.checkpoint_every) ==
                  0) {
            core::write_checkpoint_file(engine, out.checkpoint);
          }
        }));
  }
  if (rolling && out.checkpoint_every > 0) {
    obs.add(std::make_unique<core::CallbackObserver>(
        [&](const pop::Population&, const core::GenerationRecord& r) {
          if (r.generation != 0 &&
              r.generation %
                      static_cast<std::uint64_t>(out.checkpoint_every) ==
                  0) {
            try_commit_checkpoint(*rolling, r.generation, engine, metrics,
                                  /*announce=*/false);
          }
        }));
  }

  const std::uint64_t remaining =
      cfg.generations > engine.generation()
          ? cfg.generations - engine.generation()
          : 0;

  // Serial generation loop with graceful-shutdown points: SIGTERM/SIGINT
  // and the --max-wall-seconds deadline both stop the run at the next
  // generation boundary, commit a final checkpoint, and exit cleanly —
  // never mid-write. The run is then resumable with --resume/--restore.
  std::signal(SIGTERM, request_stop);
  std::signal(SIGINT, request_stop);
  std::string stop_reason;
  for (std::uint64_t g = 0; g < remaining; ++g) {
    if (g_stop_signal != 0) {
      stop_reason = g_stop_signal == SIGTERM ? "SIGTERM" : "SIGINT";
      break;
    }
    if (out.max_wall_seconds > 0.0 && timer.seconds() > out.max_wall_seconds) {
      stop_reason = "--max-wall-seconds deadline";
      break;
    }
    engine.step();
    obs.on_generation(engine.population(), engine.last_record());
  }
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  if (!stop_reason.empty()) {
    std::printf("stopping early (%s) at generation %llu\n", stop_reason.c_str(),
                static_cast<unsigned long long>(engine.generation()));
    if (out.checkpoint.empty() && !rolling) {
      std::fprintf(stderr,
                   "warning: no --checkpoint/--checkpoint-dir; progress up to "
                   "generation %llu is lost\n",
                   static_cast<unsigned long long>(engine.generation()));
    }
  }
  if (!out.trace_out.empty()) try_write_trace(out.trace_out, metrics);
  if (stream) {
    std::printf("metrics stream written: %s (%llu lines)\n",
                stream->path().c_str(),
                static_cast<unsigned long long>(stream->lines_written()));
  }

  if (!out.checkpoint.empty()) {
    core::write_checkpoint_file(engine, out.checkpoint);
    std::printf("checkpoint written: %s\n", out.checkpoint.c_str());
  }
  if (rolling) {
    try_commit_checkpoint(*rolling, engine.generation(), engine, metrics,
                          /*announce=*/true);
  }
  if (!out.series.empty()) {
    recorder_ref.write_csv(out.series);
    std::printf("time series written: %s (%zu samples)\n", out.series.c_str(),
                recorder_ref.samples().size());
  }
  if (!out.metrics_csv.empty()) {
    std::printf("metrics time series written: %s\n", out.metrics_csv.c_str());
  }
  if (!out.heatmap.empty()) {
    const auto rows = analysis::strategy_matrix(engine.population());
    const auto clusters = analysis::kmeans(rows, 8);
    analysis::HeatmapOptions opt;
    opt.cell_width = 24;
    opt.cell_height = 2;
    opt.row_order = analysis::cluster_sorted_order(clusters);
    analysis::write_heatmap_ppm(out.heatmap + "_final.ppm", rows, opt);
    std::printf("heat map written: %s_final.ppm\n", out.heatmap.c_str());
  }

  report(engine.population(), cfg);
  const double wall = timer.seconds();
  if (!out.metrics_out.empty()) {
    const obs::MetricsSnapshot snap = metrics.snapshot();
    obs::ManifestInfo info = manifest_info(cfg, /*ranks=*/0, wall);
    info.metrics = &snap;
    try_write_metrics_manifest(out.metrics_out, info, metrics);
  }
  if (!out.manifest.empty()) {
    write_legacy_manifest(out.manifest, cfg, engine.population(), wall,
                          engine.pairs_evaluated());
    std::printf("manifest written: %s\n", out.manifest.c_str());
  }
  std::printf("wall time: %.2f s (%llu pair evaluations)\n", wall,
              static_cast<unsigned long long>(engine.pairs_evaluated()));
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
