// Production front door: run any simulation the library supports from the
// command line — serial or parallel, any memory depth, any fitness engine —
// with time-series CSV output, heat maps and checkpoint/restart. This is
// the binary a domain scientist drives from a job script.
//
//   ./run_simulation --ssets 64 --memory 2 --generations 1e5 \
//       --space mixed --noise 0.02 --series run.csv --checkpoint run.ckpt
//   ./run_simulation ... --resume run.ckpt       # continue after a kill
#include <cstdio>
#include <fstream>
#include <iostream>

#include "analysis/coop.hpp"
#include "analysis/heatmap.hpp"
#include "analysis/kmeans.hpp"
#include "core/checkpoint.hpp"
#include "core/engine.hpp"
#include "core/observer.hpp"
#include "core/parallel_engine.hpp"
#include "pop/stats.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace {

egt::core::SimConfig build_config(egt::util::Cli& cli, int argc, char** argv,
                                  std::string& series, std::string& heatmap,
                                  std::string& checkpoint, std::string& resume,
                                  std::string& manifest,
                                  std::int64_t& checkpoint_every, int& ranks) {
  using namespace egt;
  auto memory = cli.opt<int>("memory", 1, "memory steps (0..6)");
  auto ssets = cli.opt<int>("ssets", 64, "number of SSets");
  auto gens = cli.opt<std::int64_t>("generations", 10000, "generations");
  auto rounds = cli.opt<int>("rounds", 200, "IPD rounds per game");
  auto noise = cli.opt<double>("noise", 0.0, "execution error rate");
  auto pc = cli.opt<double>("pc-rate", 0.1, "pairwise comparison rate");
  auto mu = cli.opt<double>("mu", 0.05, "mutation rate");
  auto beta = cli.opt<double>("beta", 1.0, "Fermi selection intensity");
  auto space = cli.opt<std::string>("space", "pure", "pure | mixed");
  auto kernel = cli.opt<std::string>(
      "kernel", "uniform", "uniform | ushaped | bitflip | gaussian");
  auto fitness = cli.opt<std::string>(
      "fitness", "analytic", "sampled | frozen | analytic");
  auto seed = cli.opt<std::uint64_t>("seed", 1234, "random seed");
  auto gate = cli.flag("teacher-better-gate",
                       "paper's gate: only adopt strictly better teachers");
  auto threads = cli.opt<int>("agent-threads", 0,
                              "agent-tier worker threads (0 = serial)");
  auto ranks_opt = cli.opt<int>(
      "ranks", 0, "run the parallel engine on N ranks (0 = serial engine)");
  auto series_opt = cli.opt<std::string>("series", "", "time-series CSV path");
  auto heatmap_opt =
      cli.opt<std::string>("heatmap", "", "final-population heat-map prefix");
  auto ckpt_opt = cli.opt<std::string>("checkpoint", "",
                                       "checkpoint file to write");
  auto ckpt_every = cli.opt<std::int64_t>(
      "checkpoint-every", 0, "also checkpoint every N generations");
  auto resume_opt =
      cli.opt<std::string>("resume", "", "checkpoint file to resume from");
  auto manifest_opt = cli.opt<std::string>(
      "manifest", "", "write a JSON run manifest (config + results) here");
  auto verbose = cli.flag("verbose", "info-level logging");
  cli.parse(argc, argv);
  if (*verbose) util::set_log_level(util::LogLevel::Info);

  core::SimConfig cfg;
  cfg.memory = *memory;
  cfg.ssets = static_cast<egt::pop::SSetId>(*ssets);
  cfg.generations = static_cast<std::uint64_t>(*gens);
  cfg.game.rounds = static_cast<std::uint32_t>(*rounds);
  cfg.game.noise = *noise;
  cfg.pc_rate = *pc;
  cfg.mutation_rate = *mu;
  cfg.beta = *beta;
  cfg.seed = *seed;
  cfg.require_teacher_better = *gate;
  cfg.agent_threads = static_cast<unsigned>(*threads);
  cfg.space = *space == "mixed" ? egt::pop::StrategySpace::Mixed
                                : egt::pop::StrategySpace::Pure;
  if (*kernel == "ushaped") {
    cfg.mutation_kernel = egt::pop::MutationKernel::UShapedProbs;
  } else if (*kernel == "bitflip") {
    cfg.mutation_kernel = egt::pop::MutationKernel::PureBitFlip;
  } else if (*kernel == "gaussian") {
    cfg.mutation_kernel = egt::pop::MutationKernel::MixedGaussian;
  }
  if (*fitness == "sampled") {
    cfg.fitness_mode = core::FitnessMode::Sampled;
  } else if (*fitness == "frozen") {
    cfg.fitness_mode = core::FitnessMode::SampledFrozen;
  } else {
    cfg.fitness_mode = core::FitnessMode::Analytic;
  }
  series = *series_opt;
  heatmap = *heatmap_opt;
  checkpoint = *ckpt_opt;
  resume = *resume_opt;
  manifest = *manifest_opt;
  checkpoint_every = *ckpt_every;
  ranks = *ranks_opt;
  return cfg;
}

void write_manifest(const std::string& path, const egt::core::SimConfig& cfg,
                    const egt::pop::Population& pop, double wall_seconds,
                    std::uint64_t pair_evaluations) {
  using namespace egt;
  std::ofstream out(path);
  util::JsonWriter w(out);
  w.begin_object();
  w.key("tool").value("egtsim/run_simulation");
  w.key("config").begin_object();
  w.field("summary", cfg.summary());
  w.field("memory", cfg.memory);
  w.field("ssets", static_cast<std::uint64_t>(cfg.ssets));
  w.field("generations", cfg.generations);
  w.field("rounds", static_cast<std::uint64_t>(cfg.game.rounds));
  w.field("noise", cfg.game.noise);
  w.field("pc_rate", cfg.pc_rate);
  w.field("mutation_rate", cfg.mutation_rate);
  w.field("beta", cfg.beta);
  w.field("seed", cfg.seed);
  w.field("config_fingerprint", core::config_fingerprint(cfg));
  w.end_object();
  const auto coop = analysis::expected_play_cooperation(pop, cfg.game);
  const auto census = pop::census(pop);
  w.key("results").begin_object();
  w.field("dominant_fraction",
          static_cast<double>(census.front().count) / pop.size());
  w.field("distinct_strategies", static_cast<std::uint64_t>(census.size()));
  w.field("play_cooperation", coop.mean_coop_rate);
  w.field("mean_payoff", coop.mean_payoff);
  w.field("strategy_table_hash", pop.table_hash());
  w.field("wall_seconds", wall_seconds);
  w.field("pair_evaluations", pair_evaluations);
  w.end_object();
  w.end_object();
  out << "\n";
}

void report(const egt::pop::Population& pop, const egt::core::SimConfig& cfg) {
  using namespace egt;
  std::printf("\nfinal population:\n%s", pop::format_census(pop, 5).c_str());
  const auto coop = analysis::expected_play_cooperation(pop, cfg.game);
  std::printf("expected play cooperation: %.3f (mean per-round payoff %.3f)\n",
              coop.mean_coop_rate, coop.mean_payoff);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("run_simulation", "configurable evolutionary-dynamics run");
  std::string series, heatmap, checkpoint, resume, manifest;
  std::int64_t checkpoint_every = 0;
  int ranks = 0;
  const core::SimConfig cfg =
      build_config(cli, argc, argv, series, heatmap, checkpoint, resume,
                   manifest, checkpoint_every, ranks);

  std::printf("running: %s\n", cfg.summary().c_str());
  util::Timer timer;

  if (ranks > 0) {
    // Parallel engine: same trajectory, message-passing execution.
    const auto result = core::run_parallel(cfg, ranks);
    std::printf("parallel run on %d ranks: %llu p2p messages, %llu bytes\n",
                ranks,
                static_cast<unsigned long long>(result.traffic.messages),
                static_cast<unsigned long long>(result.traffic.bytes));
    report(result.population, cfg);
    std::printf("wall time: %.2f s\n", timer.seconds());
    return 0;
  }

  core::Engine engine =
      resume.empty() ? core::Engine(cfg)
                     : core::read_checkpoint_file(cfg, resume);
  if (!resume.empty()) {
    std::printf("resumed from %s at generation %llu\n", resume.c_str(),
                static_cast<unsigned long long>(engine.generation()));
  }

  core::MultiObserver obs;
  core::TimeSeriesRecorder recorder(
      std::max<std::uint64_t>(1, cfg.generations / 200));
  obs.add(recorder);
  std::unique_ptr<core::CallbackObserver> ckpt_obs;
  if (!checkpoint.empty() && checkpoint_every > 0) {
    ckpt_obs = std::make_unique<core::CallbackObserver>(
        [&](const pop::Population&, const core::GenerationRecord& r) {
          if (r.generation != 0 &&
              r.generation %
                      static_cast<std::uint64_t>(checkpoint_every) ==
                  0) {
            core::write_checkpoint_file(engine, checkpoint);
          }
        });
    obs.add(*ckpt_obs);
  }

  const std::uint64_t remaining =
      cfg.generations > engine.generation()
          ? cfg.generations - engine.generation()
          : 0;
  engine.run(remaining, &obs);

  if (!checkpoint.empty()) {
    core::write_checkpoint_file(engine, checkpoint);
    std::printf("checkpoint written: %s\n", checkpoint.c_str());
  }
  if (!series.empty()) {
    recorder.write_csv(series);
    std::printf("time series written: %s (%zu samples)\n", series.c_str(),
                recorder.samples().size());
  }
  if (!heatmap.empty()) {
    const auto rows = analysis::strategy_matrix(engine.population());
    const auto clusters = analysis::kmeans(rows, 8);
    analysis::HeatmapOptions opt;
    opt.cell_width = 24;
    opt.cell_height = 2;
    opt.row_order = analysis::cluster_sorted_order(clusters);
    analysis::write_heatmap_ppm(heatmap + "_final.ppm", rows, opt);
    std::printf("heat map written: %s_final.ppm\n", heatmap.c_str());
  }

  report(engine.population(), cfg);
  if (!manifest.empty()) {
    write_manifest(manifest, cfg, engine.population(), timer.seconds(),
                   engine.pairs_evaluated());
    std::printf("manifest written: %s\n", manifest.c_str());
  }
  std::printf("wall time: %.2f s (%llu pair evaluations)\n", timer.seconds(),
              static_cast<unsigned long long>(engine.pairs_evaluated()));
  return 0;
}
