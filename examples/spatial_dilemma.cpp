// Spatial Prisoner's Dilemma: evolution on a 2-D torus lattice, where SSets
// play only their neighbours and imitate only their neighbours — the
// classic structured-population extension (Nowak & May 1992) of the
// paper's well-mixed model. Renders the lattice as ASCII frames so you can
// watch cooperative clusters fight defector fronts.
//
//   ./spatial_dilemma [--width 16] [--height 16] [--generations 40000]
#include <cstdio>

#include "core/engine.hpp"
#include "pop/stats.hpp"
#include "util/cli.hpp"

namespace {

char cell_char(double coop) {
  if (coop >= 0.75) return '#';  // strongly cooperative rule
  if (coop >= 0.5) return '+';
  if (coop >= 0.25) return '.';
  return ' ';  // defector
}

void render(const egt::pop::Population& pop, int width, int height) {
  for (int y = 0; y < height; ++y) {
    std::fputs("  |", stdout);
    for (int x = 0; x < width; ++x) {
      const auto& s = pop.strategy(
          static_cast<egt::pop::SSetId>(y * width + x));
      double coop = 0.0;
      for (egt::game::State st = 0; st < s.states(); ++st) {
        coop += s.coop_prob(st);
      }
      std::fputc(cell_char(coop / s.states()), stdout);
    }
    std::fputs("|\n", stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("spatial_dilemma", "evolution on a torus lattice");
  auto width = cli.opt<int>("width", 16, "lattice width (>= 3)");
  auto height = cli.opt<int>("height", 16, "lattice height (>= 3)");
  auto gens = cli.opt<std::int64_t>("generations", 40000, "generations");
  auto frames = cli.opt<int>("frames", 4, "lattice snapshots to print");
  auto moore = cli.flag("moore", "8-neighbourhood instead of 4");
  cli.parse(argc, argv);

  core::SimConfig cfg;
  cfg.memory = 1;
  cfg.ssets = static_cast<pop::SSetId>(*width * *height);
  cfg.generations = static_cast<std::uint64_t>(*gens);
  cfg.pc_rate = 1.0;
  cfg.mutation_rate = 0.05;
  cfg.beta = 10.0;
  cfg.seed = 1992;  // Nowak & May's year
  cfg.fitness_mode = core::FitnessMode::Analytic;
  cfg.interaction.kind = core::InteractionSpec::Kind::Lattice2D;
  cfg.interaction.lattice_width = static_cast<pop::SSetId>(*width);
  cfg.interaction.moore = *moore;

  std::printf("spatial PD on a %dx%d torus (%s neighbourhood)\n%s\n\n",
              *width, *height, *moore ? "Moore" : "von Neumann",
              cfg.summary().c_str());
  std::printf("legend: '#' cooperative rule, '+' leaning C, '.' leaning D, "
              "' ' defector\n\n");

  core::Engine engine(cfg);
  const std::uint64_t per_frame =
      cfg.generations / static_cast<std::uint64_t>(*frames);
  for (int f = 0; f <= *frames; ++f) {
    std::printf("generation %llu  (coop probability %.3f, distinct rules "
                "%zu)\n",
                static_cast<unsigned long long>(engine.generation()),
                pop::mean_coop_probability(engine.population()),
                pop::distinct_strategies(engine.population()));
    render(engine.population(), *width, *height);
    std::printf("\n");
    if (f < *frames) engine.run(per_frame);
  }

  std::printf("final census:\n%s",
              pop::format_census(engine.population(), 4).c_str());
  return 0;
}
