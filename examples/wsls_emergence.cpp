// WSLS emergence (the paper's validation study at example scale): evolve
// probabilistic memory-one strategies under execution errors and watch
// Win-Stay Lose-Shift take over, reproducing Nowak & Sigmund (1993) and the
// paper's Fig. 2 qualitatively in under a minute.
//
//   ./wsls_emergence [--ssets 96] [--generations 2e5] [--out wsls]
#include <cstdio>

#include "analysis/heatmap.hpp"
#include "analysis/kmeans.hpp"
#include "core/engine.hpp"
#include "core/observer.hpp"
#include "game/named.hpp"
#include "pop/stats.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("wsls_emergence", "watch WSLS take over a noisy population");
  auto ssets = cli.opt<int>("ssets", 32, "number of SSets");
  auto gens = cli.opt<std::int64_t>("generations", 600000, "generations");
  auto out = cli.opt<std::string>("out", "wsls", "heat-map file prefix");
  cli.parse(argc, argv);

  core::SimConfig cfg;
  cfg.memory = 1;
  cfg.ssets = static_cast<pop::SSetId>(*ssets);
  cfg.generations = static_cast<std::uint64_t>(*gens);
  cfg.space = pop::StrategySpace::Mixed;  // probabilistic strategies
  cfg.game.noise = 0.02;                  // errors make WSLS shine
  cfg.pc_rate = 1.0;
  cfg.mutation_rate = 0.02;
  cfg.beta = 10.0;
  cfg.seed = 1993;  // Nowak & Sigmund's year
  cfg.fitness_mode = core::FitnessMode::Analytic;
  // U-shaped mutant probabilities (Nowak & Sigmund 1993): without mass near
  // 0 and 1, near-deterministic rules like WSLS are never proposed.
  cfg.mutation_kernel = pop::MutationKernel::UShapedProbs;

  std::printf("evolving: %s\n\n", cfg.summary().c_str());

  core::Engine engine(cfg);
  const game::Strategy wsls = game::named::win_stay_lose_shift(1);

  // Print a progress line every 5% of the run.
  const std::uint64_t tick = std::max<std::uint64_t>(1, cfg.generations / 20);
  core::CallbackObserver progress(
      [&](const pop::Population& p, const core::GenerationRecord& r) {
        if (r.generation % tick != 0) return;
        std::printf("gen %9llu: coop=%.3f  WSLS-like=%4.1f%%  distinct=%zu\n",
                    static_cast<unsigned long long>(r.generation),
                    pop::mean_coop_probability(p),
                    100.0 * pop::fraction_near(p, wsls, 0.5),
                    pop::distinct_strategies(p));
      });

  core::SnapshotRecorder snaps({0, cfg.generations - 1});
  core::MultiObserver obs;
  obs.add(progress);
  obs.add(snaps);
  engine.run_all(&obs);

  const auto& final_pop = snaps.snapshots().back().second;
  std::printf("\nfinal census:\n%s", pop::format_census(final_pop, 5).c_str());

  // Fig. 2-style heat maps (k-means sorted), plus a terminal rendition.
  const auto rows = analysis::strategy_matrix(final_pop);
  const auto clusters = analysis::kmeans(rows, 8);
  analysis::HeatmapOptions opt;
  opt.cell_width = 24;
  opt.cell_height = 2;
  analysis::write_heatmap_ppm(
      *out + "_initial.ppm",
      analysis::strategy_matrix(snaps.snapshots().front().second), opt);
  opt.row_order = analysis::cluster_sorted_order(clusters);
  analysis::write_heatmap_ppm(*out + "_final.ppm", rows, opt);
  std::printf("\nheat maps written: %s_initial.ppm, %s_final.ppm\n",
              out->c_str(), out->c_str());
  std::printf("\nfinal population (cluster-sorted, C=cooperate, D=defect, "
              "columns = states CC CD DC DD):\n%s",
              analysis::ascii_heatmap(rows, 24).c_str());
  return 0;
}
