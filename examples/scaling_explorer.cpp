// Scaling explorer: interactive front-end to the Blue Gene performance
// model. Ask "what would my workload cost on p processors of BG/L or BG/P?"
// and get the compute/communication decomposition, memory feasibility, and
// scaling efficiency — the tool a domain scientist would use to size a run
// before burning an allocation.
//
//   ./scaling_explorer --machine bgp --ssets 1e6 --memory 6 \
//       --procs 1024,4096,65536
#include <cstdio>
#include <iostream>
#include <sstream>

#include "machine/perfsim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {
std::vector<std::uint64_t> parse_list(const std::string& csv) {
  std::vector<std::uint64_t> out;
  std::istringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(static_cast<std::uint64_t>(std::stod(item)));
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("scaling_explorer", "size a run on the Blue Gene model");
  auto machine_name =
      cli.opt<std::string>("machine", "bgp", "bgl | bgp | host");
  auto ssets = cli.opt<std::int64_t>("ssets", 1048576, "number of SSets");
  auto memory = cli.opt<int>("memory", 6, "memory steps (1..6)");
  auto gens = cli.opt<std::int64_t>("generations", 1000, "generations");
  auto games = cli.opt<std::int64_t>(
      "games-per-sset", 0, "opponents per SSet per generation (0=all-pairs)");
  auto procs_csv = cli.opt<std::string>(
      "procs", "1024,4096,16384,65536,262144", "processor counts");
  auto pc = cli.opt<double>("pc-rate", 0.01, "pairwise comparison rate");
  cli.parse(argc, argv);

  const machine::PerfSimulator sim(machine::spec_by_name(*machine_name),
                                   machine::default_round_costs());

  machine::Workload w;
  w.memory = *memory;
  w.ssets = static_cast<std::uint64_t>(*ssets);
  w.games_per_sset = static_cast<std::uint64_t>(*games);
  w.generations = static_cast<std::uint64_t>(*gens);
  w.pc_rate = *pc;

  std::printf("workload: %llu SSets, memory-%d, %llu generations, "
              "%llu games/SSet/gen on %s\n\n",
              static_cast<unsigned long long>(w.ssets), w.memory,
              static_cast<unsigned long long>(w.generations),
              static_cast<unsigned long long>(w.resolved_games_per_sset()),
              sim.spec().name.c_str());

  util::TextTable table({"procs", "torus", "runtime", "compute %", "comm %",
                         "MB/node", "fits", "efficiency"});
  const auto procs = parse_list(*procs_csv);
  machine::PerfReport base;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    const auto rep = sim.simulate(w, procs[i]);
    if (i == 0) base = rep;
    char runtime[32], comp[16], comm[16], mem[32], eff[16];
    std::snprintf(runtime, sizeof runtime, "%.3gs", rep.total_seconds);
    std::snprintf(comp, sizeof comp, "%.1f%%",
                  100.0 * rep.compute_seconds / rep.total_seconds);
    std::snprintf(comm, sizeof comm, "%.1f%%", 100.0 * rep.comm_fraction());
    std::snprintf(mem, sizeof mem, "%.2f",
                  rep.memory_per_node_bytes / (1024.0 * 1024.0));
    std::snprintf(eff, sizeof eff, "%.1f%%",
                  100.0 * machine::strong_scaling_efficiency(base, rep));
    table.add_row({std::to_string(procs[i]),
                   machine::Torus3D(procs[i]).to_string(), runtime, comp,
                   comm, mem, rep.fits_in_memory ? "yes" : "NO", eff});
  }
  table.print(std::cout);
  std::printf("\n(fits = replicated strategy storage vs %s's %.0f MB/node; "
              "efficiency is strong-scaling vs the first row)\n",
              sim.spec().name.c_str(),
              sim.spec().memory_per_node_bytes / (1024.0 * 1024.0));
  return 0;
}
