// Quickstart: play a single Iterated Prisoner's Dilemma, then evolve a
// small population for a few thousand generations — the whole public API
// surface in ~60 lines.
//
//   ./quickstart
#include <cstdio>

#include "core/engine.hpp"
#include "game/ipd.hpp"
#include "game/named.hpp"
#include "pop/stats.hpp"

int main() {
  using namespace egt;

  // --- 1. one game: TFT vs WSLS, 200 rounds, the paper's payoffs ---------
  const game::IpdEngine ipd(/*memory=*/1);  // defaults: [3,0,4,1], 200 rounds
  const auto result = ipd.play(game::named::tit_for_tat(1),
                               game::named::win_stay_lose_shift(1),
                               util::StreamRng(/*seed=*/1, /*key=*/0));
  std::printf("TFT vs WSLS over %u rounds: %.0f vs %.0f (%.0f%% cooperation)\n",
              result.rounds, result.payoff_a, result.payoff_b,
              100.0 * result.coop_rate());

  // --- 2. one evolutionary run -------------------------------------------
  core::SimConfig cfg;
  cfg.memory = 1;          // memory-one strategies (4 states, 16 pure rules)
  cfg.ssets = 64;          // 64 strategy sets
  cfg.generations = 5000;  // evolve for 5,000 generations
  cfg.pc_rate = 0.1;       // pairwise-comparison (Fermi) learning rate
  cfg.mutation_rate = 0.05;
  cfg.beta = 10.0;         // selection intensity
  cfg.seed = 42;
  cfg.fitness_mode = core::FitnessMode::Analytic;  // exact expected payoffs

  core::Engine engine(cfg);
  engine.run_all();

  const auto& pop = engine.population();
  std::printf("\nafter %llu generations (%u SSets):\n",
              static_cast<unsigned long long>(engine.generation()),
              pop.size());
  std::printf("%s", pop::format_census(pop, 3).c_str());
  std::printf("mean cooperation probability: %.3f\n",
              pop::mean_coop_probability(pop));
  return 0;
}
