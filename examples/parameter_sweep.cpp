// Parameter sweep: map the (selection intensity beta) x (mutation rate mu)
// plane and record where cooperation lives — the kind of production study
// the paper's framework is built to enable for domain scientists. Results
// land in a CSV for plotting; a coarse ASCII heat map prints immediately.
//
//   ./parameter_sweep [--ssets 24] [--generations 30000] [--csv sweep.csv]
#include <cstdio>
#include <vector>

#include "analysis/coop.hpp"
#include "core/engine.hpp"
#include "pop/stats.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("parameter_sweep", "cooperation across the (beta, mu) plane");
  auto ssets = cli.opt<int>("ssets", 24, "number of SSets");
  auto gens = cli.opt<std::int64_t>("generations", 30000,
                                    "generations per cell");
  auto seeds = cli.opt<int>("seeds", 2, "independent runs per cell");
  auto csv_path = cli.opt<std::string>("csv", "sweep.csv", "output CSV");
  cli.parse(argc, argv);

  const std::vector<double> betas{0.1, 0.5, 1.0, 3.0, 10.0, 30.0};
  const std::vector<double> mus{0.002, 0.01, 0.05, 0.2};

  util::CsvWriter csv(*csv_path, {"beta", "mu", "seed", "play_cooperation",
                                  "dominant_fraction", "distinct"});

  std::printf("sweeping %zu x %zu cells, %d seed(s), %d SSets, %lld "
              "generations each\n\n",
              betas.size(), mus.size(), *seeds, *ssets,
              static_cast<long long>(*gens));
  std::printf("play-cooperation heat map (rows: mu, columns: beta)\n");
  std::printf("%8s", "mu\\beta");
  for (double b : betas) std::printf("%7.1f", b);
  std::printf("\n");

  for (double mu : mus) {
    std::printf("%8.3f", mu);
    for (double beta : betas) {
      double coop_sum = 0.0;
      for (int s = 0; s < *seeds; ++s) {
        core::SimConfig cfg;
        cfg.memory = 1;
        cfg.ssets = static_cast<pop::SSetId>(*ssets);
        cfg.generations = static_cast<std::uint64_t>(*gens);
        cfg.space = pop::StrategySpace::Mixed;
        cfg.mutation_kernel = pop::MutationKernel::UShapedProbs;
        cfg.game.noise = 0.02;
        cfg.pc_rate = 1.0;
        cfg.mutation_rate = mu;
        cfg.beta = beta;
        cfg.seed = 7000 + static_cast<std::uint64_t>(s);
        cfg.fitness_mode = core::FitnessMode::Analytic;
        core::Engine engine(cfg);
        engine.run_all();
        const auto coop = analysis::expected_play_cooperation(
            engine.population(), cfg.game.ipd_params());
        coop_sum += coop.mean_coop_rate;
        csv.row({beta, mu, static_cast<double>(s), coop.mean_coop_rate,
                 pop::dominant_fraction(engine.population()),
                 static_cast<double>(
                     pop::distinct_strategies(engine.population()))});
      }
      std::printf("%7.2f", coop_sum / *seeds);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nCSV written: %s\n", csv_path->c_str());
  std::printf("reading: strong selection + rare mutation finds and holds "
              "cooperative (WSLS-like) rules; weak selection or heavy "
              "mutation keeps the population noisy.\n");
  return 0;
}
