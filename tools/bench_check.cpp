// Perf-smoke gate: compare a fresh egt.bench_fitness/v1 document (written
// by bench/ablation_fitness_engine --json) against the committed baseline.
//
//   * counters (pairs_evaluated, games_played) and the final table hash
//     are deterministic — any difference is a correctness regression and
//     fails exactly;
//   * wall time is environment-dependent — only a relative slowdown beyond
//     --max-regress (default 25%) fails, and only for rows slow enough for
//     the ratio to mean anything (--min-seconds floor).
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

egt::util::JsonValue load(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  auto doc = egt::util::JsonValue::parse(buf.str());
  if (!doc.is_object() || !doc.has("schema") ||
      doc.at("schema").as_string() != "egt.bench_fitness/v1") {
    throw std::runtime_error(path + " is not an egt.bench_fitness/v1 doc");
  }
  return doc;
}

const egt::util::JsonValue* find_row(const egt::util::JsonValue& doc,
                                     const std::string& name) {
  for (const auto& row : doc.at("rows").items()) {
    if (row.at("name").as_string() == name) return &row;
  }
  return nullptr;
}

// --cross: an egt.simcheck_counters/v1 document (tools/simcheck
// --counters-out) lists engine.pairs_evaluated / engine.games_played per
// (case, engine). Every comparable variant must match its case's serial
// reference exactly — the same work-accounting gate as the bench baseline,
// but across engines within one run instead of across runs.
int check_cross(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  const auto doc = egt::util::JsonValue::parse(buf.str());
  if (!doc.is_object() || !doc.has("schema") ||
      doc.at("schema").as_string() != "egt.simcheck_counters/v1") {
    throw std::runtime_error(path +
                             " is not an egt.simcheck_counters/v1 doc");
  }

  // The serial reference of each case comes first in the entry stream.
  std::uint64_t ref_case = 0, ref_pairs = 0, ref_games = 0;
  bool have_ref = false;
  int failures = 0, compared = 0;
  for (const auto& entry : doc.at("entries").items()) {
    const auto case_seed = entry.at("case_seed").as_u64();
    const auto engine = entry.at("engine").as_string();
    const auto pairs = entry.at("pairs_evaluated").as_u64();
    const auto games = entry.at("games_played").as_u64();
    if (engine == "serial") {
      ref_case = case_seed;
      ref_pairs = pairs;
      ref_games = games;
      have_ref = true;
      continue;
    }
    if (!entry.at("comparable").as_bool()) continue;
    if (!have_ref || ref_case != case_seed) {
      std::cerr << "FAIL [case " << case_seed << "/" << engine
                << "]: no serial reference entry precedes it\n";
      ++failures;
      continue;
    }
    ++compared;
    if (pairs != ref_pairs) {
      std::cerr << "FAIL [case " << case_seed << "/" << engine
                << "]: pairs_evaluated " << pairs << " != serial "
                << ref_pairs << "\n";
      ++failures;
    }
    if (entry.has("games_comparable") &&
        !entry.at("games_comparable").as_bool()) {
      continue;  // per-rank dedup caches make games partition-dependent
    }
    if (games != ref_games) {
      std::cerr << "FAIL [case " << case_seed << "/" << engine
                << "]: games_played " << games << " != serial " << ref_games
                << "\n";
      ++failures;
    }
  }
  if (failures > 0) {
    std::cerr << failures << " cross-engine counter mismatch(es)\n";
    return 1;
  }
  std::cout << "bench_check --cross: " << compared
            << " engine entr(ies) match their serial reference\n";
  return 0;
}

// --trace-overhead: within one document, every "<name> + trace" row is the
// same run as "<name>" with the flight recorder on. The traced row must
// keep the exact counters/hash (tracing must not perturb the trajectory)
// and stay within `max_overhead` relative wall time — the ISSUE budget for
// always-on-capable tracing. Rows faster than `min_seconds` untraced skip
// the time gate (the ratio is noise there), never the exactness gate.
int check_trace_overhead(const egt::util::JsonValue& doc, double max_overhead,
                         double min_seconds) {
  int failures = 0, compared = 0;
  for (const auto& row : doc.at("rows").items()) {
    const std::string name = row.at("name").as_string();
    const std::string suffix = " + trace";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string base_name = name.substr(0, name.size() - suffix.size());
    const auto* base = find_row(doc, base_name);
    if (base == nullptr) {
      std::cerr << "FAIL [" << name << "]: no untraced row '" << base_name
                << "' to compare against\n";
      ++failures;
      continue;
    }
    ++compared;
    for (const char* counter : {"pairs_evaluated", "games_played"}) {
      if (row.at(counter).as_u64() != base->at(counter).as_u64()) {
        std::cerr << "FAIL [" << name << "]: " << counter
                  << " diverged from the untraced run\n";
        ++failures;
      }
    }
    if (row.at("table_hash").as_string() !=
        base->at("table_hash").as_string()) {
      std::cerr << "FAIL [" << name << "]: tracing changed the trajectory\n";
      ++failures;
    }
    const double base_t = base->at("wall_s").as_number();
    const double cur_t = row.at("wall_s").as_number();
    if (base_t >= min_seconds && cur_t > base_t * (1.0 + max_overhead)) {
      std::cerr << "FAIL [" << name << "]: traced wall time " << cur_t
                << "s > " << (1.0 + max_overhead) << "x untraced " << base_t
                << "s\n";
      ++failures;
    } else {
      std::cout << "ok   [" << name << "]: " << cur_t << "s traced vs "
                << base_t << "s untraced ("
                << (base_t > 0 ? (cur_t / base_t - 1.0) * 100.0 : 0.0)
                << "% overhead)\n";
    }
  }
  if (compared == 0) {
    std::cerr << "FAIL: no '<name> + trace' rows found\n";
    ++failures;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("bench_check",
                "fail when a bench_fitness run regresses vs the baseline");
  auto baseline_path = cli.opt<std::string>(
      "baseline", "BENCH_fitness.json", "committed baseline document");
  auto current_path =
      cli.opt<std::string>("current", "", "freshly produced document");
  auto max_regress = cli.opt<double>(
      "max-regress", 0.25, "tolerated relative wall-time slowdown");
  auto min_seconds = cli.opt<double>(
      "min-seconds", 0.05,
      "rows faster than this in the baseline skip the time gate");
  auto cross_path = cli.opt<std::string>(
      "cross", "",
      "diff cross-engine counters of an egt.simcheck_counters/v1 document "
      "instead of a bench baseline");
  auto trace_overhead = cli.opt<double>(
      "trace-overhead", -1.0,
      "also gate '<name> + trace' rows of --current to this relative "
      "overhead vs their untraced twin (negative = off)");
  cli.parse(argc, argv);
  if (!cross_path->empty()) {
    try {
      return check_cross(*cross_path);
    } catch (const std::exception& e) {
      std::cerr << "bench_check: " << e.what() << "\n";
      return 2;
    }
  }
  if (current_path->empty()) {
    std::cerr << "--current is required\n";
    return 2;
  }

  int failures = 0;
  try {
    const auto baseline = load(*baseline_path);
    const auto current = load(*current_path);
    if (*trace_overhead >= 0.0) {
      failures +=
          check_trace_overhead(current, *trace_overhead, *min_seconds);
    }
    for (const auto& base_row : baseline.at("rows").items()) {
      const std::string name = base_row.at("name").as_string();
      const auto* cur_row = find_row(current, name);
      if (cur_row == nullptr) {
        std::cerr << "FAIL [" << name << "]: missing from current run\n";
        ++failures;
        continue;
      }
      for (const char* counter : {"pairs_evaluated", "games_played"}) {
        const auto base_v = base_row.at(counter).as_u64();
        const auto cur_v = cur_row->at(counter).as_u64();
        if (base_v != cur_v) {
          std::cerr << "FAIL [" << name << "]: " << counter << " " << cur_v
                    << " != baseline " << base_v << "\n";
          ++failures;
        }
      }
      if (base_row.at("table_hash").as_string() !=
          cur_row->at("table_hash").as_string()) {
        std::cerr << "FAIL [" << name << "]: final table hash diverged\n";
        ++failures;
      }
      const double base_t = base_row.at("wall_s").as_number();
      const double cur_t = cur_row->at("wall_s").as_number();
      if (base_t >= *min_seconds && cur_t > base_t * (1.0 + *max_regress)) {
        std::cerr << "FAIL [" << name << "]: wall time " << cur_t << "s > "
                  << (1.0 + *max_regress) << "x baseline " << base_t << "s\n";
        ++failures;
      } else {
        std::cout << "ok   [" << name << "]: " << cur_t << "s vs baseline "
                  << base_t << "s\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_check: " << e.what() << "\n";
    return 2;
  }
  if (failures > 0) {
    std::cerr << failures << " regression(s)\n";
    return 1;
  }
  std::cout << "bench_check: no regressions\n";
  return 0;
}
