// Perf-smoke gate: compare a fresh egt.bench_fitness/v1 document (written
// by bench/ablation_fitness_engine --json) against the committed baseline.
//
//   * counters (pairs_evaluated, games_played) and the final table hash
//     are deterministic — any difference is a correctness regression and
//     fails exactly;
//   * wall time is environment-dependent — a row fails only when it is past
//     the relative budget (--max-regress, default 25%) AND past the absolute
//     --noise-floor above the baseline; --min-seconds can additionally skip
//     very fast rows entirely. Gate policy lives in bench_check_lib.hpp and
//     is unit-tested in tests/tools/.
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_check_lib.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

egt::util::JsonValue load(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  auto doc = egt::util::JsonValue::parse(buf.str());
  if (!doc.is_object() || !doc.has("schema") ||
      doc.at("schema").as_string() != "egt.bench_fitness/v1") {
    throw std::runtime_error(path + " is not an egt.bench_fitness/v1 doc");
  }
  return doc;
}

// --cross: an egt.simcheck_counters/v1 document (tools/simcheck
// --counters-out) lists engine.pairs_evaluated / engine.games_played per
// (case, engine). Every comparable variant must match its case's serial
// reference exactly — the same work-accounting gate as the bench baseline,
// but across engines within one run instead of across runs.
int check_cross(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  const auto doc = egt::util::JsonValue::parse(buf.str());
  if (!doc.is_object() || !doc.has("schema") ||
      doc.at("schema").as_string() != "egt.simcheck_counters/v1") {
    throw std::runtime_error(path +
                             " is not an egt.simcheck_counters/v1 doc");
  }

  // The serial reference of each case comes first in the entry stream.
  std::uint64_t ref_case = 0, ref_pairs = 0, ref_games = 0;
  bool have_ref = false;
  int failures = 0, compared = 0;
  for (const auto& entry : doc.at("entries").items()) {
    const auto case_seed = entry.at("case_seed").as_u64();
    const auto engine = entry.at("engine").as_string();
    const auto pairs = entry.at("pairs_evaluated").as_u64();
    const auto games = entry.at("games_played").as_u64();
    if (engine == "serial") {
      ref_case = case_seed;
      ref_pairs = pairs;
      ref_games = games;
      have_ref = true;
      continue;
    }
    if (!entry.at("comparable").as_bool()) continue;
    if (!have_ref || ref_case != case_seed) {
      std::cerr << "FAIL [case " << case_seed << "/" << engine
                << "]: no serial reference entry precedes it\n";
      ++failures;
      continue;
    }
    ++compared;
    if (pairs != ref_pairs) {
      std::cerr << "FAIL [case " << case_seed << "/" << engine
                << "]: pairs_evaluated " << pairs << " != serial "
                << ref_pairs << "\n";
      ++failures;
    }
    if (entry.has("games_comparable") &&
        !entry.at("games_comparable").as_bool()) {
      continue;  // per-rank dedup caches make games partition-dependent
    }
    if (games != ref_games) {
      std::cerr << "FAIL [case " << case_seed << "/" << engine
                << "]: games_played " << games << " != serial " << ref_games
                << "\n";
      ++failures;
    }
  }
  if (failures > 0) {
    std::cerr << failures << " cross-engine counter mismatch(es)\n";
    return 1;
  }
  std::cout << "bench_check --cross: " << compared
            << " engine entr(ies) match their serial reference\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("bench_check",
                "fail when a bench_fitness run regresses vs the baseline");
  auto baseline_path = cli.opt<std::string>(
      "baseline", "BENCH_fitness.json", "committed baseline document");
  auto current_path =
      cli.opt<std::string>("current", "", "freshly produced document");
  auto max_regress = cli.opt<double>(
      "max-regress", 0.25, "tolerated relative wall-time slowdown");
  auto min_seconds = cli.opt<double>(
      "min-seconds", 0.05,
      "rows faster than this in the baseline skip the time gate");
  auto noise_floor = cli.opt<double>(
      "noise-floor", 0.005,
      "absolute wall-time slack (seconds) always tolerated on top of the "
      "relative budget — lets sub-millisecond rows be gated without timer "
      "noise tripping the ratio test");
  auto cross_path = cli.opt<std::string>(
      "cross", "",
      "diff cross-engine counters of an egt.simcheck_counters/v1 document "
      "instead of a bench baseline");
  auto trace_overhead = cli.opt<double>(
      "trace-overhead", -1.0,
      "also gate '<name> + trace' rows of --current to this relative "
      "overhead vs their untraced twin (negative = off)");
  cli.parse(argc, argv);
  if (!cross_path->empty()) {
    try {
      return check_cross(*cross_path);
    } catch (const std::exception& e) {
      std::cerr << "bench_check: " << e.what() << "\n";
      return 2;
    }
  }
  if (current_path->empty()) {
    std::cerr << "--current is required\n";
    return 2;
  }

  int failures = 0;
  try {
    const auto baseline = load(*baseline_path);
    const auto current = load(*current_path);
    bench::TimeGate gate;
    gate.max_regress = *max_regress;
    gate.min_seconds = *min_seconds;
    gate.noise_floor = *noise_floor;
    if (*trace_overhead >= 0.0) {
      failures += bench::check_trace_overhead(current, *trace_overhead, gate);
    }
    failures += bench::check_baseline(baseline, current, gate);
  } catch (const std::exception& e) {
    std::cerr << "bench_check: " << e.what() << "\n";
    return 2;
  }
  if (failures > 0) {
    std::cerr << failures << " regression(s)\n";
    return 1;
  }
  std::cout << "bench_check: no regressions\n";
  return 0;
}
