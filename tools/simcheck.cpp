// simcheck: differential fuzzing, replay and statistical validation.
//
// Modes (first match wins):
//   --self-test        inject a broken dedup copy, expect catch + shrink
//   --replay FILE      re-run a repro JSON, checking the recorded trace
//   --stats            statistical suite only
//   --stats-preset G   single full-budget mean-field trajectory check of
//                      registry preset G (nightly per-preset sweep)
//   --kernels          cross-validate the batch fitness kernels (AVX2 vs
//                      scalar at 1e-12 relative, walkers bitwise)
//   (default)          fuzz: sample --seeds configs from --start, run every
//                      applicable engine pair, shrink failures (--shrink)
//                      and write runnable repro JSONs under --out
//
// Exit status: 0 all green, 1 mismatches/failed checks, 2 usage or I/O.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "simcheck/case.hpp"
#include "simcheck/kernels.hpp"
#include "simcheck/repro.hpp"
#include "simcheck/selftest.hpp"
#include "simcheck/shrink.hpp"
#include "simcheck/stats.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using namespace egt;

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

void append_counter_entries(util::JsonWriter& w, std::uint64_t case_seed,
                            const char* engine,
                            const simcheck::EngineOutcome& outcome,
                            bool games_comparable) {
  w.begin_object();
  w.field("case_seed", case_seed);
  w.field("engine", engine);
  w.field("pairs_evaluated", outcome.counters.pairs_evaluated);
  w.field("games_played", outcome.counters.games_played);
  w.field("comparable", outcome.counters_comparable);
  // games_played is partition-dependent under dedup (per-rank class-pair
  // caches); bench_check --cross skips the games diff when false.
  w.field("games_comparable", games_comparable);
  w.end_object();
}

int run_self_test(std::uint64_t seed) {
  const auto result = simcheck::run_self_test(seed);
  std::cout << "self-test: injected off-by-one "
            << (result.caught ? "caught" : "MISSED") << ", shrunk to "
            << result.final_ssets << " SSets / " << result.final_generations
            << " generations\n";
  if (!result.detail.empty()) std::cout << "  " << result.detail << "\n";
  if (!result.passed()) {
    std::cerr << "self-test FAILED (need caught + shrunk to <= 4 SSets)\n";
    return 1;
  }
  std::cout << "self-test: ok\n";
  return 0;
}

int run_replay(const std::string& path) {
  const auto replay = simcheck::replay_repro(read_file(path));
  for (const auto& f : replay.result.failures) {
    std::cout << "replayed failure [" << simcheck::engine_kind_name(f.engine)
              << "]: " << f.what << "\n";
  }
  if (replay.recorded_divergence) {
    std::cerr << "replay: fresh reference trace diverges from the recorded "
                 "one at generation "
              << replay.recorded_divergence->generation << ": "
              << replay.recorded_divergence->detail << "\n";
    return 1;
  }
  if (replay.result.passed()) {
    std::cout << "replay: case passes on this build (bug fixed or "
                 "environment-dependent)\n";
    return 0;
  }
  std::cout << "replay: reproduced " << replay.result.failures.size()
            << " failure(s) deterministically\n";
  return 0;
}

int run_stats(std::uint64_t seed, bool quick) {
  const auto report = simcheck::run_statistical_suite(seed, quick);
  int failures = 0;
  for (const auto& c : report.checks) {
    std::cout << (c.passed ? "ok   " : "FAIL ") << "[" << c.name
              << "]: observed " << c.observed << " in [" << c.expected_lo
              << ", " << c.expected_hi << "] — " << c.detail << "\n";
    if (!c.passed) ++failures;
  }
  if (failures > 0) {
    std::cerr << "stats: " << failures << " observable(s) outside the 99% "
              << "confidence region\n";
    return 1;
  }
  std::cout << "stats: all " << report.checks.size() << " observables ok\n";
  return 0;
}

int run_stats_preset(const std::string& preset, std::uint64_t seed,
                     bool quick) {
  const auto c =
      simcheck::check_replicator_trajectory(preset, seed, quick);
  std::cout << (c.passed ? "ok   " : "FAIL ") << "[" << c.name
            << "]: observed " << c.observed << " in [" << c.expected_lo
            << ", " << c.expected_hi << "] — " << c.detail << "\n";
  if (!c.passed) {
    std::cerr << "stats-preset: " << preset
              << " outside the 99% confidence region\n";
    return 1;
  }
  return 0;
}

int run_kernels(std::uint64_t seed) {
  const auto report = simcheck::run_kernel_checks(seed);
  std::cout << "kernels: avx2 "
            << (report.avx2_available ? "active" : "unavailable (scalar only)")
            << "\n";
  int failures = 0;
  for (const auto& c : report.checks) {
    std::cout << (c.passed ? "ok   " : "FAIL ") << "[" << c.name << "]: "
              << c.cases << " case(s)";
    if (!c.detail.empty()) std::cout << " — " << c.detail;
    std::cout << "\n";
    if (!c.passed) ++failures;
  }
  if (failures > 0) {
    std::cerr << "kernels: " << failures << " check(s) FAILED\n";
    return 1;
  }
  std::cout << "kernels: all checks ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("simcheck",
                "differential fuzzing, trace replay and statistical "
                "validation of the EGT engines");
  auto seeds = cli.opt<std::uint64_t>("seeds", 16, "fuzz seeds to run");
  auto start = cli.opt<std::uint64_t>("start", 1, "first fuzz seed");
  auto shrink = cli.flag("shrink", "delta-debug failing configs before "
                                   "writing the repro");
  auto out_dir = cli.opt<std::string>("out", ".",
                                      "directory for failing repro JSONs");
  auto counters_out = cli.opt<std::string>(
      "counters-out", "",
      "write an egt.simcheck_counters/v1 cross-engine counter document");
  auto replay_path =
      cli.opt<std::string>("replay", "", "re-run a repro JSON and exit");
  auto self_test = cli.flag("self-test", "run the broken-dedup self test");
  auto kernels = cli.flag("kernels", "cross-validate the batch fitness "
                                     "kernels (AVX2 vs scalar)");
  auto stats = cli.flag("stats", "run the statistical validation suite");
  auto stats_preset = cli.opt<std::string>(
      "stats-preset", "",
      "run only the mean-field trajectory check for one registry preset");
  auto stats_seed =
      cli.opt<std::uint64_t>("stats-seed", 20120427, "statistical suite seed");
  auto quick = cli.flag("quick", "shrink the statistical Monte-Carlo "
                                 "budgets ~5x (CI smoke)");
  cli.parse(argc, argv);

  try {
    if (*self_test) return run_self_test(*stats_seed);
    if (*kernels) return run_kernels(*stats_seed);
    if (!replay_path->empty()) return run_replay(*replay_path);
    if (!stats_preset->empty()) {
      return run_stats_preset(*stats_preset, *stats_seed, *quick);
    }
    if (*stats) return run_stats(*stats_seed, *quick);

    std::ostringstream counters;
    util::JsonWriter counters_writer(counters, 2);
    counters_writer.begin_object();
    counters_writer.field("schema", "egt.simcheck_counters/v1");
    counters_writer.key("entries").begin_array();

    int failing_cases = 0;
    for (std::uint64_t i = 0; i < *seeds; ++i) {
      const std::uint64_t fuzz_seed = *start + i;
      auto spec = simcheck::sample_case(fuzz_seed);
      auto result = simcheck::run_case(spec);

      const bool dedup_active =
          spec.config.dedup &&
          spec.config.fitness_mode == core::FitnessMode::Analytic;
      append_counter_entries(counters_writer, fuzz_seed, "serial",
                             result.reference, /*games_comparable=*/true);
      for (const auto& [kind, outcome] : result.outcomes) {
        const bool multi_rank =
            kind == simcheck::EngineKind::Parallel ||
            kind == simcheck::EngineKind::ParallelReplicated ||
            kind == simcheck::EngineKind::ParallelFt ||
            kind == simcheck::EngineKind::ParallelFtFaulty;
        append_counter_entries(counters_writer, fuzz_seed,
                               simcheck::engine_kind_name(kind), outcome,
                               !(dedup_active && multi_rank));
      }

      if (result.passed()) {
        std::cout << "seed " << fuzz_seed << ": ok ("
                  << result.outcomes.size() << " variant(s))\n";
        continue;
      }
      ++failing_cases;
      for (const auto& f : result.failures) {
        std::cout << "seed " << fuzz_seed << ": FAIL ["
                  << simcheck::engine_kind_name(f.engine) << "] " << f.what
                  << "\n";
      }
      if (*shrink) {
        const auto shrunk = simcheck::shrink_case(spec);
        std::cout << "seed " << fuzz_seed << ": shrunk to "
                  << shrunk.spec.config.ssets << " SSets / "
                  << shrunk.spec.config.generations << " generations ("
                  << shrunk.attempts << " attempts)\n";
        result = shrunk.result;
      }
      const auto path = std::filesystem::path(*out_dir) /
                        ("simcheck_repro_" + std::to_string(fuzz_seed) +
                         ".json");
      std::ofstream os(path);
      if (!os) throw std::runtime_error("cannot write " + path.string());
      os << simcheck::repro_to_json(result) << "\n";
      std::cout << "seed " << fuzz_seed << ": repro written to "
                << path.string() << "\n";
    }

    counters_writer.end_array();
    counters_writer.end_object();
    if (!counters_out->empty()) {
      std::ofstream os(*counters_out);
      if (!os) throw std::runtime_error("cannot write " + *counters_out);
      os << counters.str() << "\n";
    }

    if (failing_cases > 0) {
      std::cerr << failing_cases << "/" << *seeds << " fuzz case(s) FAILED\n";
      return 1;
    }
    std::cout << "simcheck: " << *seeds << " fuzz case(s) ok\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "simcheck: " << e.what() << "\n";
    return 2;
  }
}
