// egtd_soak: chaos soak for the job scheduler (CI: egtd-soak).
//
// Three modes, all exiting non-zero on the first violated invariant:
//
//   --start S --count N      seeded in-process chaos schedules
//                            (serve/chaos.hpp): worker kills, watchdog
//                            expiries, preemption, a mid-run hard stop
//                            with optional torn journal tail, then
//                            recover-and-drain. Every completed job must
//                            be bit-identical to an undisturbed serial
//                            run; no acknowledged job lost or run twice.
//
//   --kill-seed S            the real thing: fork a child scheduler into
//                            the data dir, SIGKILL it mid-run, then
//                            recover in this process and drain. Every job
//                            the child durably acknowledged must survive,
//                            and all completions must match the oracle.
//
//   --smoke-jobs N           admission/throughput smoke: N tiny jobs
//                            submitted at once against a small queue
//                            bound; accepted ones must all complete,
//                            overflow must be load-shed as
//                            rejected: capacity (never dropped silently).
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "obs/metrics.hpp"
#include "serve/chaos.hpp"
#include "serve/jobspec.hpp"
#include "serve/scheduler.hpp"
#include "util/cli.hpp"

namespace {
namespace fs = std::filesystem;
using namespace egt;

int run_seed_sweep(std::uint64_t start, std::uint64_t count,
                   const std::string& data_dir, bool verbose) {
  int failures = 0;
  std::size_t total_completed = 0;
  std::uint64_t total_retries = 0;
  std::uint64_t total_preemptions = 0;
  for (std::uint64_t seed = start; seed < start + count; ++seed) {
    const serve::ServeChaosOutcome out =
        serve::run_serve_schedule(seed, data_dir);
    total_completed += out.completed;
    total_retries += out.retries;
    total_preemptions += out.preemptions;
    if (!out.ok) {
      ++failures;
      std::printf("FAIL %s\n", out.detail.c_str());
    } else if (verbose) {
      std::printf("ok   %s (completed=%zu requeued=%zu retries=%llu "
                  "preemptions=%llu)\n",
                  out.detail.c_str(), out.completed, out.requeued,
                  static_cast<unsigned long long>(out.retries),
                  static_cast<unsigned long long>(out.preemptions));
    }
  }
  std::printf(
      "egtd soak: %llu seed(s), %d failure(s); %zu completions verified "
      "bit-identical, %llu retries, %llu preemptions exercised\n",
      static_cast<unsigned long long>(count), failures, total_completed,
      static_cast<unsigned long long>(total_retries),
      static_cast<unsigned long long>(total_preemptions));
  return failures == 0 ? 0 : 1;
}

/// Child half of --kill-seed: serve the schedule's jobs in data_dir,
/// appending each durably acknowledged job id to the ack file (fsynced, so
/// the parent's "acknowledged implies recoverable" check is sound), then
/// spin until SIGKILLed.
[[noreturn]] void kill_mode_child(const serve::ServeChaosSchedule& plan,
                                  const std::string& data_dir,
                                  const std::string& ack_path) {
  serve::SchedulerOptions opts = plan.options;
  opts.data_dir = data_dir;
  serve::Scheduler sched(opts);
  sched.recover();
  sched.start();
  const int ack_fd =
      ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  for (const std::string& spec : plan.specs) {
    const serve::SubmitOutcome out = sched.submit(spec);
    if (out.accepted && ack_fd >= 0) {
      const std::string line = std::to_string(out.job_id) + "\n";
      (void)!::write(ack_fd, line.data(), line.size());
      ::fsync(ack_fd);
    }
  }
  // Serve until the parent's SIGKILL lands — mid-generation, mid-fsync,
  // wherever it happens to fall.
  for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

int run_kill_seed(std::uint64_t seed, const std::string& data_dir,
                  bool verbose) {
  const serve::ServeChaosSchedule plan = serve::make_serve_schedule(seed);
  fs::remove_all(data_dir);
  fs::create_directories(data_dir);
  const std::string ack_path = data_dir + "/acked.ids";

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) kill_mode_child(plan, data_dir, ack_path);

  // Let the child make some progress, then kill it without warning. The
  // delay shifts where the kill lands run to run; the invariants below
  // hold wherever it falls.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(20 + static_cast<int>(seed % 7) * 15));
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);

  std::set<std::uint64_t> acked;
  {
    std::ifstream in(ack_path);
    std::uint64_t id;
    while (in >> id) acked.insert(id);
  }

  serve::SchedulerOptions opts = plan.options;
  opts.data_dir = data_dir;
  serve::Scheduler sched(opts);
  const auto rep = sched.recover();
  for (const std::uint64_t id : acked) {
    if (!sched.state(id).has_value()) {
      std::printf("FAIL kill-seed %llu: acknowledged job %llu lost\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(id));
      return 1;
    }
  }
  sched.start();
  sched.drain();
  sched.shutdown();

  std::size_t completed = 0;
  for (const std::uint64_t id : acked) {
    if (*sched.state(id) != serve::JobState::Completed) {
      std::printf("FAIL kill-seed %llu: job %llu ended %s\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(id),
                  to_string(*sched.state(id)));
      return 1;
    }
    const serve::JobResult got = *sched.result(id);
    const serve::JobSpec spec = serve::parse_job_spec(plan.specs[id - 1]);
    obs::MetricsRegistry reg;
    core::Engine oracle(spec.config, &reg);
    while (oracle.generation() < spec.config.generations) oracle.step();
    if (got.table_hash != oracle.population().table_hash()) {
      std::printf("FAIL kill-seed %llu: job %llu table diverged\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(id));
      return 1;
    }
    ++completed;
  }
  if (verbose) {
    std::printf("ok   kill-seed %llu: killed pid mid-run, recovered "
                "replayed=%zu requeued=%zu, %zu/%zu acked jobs completed "
                "bit-identical\n",
                static_cast<unsigned long long>(seed), rep.replayed,
                rep.requeued, completed, acked.size());
  }
  std::printf("egtd kill soak: seed %llu ok (%zu jobs verified after real "
              "SIGKILL)\n",
              static_cast<unsigned long long>(seed), completed);
  return 0;
}

int run_smoke(std::size_t njobs, const std::string& data_dir) {
  fs::remove_all(data_dir);
  serve::SchedulerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = njobs;  // exactly fits; one extra must be shed
  opts.data_dir = data_dir;
  obs::MetricsRegistry metrics;
  opts.metrics = &metrics;
  serve::Scheduler sched(opts);
  sched.start();

  serve::JobSpec spec;
  spec.config.ssets = 6;
  spec.config.memory = 1;
  spec.config.generations = 3;
  spec.config.fitness_mode = core::FitnessMode::Sampled;
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < njobs; ++i) {
    spec.tenant = "t" + std::to_string(i % 7);
    spec.config.seed = 1000 + i;
    const serve::SubmitOutcome out =
        sched.submit(serve::job_spec_to_json(spec));
    if (!out.accepted) {
      std::printf("FAIL smoke: job %zu rejected (%s) under capacity\n", i,
                  out.rejected.c_str());
      return 1;
    }
    ++accepted;
  }
  // The queue is now exactly full (less whatever already finished); an
  // overfull burst must shed, not wedge. Retry until the bound is visibly
  // enforced or everything drained.
  const serve::SubmitOutcome overflow =
      sched.submit(serve::job_spec_to_json(spec));
  const bool shed = !overflow.accepted && overflow.rejected == "capacity";
  sched.drain();
  sched.shutdown();
  std::size_t completed = 0;
  for (const serve::JobStatus& js : sched.statuses()) {
    if (js.state == serve::JobState::Completed) ++completed;
  }
  if (completed < accepted) {
    std::printf("FAIL smoke: %zu accepted, only %zu completed\n", accepted,
                completed);
    return 1;
  }
  std::printf("egtd smoke: %zu concurrent jobs completed over %u workers "
              "(overflow %s)\n",
              completed, opts.workers,
              shed ? "load-shed as rejected: capacity"
                   : "absorbed by early finishers");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Cli cli("egtd_soak", "chaos soak for the egtd job scheduler");
    auto start = cli.opt<std::uint64_t>("start", 1, "first seed");
    auto count = cli.opt<std::uint64_t>("count", 0, "seeds to run");
    auto kill_seed = cli.opt<std::uint64_t>(
        "kill-seed", 0,
        "fork a real scheduler process, SIGKILL it mid-run, recover and "
        "verify (0 = off)");
    auto smoke = cli.opt<std::int64_t>(
        "smoke-jobs", 0, "concurrent-job smoke with this many jobs (0 = off)");
    auto data_dir = cli.opt<std::string>("data-dir", "egtd_soak.data",
                                         "scratch data dir (wiped)");
    auto verbose = cli.flag("verbose", "per-seed detail");
    cli.parse(argc, argv);

    int rc = 0;
    if (*count > 0) {
      rc |= run_seed_sweep(*start, *count, *data_dir, *verbose);
    }
    if (*kill_seed != 0) {
      rc |= run_kill_seed(*kill_seed, *data_dir, *verbose);
    }
    if (*smoke > 0) {
      rc |= run_smoke(static_cast<std::size_t>(*smoke), *data_dir);
    }
    if (*count == 0 && *kill_seed == 0 && *smoke == 0) {
      std::fprintf(stderr,
                   "nothing to do: pass --count, --kill-seed or "
                   "--smoke-jobs\n");
      return 2;
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
