// trace_report: offline analysis of a flight-recorder trace
// (egt.trace/v1 Chrome trace-event JSON written by --trace-out).
//
//   trace_report --trace run.trace.json             # breakdown report
//   trace_report --trace run.trace.json --top 10    # 10 slowest generations
//   trace_report --trace run.trace.json --validate  # schema check, exit 0/1
//   trace_report --trace run.trace.json --calibrate # kernel ns/round table
//
// The default report answers the paper's performance questions from one
// recorded run: where each rank's time went (compute = game play + apply,
// comm = the three communication phases), the run's critical path (sum
// over generations of the slowest rank's generation span — the lower
// bound no amount of overlap can beat), the slowest generations, and —
// for ft runs — the recorded failure-handling events.
//
// --calibrate turns a traced run into a RoundCostTable entry for the
// performance simulator (src/machine/costmodel.hpp): game_play span time
// divided by games*rounds gives ns per game round for the traced memory
// depth. Only meaningful for fitness modes that actually play rounds
// (sampled/frozen); analytic runs mostly hit the dedup cache.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using egt::util::JsonValue;

struct Event {
  std::string name;
  std::string cat;
  std::string ph;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::int64_t pid = 0;
  std::int64_t tid = 0;
  std::uint64_t flow_id = 0;
  std::uint64_t arg = 0;
  bool has_arg = false;
  std::string arg_name;
};

struct Trace {
  std::vector<Event> events;
  std::map<std::string, std::string> meta;  // otherData (strings only)
  std::uint64_t dropped = 0;
  std::map<std::int64_t, std::string> process_names;
};

Trace load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open trace: " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  const JsonValue doc = JsonValue::parse(ss.str());
  Trace t;
  if (const JsonValue* other = doc.find("otherData")) {
    for (const auto& [k, v] : other->members()) {
      if (k == "dropped_events") {
        t.dropped = v.as_u64();
      } else if (v.is_string()) {
        t.meta[k] = v.as_string();
      }
    }
  }
  for (const JsonValue& e : doc.at("traceEvents").items()) {
    Event ev;
    ev.ph = e.at("ph").as_string();
    ev.pid = static_cast<std::int64_t>(e.at("pid").as_u64());
    if (const JsonValue* name = e.find("name")) ev.name = name->as_string();
    if (const JsonValue* cat = e.find("cat")) ev.cat = cat->as_string();
    if (const JsonValue* ts = e.find("ts")) ev.ts_us = ts->as_number();
    if (const JsonValue* dur = e.find("dur")) ev.dur_us = dur->as_number();
    if (const JsonValue* tid = e.find("tid")) {
      ev.tid = static_cast<std::int64_t>(tid->as_u64());
    }
    if (const JsonValue* id = e.find("id")) ev.flow_id = id->as_u64();
    if (const JsonValue* args = e.find("args")) {
      if (ev.ph == "M") {
        if (const JsonValue* n = args->find("name")) {
          if (ev.name == "process_name") t.process_names[ev.pid] = n->as_string();
        }
      } else if (!args->members().empty()) {
        ev.arg_name = args->members().front().first;
        ev.arg = args->members().front().second.as_u64();
        ev.has_arg = true;
      }
    }
    t.events.push_back(std::move(ev));
  }
  return t;
}

std::string rank_label(const Trace& t, std::int64_t pid) {
  const auto it = t.process_names.find(pid);
  if (it != t.process_names.end()) return it->second;
  return "pid " + std::to_string(pid);
}

// -- validate -----------------------------------------------------------------

int validate(const Trace& t) {
  int errors = 0;
  const auto fail = [&errors](const std::string& what) {
    std::fprintf(stderr, "INVALID: %s\n", what.c_str());
    ++errors;
  };
  const auto schema = t.meta.find("schema");
  if (schema == t.meta.end() || schema->second != "egt.trace/v1") {
    fail("otherData.schema is not egt.trace/v1");
  }
  std::size_t spans = 0;
  std::set<std::uint64_t> starts, ends;
  for (const Event& e : t.events) {
    if (e.ph == "M") continue;
    if (e.name.empty()) fail("event without a name");
    if (e.ph == "X") {
      ++spans;
      if (e.dur_us < 0) fail("span with negative duration: " + e.name);
    } else if (e.ph == "s") {
      starts.insert(e.flow_id);
    } else if (e.ph == "f") {
      ends.insert(e.flow_id);
    } else if (e.ph != "i") {
      fail("unexpected event phase: " + e.ph);
    }
  }
  if (spans == 0) fail("no span (ph=X) events — nothing was recorded");
  // Every flow head must have a tail (a receive of a message nobody sent
  // is impossible). Tails without heads are fine: that is exactly what an
  // injected message drop looks like.
  std::size_t orphan_heads = 0;
  for (const std::uint64_t id : ends) {
    if (starts.find(id) == starts.end()) ++orphan_heads;
  }
  if (orphan_heads > 0) {
    fail(std::to_string(orphan_heads) + " flow end(s) without a start");
  }
  const std::size_t unreceived = [&] {
    std::size_t n = 0;
    for (const std::uint64_t id : starts) {
      if (ends.find(id) == ends.end()) ++n;
    }
    return n;
  }();
  if (errors == 0) {
    std::printf(
        "trace OK: %zu events, %zu spans, %zu flows (%zu unreceived), "
        "%llu dropped\n",
        t.events.size(), spans, starts.size(), unreceived,
        static_cast<unsigned long long>(t.dropped));
    return 0;
  }
  std::fprintf(stderr, "trace INVALID: %d error(s)\n", errors);
  return 1;
}

// -- default report -----------------------------------------------------------

bool is_compute_phase(const std::string& name) {
  return name == "phase.game_play" || name == "phase.apply_update";
}

bool is_comm_phase(const std::string& name) {
  return name == "phase.plan_bcast" || name == "phase.fitness_return" ||
         name == "phase.decision_bcast";
}

void report(const Trace& t, int top_k) {
  struct PerRank {
    double compute_us = 0.0;
    double comm_us = 0.0;
    double ft_us = 0.0;  // ft phases: checkpoint, recovery, election
    double comm_spans_us = 0.0;  // comm.send/recv span time
    double total_us = 0.0;       // generation-span time
    std::uint64_t generations = 0;
  };
  std::map<std::int64_t, PerRank> ranks;
  // generation -> per-pid duration (the critical path needs the max).
  std::map<std::uint64_t, std::map<std::int64_t, double>> gens;
  std::map<std::string, std::uint64_t> ft_events;

  for (const Event& e : t.events) {
    if (e.ph == "i" && e.cat == "ft") ++ft_events[e.name];
    if (e.ph != "X") continue;
    PerRank& r = ranks[e.pid];
    if (is_compute_phase(e.name)) r.compute_us += e.dur_us;
    if (is_comm_phase(e.name)) r.comm_us += e.dur_us;
    if (e.name.rfind("phase.ft_", 0) == 0) r.ft_us += e.dur_us;
    if (e.name == "comm.send" || e.name == "comm.bcast_send" ||
        e.name == "comm.recv") {
      r.comm_spans_us += e.dur_us;
    }
    if (e.name == "generation") {
      r.total_us += e.dur_us;
      ++r.generations;
      if (e.has_arg) {
        auto& slot = gens[e.arg][e.pid];
        slot = std::max(slot, e.dur_us);
      }
    }
  }

  if (const auto it = t.meta.find("config_summary"); it != t.meta.end()) {
    std::printf("config: %s\n", it->second.c_str());
  }
  std::printf("\nper-rank breakdown (span time, ms):\n");
  std::printf("  %-12s %10s %10s %10s %10s %8s\n", "rank", "compute",
              "comm", "ft", "total", "gens");
  for (const auto& [pid, r] : ranks) {
    if (r.total_us == 0.0 && r.compute_us == 0.0 && r.comm_us == 0.0) {
      // The pool pseudo-rank has no generation spans; report it below.
      continue;
    }
    std::printf("  %-12s %10.2f %10.2f %10.2f %10.2f %8llu\n",
                rank_label(t, pid).c_str(), r.compute_us / 1e3, r.comm_us / 1e3,
                r.ft_us / 1e3, r.total_us / 1e3,
                static_cast<unsigned long long>(r.generations));
  }
  for (const auto& [pid, r] : ranks) {
    if (r.total_us != 0.0 || r.compute_us != 0.0 || r.comm_us != 0.0) continue;
    std::printf("  %-12s (no engine spans)\n", rank_label(t, pid).c_str());
  }

  // Critical path: per generation the slowest rank bounds progress — the
  // protocol synchronizes every generation, so these maxima add up.
  double critical_us = 0.0;
  for (const auto& [gen, by_pid] : gens) {
    double worst = 0.0;
    for (const auto& [pid, dur] : by_pid) worst = std::max(worst, dur);
    critical_us += worst;
  }
  if (!gens.empty()) {
    std::printf("\ncritical path (sum of per-generation maxima): %.2f ms over "
                "%zu generations\n",
                critical_us / 1e3, gens.size());
  }

  if (top_k > 0 && !gens.empty()) {
    std::vector<std::pair<double, std::uint64_t>> slow;
    slow.reserve(gens.size());
    for (const auto& [gen, by_pid] : gens) {
      double worst = 0.0;
      for (const auto& [pid, dur] : by_pid) worst = std::max(worst, dur);
      slow.emplace_back(worst, gen);
    }
    std::sort(slow.rbegin(), slow.rend());
    const std::size_t n = std::min<std::size_t>(slow.size(),
                                                static_cast<std::size_t>(top_k));
    std::printf("\ntop %zu slowest generations:\n", n);
    for (std::size_t i = 0; i < n; ++i) {
      std::printf("  gen %-8llu %10.3f ms\n",
                  static_cast<unsigned long long>(slow[i].second),
                  slow[i].first / 1e3);
    }
  }

  if (!ft_events.empty()) {
    std::printf("\nft events:\n");
    for (const auto& [name, count] : ft_events) {
      std::printf("  %-24s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }
  if (t.dropped > 0) {
    std::printf("\nwarning: %llu event(s) dropped by ring wrap — raise "
                "--trace-capacity for complete data\n",
                static_cast<unsigned long long>(t.dropped));
  }
}

// -- calibrate ----------------------------------------------------------------

int calibrate(const Trace& t) {
  const auto meta_u64 = [&](const char* key) -> std::uint64_t {
    const auto it = t.meta.find(key);
    return it == t.meta.end() ? 0 : std::strtoull(it->second.c_str(), nullptr, 10);
  };
  const std::uint64_t memory = meta_u64("memory");
  const std::uint64_t rounds = meta_u64("rounds");
  const auto mode_it = t.meta.find("fitness_mode");
  const std::string mode = mode_it == t.meta.end() ? "?" : mode_it->second;
  if (rounds == 0) {
    std::fprintf(stderr,
                 "calibrate: trace has no rounds metadata (record with "
                 "run_simulation --trace-out)\n");
    return 1;
  }
  std::uint64_t games = 0;
  double game_play_us = 0.0;
  for (const Event& e : t.events) {
    if (e.ph != "X" || e.name != "phase.game_play") continue;
    game_play_us += e.dur_us;
    if (e.has_arg && e.arg_name == "games") games += e.arg;
  }
  if (games == 0) {
    std::fprintf(stderr,
                 "calibrate: no games recorded in phase.game_play spans — "
                 "an analytic run that never replayed a game cannot "
                 "calibrate the kernel (use --fitness sampled)\n");
    return 1;
  }
  const double total_rounds =
      static_cast<double>(games) * static_cast<double>(rounds);
  const double ns_per_round = game_play_us * 1e3 / total_rounds;
  std::printf("kernel calibration from trace (mode=%s):\n", mode.c_str());
  std::printf("  games:          %llu\n",
              static_cast<unsigned long long>(games));
  std::printf("  rounds/game:    %llu\n",
              static_cast<unsigned long long>(rounds));
  std::printf("  game_play time: %.3f ms\n", game_play_us / 1e3);
  std::printf("  ns per round:   %.2f\n", ns_per_round);
  std::printf("\nRoundCostTable entry (src/machine/costmodel.hpp):\n");
  std::printf("  t.indexed_ns[%llu] = %.2f;\n",
              static_cast<unsigned long long>(memory), ns_per_round);
  if (mode != "sampled" && mode != "frozen") {
    std::printf("\nnote: mode %s caches game results — the figure above "
                "includes cache hits and understates the raw kernel cost\n",
                mode.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  egt::util::Cli cli("trace_report",
                     "analyze an egt.trace/v1 flight-recorder trace");
  auto trace_path = cli.opt<std::string>("trace", "", "trace JSON to analyze");
  auto top = cli.opt<int>("top", 5, "slowest generations to list (0 = none)");
  auto do_validate =
      cli.flag("validate", "schema-check the trace; exit 0 when valid");
  auto do_calibrate = cli.flag(
      "calibrate",
      "derive a machine-model RoundCostTable entry from the traced run");
  cli.parse(argc, argv);
  if (trace_path->empty()) {
    std::fprintf(stderr, "error: --trace PATH is required\n%s",
                 cli.usage().c_str());
    return 2;
  }
  try {
    const Trace t = load(*trace_path);
    if (*do_validate) return validate(t);
    if (*do_calibrate) return calibrate(t);
    report(t, *top);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
