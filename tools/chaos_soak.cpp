// Chaos soak driver: run a contiguous slice of the seeded chaos-schedule
// space (src/ft/chaos.hpp) and fail loudly on the first divergence from
// the serial oracle. CI sweeps hundreds of seeds with this; locally:
//
//   chaos_soak --count 50                 # seeds 0..49
//   chaos_soak --start 200 --count 100    # a different slice
//   chaos_soak --seed 17 --verbose        # replay one failing schedule
#include <cstdint>
#include <cstdio>

#include "ft/chaos.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  egt::util::Cli cli("chaos_soak",
                     "seeded random fault schedules vs the serial oracle");
  const auto start = cli.opt<std::uint64_t>(
      "start", 0, "first seed of the slice to run");
  const auto count = cli.opt<std::uint64_t>(
      "count", 25, "how many consecutive seeds to run");
  const auto seed = cli.opt<std::int64_t>(
      "seed", -1, "run exactly this one seed (overrides --start/--count)");
  const auto verbose =
      cli.flag("verbose", "print every schedule, not just failures");
  cli.parse(argc, argv);

  const std::uint64_t first =
      *seed >= 0 ? static_cast<std::uint64_t>(*seed) : *start;
  const std::uint64_t n = *seed >= 0 ? 1 : *count;

  std::uint64_t failures = 0;
  int ranks_lost = 0;
  int failovers = 0;
  for (std::uint64_t s = first; s < first + n; ++s) {
    const auto outcome = egt::ft::run_chaos_schedule(s);
    ranks_lost += outcome.ranks_lost;
    failovers += outcome.failovers;
    if (!outcome.ok) {
      ++failures;
      std::fprintf(stderr, "FAIL %s\n", outcome.detail.c_str());
    } else if (*verbose) {
      std::printf("ok   %s (lost=%d failovers=%d)\n", outcome.detail.c_str(),
                  outcome.ranks_lost, outcome.failovers);
    }
  }
  std::printf(
      "chaos_soak: %llu/%llu schedules bit-identical "
      "(%d ranks lost, %d failovers across the slice)\n",
      static_cast<unsigned long long>(n - failures),
      static_cast<unsigned long long>(n), ranks_lost, failovers);
  return failures == 0 ? 0 : 1;
}
