// egtd: the simulation-serving daemon (DESIGN.md §11).
//
// Jobs arrive as egt.job/v1 JSON objects, one per line, on stdin; every
// scheduler transition leaves as one NDJSON event line on stdout. The
// daemon is crash-safe: accepted jobs are fsynced into the data dir's
// egt.jobs/v1 journal before the "submitted" acknowledgement is printed,
// and a restarted egtd replays the journal — completed jobs keep their
// results, unfinished ones resume from their newest intact checkpoint.
//
//   # run two tenants' jobs over one worker pool, durable under ./served
//   cat jobs.ndjson | egtd --data-dir served --workers 2 --slice 64
//
//   # resume whatever an earlier (killed) egtd left behind, then drain
//   egtd --data-dir served < /dev/null
//
// Input lines:
//   {"schema":"egt.job/v1","tenant":"alice","game":"hawk_dove",
//    "config":{"ssets":32,"generations":2000}}       submit a job
//   {"cmd":"cancel","job_id":3}                      cancel one
//
// SIGTERM/SIGINT stop gracefully: running jobs are checkpointed at their
// next generation boundary and stay acknowledged in the journal for the
// next egtd to finish. On stdin EOF the daemon drains and exits (pass
// --hold to keep serving until a signal instead).
#include <poll.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

#include "serve/jobspec.hpp"
#include "serve/scheduler.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
extern "C" void request_stop(int) { g_stop = 1; }

std::mutex g_out_mu;

void print_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(g_out_mu);
  std::fputs(line.c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

std::string event_line(const egt::serve::JobEvent& ev) {
  std::ostringstream os;
  egt::util::JsonWriter w(os, 0);
  w.begin_object();
  w.field("event", std::string(egt::serve::to_string(ev.kind)));
  w.field("job_id", ev.job_id);
  w.field("tenant", ev.tenant);
  w.field("generation", ev.generation);
  if (!ev.detail.empty()) w.field("detail", ev.detail);
  w.end_object();
  return os.str();
}

/// One stdin line: a job spec, or a {"cmd": ...} control object.
void handle_line(egt::serve::Scheduler& sched, const std::string& line) {
  using namespace egt;
  if (line.empty() || line[0] == '#') return;
  // Peek for a control object without disturbing spec errors.
  bool is_cmd = false;
  std::string cmd;
  std::uint64_t cmd_job = 0;
  try {
    const util::JsonValue v = util::JsonValue::parse(line);
    if (v.is_object() && v.find("cmd") != nullptr) {
      is_cmd = true;
      cmd = v.find("cmd")->as_string();
      if (const auto* id = v.find("job_id")) {
        cmd_job = static_cast<std::uint64_t>(id->as_number());
      }
    }
  } catch (const std::exception&) {
    // fall through: submit() reports the parse error uniformly
  }
  if (is_cmd) {
    std::ostringstream os;
    util::JsonWriter w(os, 0);
    w.begin_object();
    if (cmd == "cancel") {
      w.field("event", std::string("cancel_requested"));
      w.field("job_id", cmd_job);
      w.field("ok", sched.cancel(cmd_job));
    } else {
      w.field("event", std::string("error"));
      w.field("detail", "unknown cmd \"" + cmd + "\"");
    }
    w.end_object();
    print_line(os.str());
    return;
  }
  const serve::SubmitOutcome out = sched.submit(line);
  if (!out.accepted) {
    std::ostringstream os;
    util::JsonWriter w(os, 0);
    w.begin_object();
    w.field("event", std::string("rejected"));
    w.field("reason", out.rejected);
    w.end_object();
    print_line(os.str());
  }
  // Accepted submissions are announced by the Submitted event itself.
}

}  // namespace

int run_cli(int argc, char** argv) {
  using namespace egt;
  util::Cli cli("egtd",
                "simulation job daemon: NDJSON jobs in, NDJSON events out");
  auto data_dir = cli.opt<std::string>(
      "data-dir", "egtd.data",
      "journal + checkpoints + metric streams live here; a restart with the "
      "same dir resumes the previous daemon's queue");
  auto workers = cli.opt<int>("workers", 1, "worker threads");
  auto capacity = cli.opt<int>(
      "queue-capacity", 64,
      "max queued+running jobs; submissions beyond it are load-shed with "
      "rejected: capacity");
  auto slice = cli.opt<std::int64_t>(
      "slice", 0,
      "generations per dispatch before a job is preempted (checkpointed and "
      "requeued) when other work waits; 0 runs jobs to completion");
  auto max_attempts = cli.opt<int>(
      "max-attempts", 3, "failed dispatches before a job turns failed");
  auto watchdog = cli.opt<double>(
      "watchdog-seconds", 0.0,
      "per-attempt wall deadline enforced at generation boundaries; an "
      "expired attempt retries with exponential backoff (0 = off)");
  auto stream_every = cli.opt<std::int64_t>(
      "metrics-stream-every", 0,
      "per-generation NDJSON metrics per dispatch under "
      "<data-dir>/streams/ (0 = off)");
  auto keep = cli.opt<int>("checkpoint-keep", 2,
                           "checkpoint generations retained per job");
  auto hold = cli.flag(
      "hold", "keep serving after stdin EOF (until SIGTERM/SIGINT)");
  cli.parse(argc, argv);

  serve::SchedulerOptions opts;
  opts.workers = static_cast<unsigned>(*workers > 0 ? *workers : 1);
  opts.queue_capacity = static_cast<std::size_t>(*capacity > 0 ? *capacity : 1);
  opts.slice_generations = *slice > 0 ? static_cast<std::uint64_t>(*slice) : 0;
  opts.max_attempts = static_cast<std::uint32_t>(*max_attempts > 0
                                                     ? *max_attempts
                                                     : 1);
  opts.watchdog_seconds = *watchdog;
  opts.metrics_stream_every =
      *stream_every > 0 ? static_cast<std::uint64_t>(*stream_every) : 0;
  opts.checkpoint_keep = *keep;
  opts.data_dir = *data_dir;
  obs::MetricsRegistry metrics;
  opts.metrics = &metrics;

  serve::Scheduler sched(opts);
  sched.set_event_sink(
      [](const serve::JobEvent& ev) { print_line(event_line(ev)); });

  const auto rep = sched.recover();
  {
    std::ostringstream os;
    util::JsonWriter w(os, 0);
    w.begin_object();
    w.field("event", std::string("recovered"));
    w.field("replayed", static_cast<std::uint64_t>(rep.replayed));
    w.field("terminal", static_cast<std::uint64_t>(rep.completed));
    w.field("requeued", static_cast<std::uint64_t>(rep.requeued));
    w.field("corrupt_skipped", static_cast<std::uint64_t>(rep.corrupt_skipped));
    w.field("truncated_tail", rep.truncated_tail);
    w.end_object();
    print_line(os.str());
  }
  sched.start();

  std::signal(SIGTERM, request_stop);
  std::signal(SIGINT, request_stop);

  // Poll stdin so a signal is noticed within one tick even while no input
  // arrives (a blocked line read would ride out SIGTERM under SA_RESTART).
  std::string buffer;
  bool stdin_open = true;
  while (g_stop == 0) {
    if (!stdin_open) {
      if (!*hold) break;
      ::poll(nullptr, 0, 100);
      continue;
    }
    struct pollfd pfd{STDIN_FILENO, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc <= 0) continue;
    char chunk[4096];
    const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof chunk);
    if (n <= 0) {
      stdin_open = false;
      continue;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      handle_line(sched, buffer.substr(0, nl));
      buffer.erase(0, nl + 1);
    }
  }
  if (!buffer.empty()) handle_line(sched, buffer);

  if (g_stop != 0) {
    // Graceful: running jobs checkpoint at their next generation boundary
    // and stay journaled for the next egtd.
    print_line("{\"event\": \"stopping\", \"reason\": \"signal\"}");
    sched.shutdown();
  } else {
    sched.drain();
    sched.shutdown();
  }

  // Full results for everything that completed under this daemon.
  for (const serve::JobStatus& js : sched.statuses()) {
    if (js.state != serve::JobState::Completed) continue;
    if (const auto result = sched.result(js.id)) {
      print_line(serve::job_result_to_json(js.id, *result));
    }
  }
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
