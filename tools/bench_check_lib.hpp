// Comparison logic behind tools/bench_check, extracted so the perf-gate
// semantics are unit-testable (tests/tools/bench_check_test.cpp) — the gate
// guards CI, so the gate itself needs tests.
//
// Time-gate policy: wall time is environment-dependent, so a row only fails
// when the regression is significant BOTH relatively and absolutely:
//
//   fail  ⇔  base >= min_seconds
//         && cur > base * (1 + max_regress)      (relative budget)
//         && cur > base + noise_floor            (absolute noise floor)
//
// The absolute floor is what lets sub-millisecond rows (the analytic kernel
// rows sit near 0.2–0.9 ms) be gated at all: scheduler jitter alone is worth
// a few ms, so a pure ratio test on such rows fires on timer noise. With the
// floor, `--min-seconds 0` gates every row safely. Counters and hashes are
// deterministic and always compared exactly.
#pragma once

#include <iostream>
#include <string>

#include "util/json.hpp"

namespace egt::bench {

struct TimeGate {
  double max_regress = 0.25;   ///< tolerated relative slowdown
  double min_seconds = 0.05;   ///< baseline rows faster than this skip the gate
  double noise_floor = 0.005;  ///< absolute seconds always tolerated on top
};

/// True when `cur_s` regresses past `base_s` under the gate policy above.
inline bool time_regressed(double base_s, double cur_s, const TimeGate& g) {
  if (base_s < g.min_seconds) return false;
  return cur_s > base_s * (1.0 + g.max_regress) &&
         cur_s > base_s + g.noise_floor;
}

inline const util::JsonValue* find_row(const util::JsonValue& doc,
                                       const std::string& name) {
  for (const auto& row : doc.at("rows").items()) {
    if (row.at("name").as_string() == name) return &row;
  }
  return nullptr;
}

/// --trace-overhead: within one document, every "<name> + trace" row is the
/// same run as "<name>" with the flight recorder on. The traced row must
/// keep the exact counters/hash (tracing must not perturb the trajectory)
/// and stay within `max_overhead` relative wall time on top of the noise
/// floor. Returns the failure count.
inline int check_trace_overhead(const util::JsonValue& doc,
                                double max_overhead, const TimeGate& gate,
                                std::ostream& out = std::cout,
                                std::ostream& err = std::cerr) {
  int failures = 0, compared = 0;
  for (const auto& row : doc.at("rows").items()) {
    const std::string name = row.at("name").as_string();
    const std::string suffix = " + trace";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string base_name = name.substr(0, name.size() - suffix.size());
    const auto* base = find_row(doc, base_name);
    if (base == nullptr) {
      err << "FAIL [" << name << "]: no untraced row '" << base_name
          << "' to compare against\n";
      ++failures;
      continue;
    }
    ++compared;
    for (const char* counter : {"pairs_evaluated", "games_played"}) {
      if (row.at(counter).as_u64() != base->at(counter).as_u64()) {
        err << "FAIL [" << name << "]: " << counter
            << " diverged from the untraced run\n";
        ++failures;
      }
    }
    if (row.at("table_hash").as_string() !=
        base->at("table_hash").as_string()) {
      err << "FAIL [" << name << "]: tracing changed the trajectory\n";
      ++failures;
    }
    const double base_t = base->at("wall_s").as_number();
    const double cur_t = row.at("wall_s").as_number();
    TimeGate overhead_gate = gate;
    overhead_gate.max_regress = max_overhead;
    if (time_regressed(base_t, cur_t, overhead_gate)) {
      err << "FAIL [" << name << "]: traced wall time " << cur_t << "s > "
          << (1.0 + max_overhead) << "x untraced " << base_t << "s\n";
      ++failures;
    } else {
      out << "ok   [" << name << "]: " << cur_t << "s traced vs " << base_t
          << "s untraced ("
          << (base_t > 0 ? (cur_t / base_t - 1.0) * 100.0 : 0.0)
          << "% overhead)\n";
    }
  }
  if (compared == 0) {
    err << "FAIL: no '<name> + trace' rows found\n";
    ++failures;
  }
  return failures;
}

/// Compare every baseline row against the current document: counters and
/// table hash exactly, wall time under the gate. Returns the failure count.
inline int check_baseline(const util::JsonValue& baseline,
                          const util::JsonValue& current, const TimeGate& gate,
                          std::ostream& out = std::cout,
                          std::ostream& err = std::cerr) {
  int failures = 0;
  for (const auto& base_row : baseline.at("rows").items()) {
    const std::string name = base_row.at("name").as_string();
    const auto* cur_row = find_row(current, name);
    if (cur_row == nullptr) {
      err << "FAIL [" << name << "]: missing from current run\n";
      ++failures;
      continue;
    }
    for (const char* counter : {"pairs_evaluated", "games_played"}) {
      const auto base_v = base_row.at(counter).as_u64();
      const auto cur_v = cur_row->at(counter).as_u64();
      if (base_v != cur_v) {
        err << "FAIL [" << name << "]: " << counter << " " << cur_v
            << " != baseline " << base_v << "\n";
        ++failures;
      }
    }
    if (base_row.at("table_hash").as_string() !=
        cur_row->at("table_hash").as_string()) {
      err << "FAIL [" << name << "]: final table hash diverged\n";
      ++failures;
    }
    const double base_t = base_row.at("wall_s").as_number();
    const double cur_t = cur_row->at("wall_s").as_number();
    if (time_regressed(base_t, cur_t, gate)) {
      err << "FAIL [" << name << "]: wall time " << cur_t << "s > "
          << (1.0 + gate.max_regress) << "x baseline " << base_t << "s (+"
          << gate.noise_floor << "s floor)\n";
      ++failures;
    } else {
      out << "ok   [" << name << "]: " << cur_t << "s vs baseline " << base_t
          << "s\n";
    }
  }
  return failures;
}

}  // namespace egt::bench
