#include "pop/graph.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/config.hpp"

namespace egt::pop {
namespace {

/// Adjacency snapshot for whole-graph equality checks.
std::vector<std::vector<SSetId>> adjacency_of(const InteractionGraph& g) {
  std::vector<std::vector<SSetId>> adj(g.nodes());
  if (g.is_complete()) return adj;  // implicit: nothing to snapshot
  for (SSetId i = 0; i < g.nodes(); ++i) {
    const auto ns = g.neighbors(i);
    adj[i].assign(ns.begin(), ns.end());
  }
  return adj;
}

TEST(Graph, CompleteIsImplicit) {
  const auto g = InteractionGraph::complete(10);
  EXPECT_TRUE(g.is_complete());
  EXPECT_EQ(g.nodes(), 10u);
  EXPECT_EQ(g.degree(3), 9u);
  EXPECT_EQ(g.edges(), 45u);
  EXPECT_TRUE(g.are_neighbors(0, 9));
  EXPECT_FALSE(g.are_neighbors(4, 4));
  EXPECT_THROW((void)g.neighbors(0), std::invalid_argument);
}

TEST(Graph, RingDegreeAndSymmetry) {
  const auto g = InteractionGraph::ring(10, 2);
  EXPECT_FALSE(g.is_complete());
  EXPECT_EQ(g.edges(), 20u);
  for (SSetId i = 0; i < 10; ++i) {
    ASSERT_EQ(g.degree(i), 4u);
    for (SSetId j : g.neighbors(i)) {
      ASSERT_TRUE(g.are_neighbors(j, i)) << i << "-" << j;
    }
  }
}

TEST(Graph, RingNeighboursAreNearest) {
  const auto g = InteractionGraph::ring(8, 1);
  const auto n0 = g.neighbors(0);
  EXPECT_EQ(std::vector<SSetId>(n0.begin(), n0.end()),
            (std::vector<SSetId>{1, 7}));
  EXPECT_TRUE(g.are_neighbors(0, 1));
  EXPECT_FALSE(g.are_neighbors(0, 2));
}

TEST(Graph, RingValidation) {
  EXPECT_THROW(InteractionGraph::ring(2, 1), std::invalid_argument);
  EXPECT_THROW(InteractionGraph::ring(8, 4), std::invalid_argument);
  EXPECT_THROW(InteractionGraph::ring(8, 0), std::invalid_argument);
}

TEST(Graph, VonNeumannLattice) {
  const auto g = InteractionGraph::lattice(4, 3, /*moore=*/false);
  EXPECT_EQ(g.nodes(), 12u);
  for (SSetId i = 0; i < 12; ++i) {
    ASSERT_EQ(g.degree(i), 4u);
  }
  // Node (1,1) = id 5: neighbours (0,1)=4, (2,1)=6, (1,0)=1, (1,2)=9.
  const auto ns = g.neighbors(5);
  EXPECT_EQ(std::vector<SSetId>(ns.begin(), ns.end()),
            (std::vector<SSetId>{1, 4, 6, 9}));
}

TEST(Graph, MooreLatticeHasEightNeighbours) {
  const auto g = InteractionGraph::lattice(5, 5, /*moore=*/true);
  for (SSetId i = 0; i < 25; ++i) {
    ASSERT_EQ(g.degree(i), 8u);
  }
  EXPECT_EQ(g.edges(), 25u * 8u / 2u);
}

TEST(Graph, LatticeWrapsAround) {
  const auto g = InteractionGraph::lattice(4, 4, false);
  // Corner (0,0) = 0 wraps to (3,0)=3 and (0,3)=12.
  EXPECT_TRUE(g.are_neighbors(0, 3));
  EXPECT_TRUE(g.are_neighbors(0, 12));
  EXPECT_FALSE(g.are_neighbors(0, 5));
}

TEST(Graph, LatticeValidation) {
  EXPECT_THROW(InteractionGraph::lattice(2, 5, false), std::invalid_argument);
  EXPECT_THROW(InteractionGraph::lattice(5, 2, false), std::invalid_argument);
}

TEST(Graph, NeighbourListsAreSortedAndSelfFree) {
  for (const auto& g :
       {InteractionGraph::ring(12, 3), InteractionGraph::lattice(4, 4, true)}) {
    for (SSetId i = 0; i < g.nodes(); ++i) {
      const auto ns = g.neighbors(i);
      std::set<SSetId> unique(ns.begin(), ns.end());
      ASSERT_EQ(unique.size(), ns.size()) << "duplicates at " << i;
      ASSERT_FALSE(unique.count(i)) << "self-loop at " << i;
      ASSERT_TRUE(std::is_sorted(ns.begin(), ns.end()));
    }
  }
}

// The cross-rank contract from the header: graphs are built
// deterministically from (kind, parameters), so every rank reconstructs
// the identical structure from the SimConfig alone — no topology is ever
// communicated. Two independent builds must agree edge-for-edge.
TEST(Graph, SimConfigReconstructionIsDeterministic) {
  core::SimConfig ring;
  ring.ssets = 24;
  ring.interaction.kind = core::InteractionSpec::Kind::Ring;
  ring.interaction.ring_k = 3;

  core::SimConfig lattice;
  lattice.ssets = 24;
  lattice.interaction.kind = core::InteractionSpec::Kind::Lattice2D;
  lattice.interaction.lattice_width = 6;
  lattice.interaction.moore = true;

  core::SimConfig complete;
  complete.ssets = 24;

  for (const auto& cfg : {ring, lattice, complete}) {
    const auto a = core::make_interaction_graph(cfg);
    const auto b = core::make_interaction_graph(cfg);
    EXPECT_EQ(a.nodes(), b.nodes());
    EXPECT_EQ(a.is_complete(), b.is_complete());
    EXPECT_EQ(a.edges(), b.edges());
    EXPECT_EQ(a.to_string(), b.to_string());
    EXPECT_EQ(adjacency_of(a), adjacency_of(b));
  }
}

TEST(Graph, SimConfigReconstructionMatchesTheFactories) {
  core::SimConfig cfg;
  cfg.ssets = 30;
  cfg.interaction.kind = core::InteractionSpec::Kind::Ring;
  cfg.interaction.ring_k = 2;
  EXPECT_EQ(adjacency_of(core::make_interaction_graph(cfg)),
            adjacency_of(InteractionGraph::ring(30, 2)));

  cfg.interaction.kind = core::InteractionSpec::Kind::Lattice2D;
  cfg.interaction.lattice_width = 5;  // height = ssets / width = 6
  cfg.interaction.moore = false;
  EXPECT_EQ(adjacency_of(core::make_interaction_graph(cfg)),
            adjacency_of(InteractionGraph::lattice(5, 6, false)));

  cfg.interaction.kind = core::InteractionSpec::Kind::Complete;
  const auto g = core::make_interaction_graph(cfg);
  EXPECT_TRUE(g.is_complete());
  EXPECT_EQ(g.nodes(), 30u);
}

TEST(Graph, SimConfigGraphsKeepSymmetryAndDegreeInvariants) {
  core::SimConfig ring;
  ring.ssets = 17;  // odd size: wrap arithmetic has no mirror shortcuts
  ring.interaction.kind = core::InteractionSpec::Kind::Ring;
  ring.interaction.ring_k = 4;

  core::SimConfig lattice;
  lattice.ssets = 35;
  lattice.interaction.kind = core::InteractionSpec::Kind::Lattice2D;
  lattice.interaction.lattice_width = 7;  // 7 x 5 torus
  lattice.interaction.moore = false;

  for (const auto& cfg : {ring, lattice}) {
    const auto g = core::make_interaction_graph(cfg);
    const std::uint32_t expected_degree =
        cfg.interaction.kind == core::InteractionSpec::Kind::Ring
            ? 2 * cfg.interaction.ring_k
            : 4;
    std::uint64_t degree_sum = 0;
    for (SSetId i = 0; i < g.nodes(); ++i) {
      ASSERT_EQ(g.degree(i), expected_degree) << g.to_string() << " @" << i;
      degree_sum += g.degree(i);
      for (SSetId j : g.neighbors(i)) {
        ASSERT_TRUE(g.are_neighbors(j, i))
            << g.to_string() << ": " << i << "->" << j << " not symmetric";
      }
    }
    EXPECT_EQ(g.edges(), degree_sum / 2);
  }
}

TEST(Graph, Labels) {
  EXPECT_EQ(InteractionGraph::complete(5).to_string(), "complete(5)");
  EXPECT_EQ(InteractionGraph::ring(9, 2).to_string(), "ring(9, k=2)");
  EXPECT_NE(InteractionGraph::lattice(3, 4, true).to_string().find("moore"),
            std::string::npos);
}

}  // namespace
}  // namespace egt::pop
