#include "pop/graph.hpp"

#include <gtest/gtest.h>

#include <set>

namespace egt::pop {
namespace {

TEST(Graph, CompleteIsImplicit) {
  const auto g = InteractionGraph::complete(10);
  EXPECT_TRUE(g.is_complete());
  EXPECT_EQ(g.nodes(), 10u);
  EXPECT_EQ(g.degree(3), 9u);
  EXPECT_EQ(g.edges(), 45u);
  EXPECT_TRUE(g.are_neighbors(0, 9));
  EXPECT_FALSE(g.are_neighbors(4, 4));
  EXPECT_THROW((void)g.neighbors(0), std::invalid_argument);
}

TEST(Graph, RingDegreeAndSymmetry) {
  const auto g = InteractionGraph::ring(10, 2);
  EXPECT_FALSE(g.is_complete());
  EXPECT_EQ(g.edges(), 20u);
  for (SSetId i = 0; i < 10; ++i) {
    ASSERT_EQ(g.degree(i), 4u);
    for (SSetId j : g.neighbors(i)) {
      ASSERT_TRUE(g.are_neighbors(j, i)) << i << "-" << j;
    }
  }
}

TEST(Graph, RingNeighboursAreNearest) {
  const auto g = InteractionGraph::ring(8, 1);
  const auto n0 = g.neighbors(0);
  EXPECT_EQ(std::vector<SSetId>(n0.begin(), n0.end()),
            (std::vector<SSetId>{1, 7}));
  EXPECT_TRUE(g.are_neighbors(0, 1));
  EXPECT_FALSE(g.are_neighbors(0, 2));
}

TEST(Graph, RingValidation) {
  EXPECT_THROW(InteractionGraph::ring(2, 1), std::invalid_argument);
  EXPECT_THROW(InteractionGraph::ring(8, 4), std::invalid_argument);
  EXPECT_THROW(InteractionGraph::ring(8, 0), std::invalid_argument);
}

TEST(Graph, VonNeumannLattice) {
  const auto g = InteractionGraph::lattice(4, 3, /*moore=*/false);
  EXPECT_EQ(g.nodes(), 12u);
  for (SSetId i = 0; i < 12; ++i) {
    ASSERT_EQ(g.degree(i), 4u);
  }
  // Node (1,1) = id 5: neighbours (0,1)=4, (2,1)=6, (1,0)=1, (1,2)=9.
  const auto ns = g.neighbors(5);
  EXPECT_EQ(std::vector<SSetId>(ns.begin(), ns.end()),
            (std::vector<SSetId>{1, 4, 6, 9}));
}

TEST(Graph, MooreLatticeHasEightNeighbours) {
  const auto g = InteractionGraph::lattice(5, 5, /*moore=*/true);
  for (SSetId i = 0; i < 25; ++i) {
    ASSERT_EQ(g.degree(i), 8u);
  }
  EXPECT_EQ(g.edges(), 25u * 8u / 2u);
}

TEST(Graph, LatticeWrapsAround) {
  const auto g = InteractionGraph::lattice(4, 4, false);
  // Corner (0,0) = 0 wraps to (3,0)=3 and (0,3)=12.
  EXPECT_TRUE(g.are_neighbors(0, 3));
  EXPECT_TRUE(g.are_neighbors(0, 12));
  EXPECT_FALSE(g.are_neighbors(0, 5));
}

TEST(Graph, LatticeValidation) {
  EXPECT_THROW(InteractionGraph::lattice(2, 5, false), std::invalid_argument);
  EXPECT_THROW(InteractionGraph::lattice(5, 2, false), std::invalid_argument);
}

TEST(Graph, NeighbourListsAreSortedAndSelfFree) {
  for (const auto& g :
       {InteractionGraph::ring(12, 3), InteractionGraph::lattice(4, 4, true)}) {
    for (SSetId i = 0; i < g.nodes(); ++i) {
      const auto ns = g.neighbors(i);
      std::set<SSetId> unique(ns.begin(), ns.end());
      ASSERT_EQ(unique.size(), ns.size()) << "duplicates at " << i;
      ASSERT_FALSE(unique.count(i)) << "self-loop at " << i;
      ASSERT_TRUE(std::is_sorted(ns.begin(), ns.end()));
    }
  }
}

TEST(Graph, Labels) {
  EXPECT_EQ(InteractionGraph::complete(5).to_string(), "complete(5)");
  EXPECT_EQ(InteractionGraph::ring(9, 2).to_string(), "ring(9, k=2)");
  EXPECT_NE(InteractionGraph::lattice(3, 4, true).to_string().find("moore"),
            std::string::npos);
}

}  // namespace
}  // namespace egt::pop
