#include "pop/population_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "game/named.hpp"

namespace egt::pop {
namespace {

class PopulationIoTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "egt_pop.bin";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(PopulationIoTest, PureRoundTrip) {
  util::Xoshiro256 rng(5);
  const auto pop = Population::random_pure(17, 3, rng);
  save_population(pop, path_);
  const auto back = load_population(path_);
  ASSERT_EQ(back.size(), pop.size());
  EXPECT_EQ(back.table_hash(), pop.table_hash());
  for (SSetId i = 0; i < pop.size(); ++i) {
    ASSERT_TRUE(back.strategy(i) == pop.strategy(i)) << i;
  }
}

TEST_F(PopulationIoTest, MixedRoundTripPreservesProbabilitiesExactly) {
  util::Xoshiro256 rng(6);
  const auto pop = Population::random_mixed(9, 1, rng);
  save_population(pop, path_);
  const auto back = load_population(path_);
  for (SSetId i = 0; i < pop.size(); ++i) {
    const auto& a = pop.strategy(i).as_mixed();
    const auto& b = back.strategy(i).as_mixed();
    for (game::State s = 0; s < a.states(); ++s) {
      ASSERT_EQ(a.coop_prob(s), b.coop_prob(s));  // bitwise
    }
  }
}

TEST_F(PopulationIoTest, FitnessIsNotPersisted) {
  util::Xoshiro256 rng(7);
  auto pop = Population::random_pure(4, 1, rng);
  pop.set_fitness(2, 42.0);
  save_population(pop, path_);
  const auto back = load_population(path_);
  EXPECT_DOUBLE_EQ(back.fitness(2), 0.0);
}

TEST_F(PopulationIoTest, MemorySixStrategiesSurvive) {
  util::Xoshiro256 rng(8);
  const auto pop = Population::random_pure(3, 6, rng);
  save_population(pop, path_);
  EXPECT_EQ(load_population(path_).table_hash(), pop.table_hash());
}

TEST_F(PopulationIoTest, RejectsGarbageAndTruncation) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a population";
  }
  EXPECT_THROW((void)load_population(path_), std::invalid_argument);

  util::Xoshiro256 rng(9);
  save_population(Population::random_pure(8, 2, rng), path_);
  // Truncate the file in the middle of a record.
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<char> data(size / 2);
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();
  EXPECT_THROW((void)load_population(path_), std::invalid_argument);
}

TEST_F(PopulationIoTest, MissingFileThrows) {
  EXPECT_THROW((void)load_population(::testing::TempDir() + "egt_nope.bin"),
               std::invalid_argument);
}

}  // namespace
}  // namespace egt::pop
