#include "pop/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "game/named.hpp"

namespace egt::pop {
namespace {

Population uniform_population(std::size_t n, const game::Strategy& s) {
  return Population(std::vector<game::Strategy>(n, s));
}

TEST(Stats, CensusOfUniformPopulation) {
  const auto p = uniform_population(10, game::named::win_stay_lose_shift(1));
  const auto c = census(p);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.front().count, 10u);
  EXPECT_DOUBLE_EQ(dominant_fraction(p), 1.0);
  EXPECT_DOUBLE_EQ(strategy_entropy(p), 0.0);
  EXPECT_EQ(distinct_strategies(p), 1u);
}

TEST(Stats, CensusSortsByCount) {
  std::vector<game::Strategy> ss;
  for (int i = 0; i < 6; ++i) ss.emplace_back(game::named::all_c(1));
  for (int i = 0; i < 3; ++i) ss.emplace_back(game::named::all_d(1));
  ss.emplace_back(game::named::tit_for_tat(1));
  const Population p(std::move(ss));
  const auto c = census(p);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0].count, 6u);
  EXPECT_EQ(c[1].count, 3u);
  EXPECT_EQ(c[2].count, 1u);
  EXPECT_DOUBLE_EQ(dominant_fraction(p), 0.6);
}

TEST(Stats, EntropyOfBalancedSplit) {
  std::vector<game::Strategy> ss;
  for (int i = 0; i < 5; ++i) ss.emplace_back(game::named::all_c(1));
  for (int i = 0; i < 5; ++i) ss.emplace_back(game::named::all_d(1));
  const Population p(std::move(ss));
  EXPECT_NEAR(strategy_entropy(p), std::log(2.0), 1e-12);
}

TEST(Stats, MeanCoopProbability) {
  EXPECT_DOUBLE_EQ(
      mean_coop_probability(uniform_population(4, game::named::all_c(1))),
      1.0);
  EXPECT_DOUBLE_EQ(
      mean_coop_probability(uniform_population(4, game::named::all_d(1))),
      0.0);
  // TFT cooperates in half its states.
  EXPECT_DOUBLE_EQ(
      mean_coop_probability(uniform_population(4, game::named::tit_for_tat(1))),
      0.5);
}

TEST(Stats, FractionNearExactAndFuzzy) {
  std::vector<game::Strategy> ss;
  for (int i = 0; i < 8; ++i) {
    ss.emplace_back(game::named::win_stay_lose_shift(1));
  }
  ss.emplace_back(game::named::all_d(1));
  ss.emplace_back(game::MixedStrategy::from_probs({0.95, 0.05, 0.05, 0.95}));
  const Population p(std::move(ss));
  const game::Strategy wsls = game::named::win_stay_lose_shift(1);
  EXPECT_DOUBLE_EQ(fraction_near(p, wsls, 1e-9), 0.8);
  EXPECT_DOUBLE_EQ(fraction_near(p, wsls, 0.25), 0.9);  // picks up the fuzzy one
}

TEST(Stats, MeanPairwiseDistanceOfMonomorphicPopulationIsZero) {
  EXPECT_DOUBLE_EQ(
      mean_pairwise_distance(uniform_population(6, game::named::all_c(1))),
      0.0);
}

TEST(Stats, MeanPairwiseDistanceOfKnownMix) {
  // ALLC vs ALLD differ by 1 in each of 4 states: L2 distance 2. One pair.
  std::vector<game::Strategy> ss{game::named::all_c(1),
                                 game::named::all_d(1)};
  EXPECT_DOUBLE_EQ(mean_pairwise_distance(Population(std::move(ss))), 2.0);
}

TEST(Stats, MeanPairwiseDistanceAveragesOverPairs) {
  // Two ALLC and one ALLD: pairs (C,C)=0, (C,D)=2, (C,D)=2 -> mean 4/3.
  std::vector<game::Strategy> ss{game::named::all_c(1),
                                 game::named::all_c(1),
                                 game::named::all_d(1)};
  EXPECT_NEAR(mean_pairwise_distance(Population(std::move(ss))), 4.0 / 3.0,
              1e-12);
}

TEST(Stats, FormatCensusNamesDominantStrategy) {
  const auto p = uniform_population(5, game::named::win_stay_lose_shift(1));
  const std::string text = format_census(p, 3);
  EXPECT_NE(text.find("WSLS"), std::string::npos);
  EXPECT_NE(text.find("100%"), std::string::npos);
}

}  // namespace
}  // namespace egt::pop
