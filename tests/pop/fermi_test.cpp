#include "pop/fermi.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace egt::pop {
namespace {

TEST(Fermi, EqualPayoffsGiveCoinFlip) {
  EXPECT_DOUBLE_EQ(fermi_probability(2.0, 2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(fermi_probability(0.0, 0.0, 100.0), 0.5);
}

TEST(Fermi, BetterTeacherMoreLikelyAdopted) {
  EXPECT_GT(fermi_probability(3.0, 1.0, 1.0), 0.5);
  EXPECT_LT(fermi_probability(1.0, 3.0, 1.0), 0.5);
}

TEST(Fermi, ZeroBetaIsRandomImitation) {
  // Paper: "a small beta leads to almost random strategy selection".
  EXPECT_DOUBLE_EQ(fermi_probability(100.0, 0.0, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(fermi_probability(0.0, 100.0, 0.0), 0.5);
}

TEST(Fermi, LargeBetaApproachesDeterministicSelection) {
  // Paper: "as beta approaches infinity the better strategy will always be
  // adopted".
  EXPECT_NEAR(fermi_probability(2.0, 1.0, 100.0), 1.0, 1e-12);
  EXPECT_NEAR(fermi_probability(1.0, 2.0, 100.0), 0.0, 1e-12);
}

TEST(Fermi, MatchesClosedFormEquation1) {
  // p = 1 / (1 + exp(-beta (pi_T - pi_L)))
  const double beta = 0.7;
  const double t = 2.3, l = 1.1;
  EXPECT_NEAR(fermi_probability(t, l, beta),
              1.0 / (1.0 + std::exp(-beta * (t - l))), 1e-15);
}

TEST(Fermi, SymmetryIdentity) {
  // p(T,L) + p(L,T) == 1 for any payoffs.
  for (double d : {-5.0, -0.3, 0.0, 0.4, 7.0}) {
    EXPECT_NEAR(fermi_probability(d, 0.0, 1.3) + fermi_probability(0.0, d, 1.3),
                1.0, 1e-12);
  }
}

TEST(Fermi, NumericallyStableForHugeDifferences) {
  EXPECT_DOUBLE_EQ(fermi_probability(1e6, -1e6, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(fermi_probability(-1e6, 1e6, 10.0), 0.0);
}

TEST(Fermi, RejectsNegativeBeta) {
  EXPECT_THROW((void)fermi_probability(1.0, 0.0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace egt::pop
