#include "pop/population.hpp"

#include <gtest/gtest.h>

#include "game/named.hpp"

namespace egt::pop {
namespace {

TEST(Population, RandomPureIsReproducible) {
  util::Xoshiro256 r1(9), r2(9);
  const auto a = Population::random_pure(16, 2, r1);
  const auto b = Population::random_pure(16, 2, r2);
  EXPECT_EQ(a.table_hash(), b.table_hash());
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(a.memory(), 2);
}

TEST(Population, RandomMixedProducesStochasticStrategies) {
  util::Xoshiro256 rng(1);
  const auto p = Population::random_mixed(8, 1, rng);
  bool any_nondegenerate = false;
  for (SSetId i = 0; i < p.size(); ++i) {
    EXPECT_FALSE(p.strategy(i).is_pure());
    if (!p.strategy(i).as_mixed().is_degenerate()) any_nondegenerate = true;
  }
  EXPECT_TRUE(any_nondegenerate);
}

TEST(Population, SetStrategyReplaces) {
  util::Xoshiro256 rng(2);
  auto p = Population::random_pure(4, 1, rng);
  const game::Strategy wsls = game::named::win_stay_lose_shift(1);
  p.set_strategy(2, wsls);
  EXPECT_TRUE(p.strategy(2) == wsls);
}

TEST(Population, SetStrategyValidates) {
  util::Xoshiro256 rng(3);
  auto p = Population::random_pure(4, 1, rng);
  EXPECT_THROW(p.set_strategy(9, game::named::all_c(1)),
               std::invalid_argument);
  EXPECT_THROW(p.set_strategy(0, game::named::all_c(2)),
               std::invalid_argument);
}

TEST(Population, FitnessStorage) {
  util::Xoshiro256 rng(4);
  auto p = Population::random_pure(4, 1, rng);
  p.set_fitness(1, 3.5);
  EXPECT_DOUBLE_EQ(p.fitness(1), 3.5);
  EXPECT_DOUBLE_EQ(p.fitness(0), 0.0);
  EXPECT_EQ(p.fitness().size(), 4u);
}

TEST(Population, TableHashTracksContent) {
  util::Xoshiro256 rng(5);
  auto p = Population::random_pure(8, 1, rng);
  const auto h0 = p.table_hash();
  p.set_strategy(3, game::named::all_d(1));
  EXPECT_NE(p.table_hash(), h0);
}

TEST(Population, MixedMemoryDepthsRejected) {
  std::vector<game::Strategy> strategies;
  strategies.emplace_back(game::named::all_c(1));
  strategies.emplace_back(game::named::all_c(2));
  EXPECT_THROW(Population{std::move(strategies)}, std::invalid_argument);
}

TEST(Population, EmptyRejected) {
  EXPECT_THROW(Population{std::vector<game::Strategy>{}},
               std::invalid_argument);
}

}  // namespace
}  // namespace egt::pop
