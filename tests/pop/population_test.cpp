#include "pop/population.hpp"

#include <gtest/gtest.h>

#include "game/named.hpp"

namespace egt::pop {
namespace {

TEST(Population, RandomPureIsReproducible) {
  util::Xoshiro256 r1(9), r2(9);
  const auto a = Population::random_pure(16, 2, r1);
  const auto b = Population::random_pure(16, 2, r2);
  EXPECT_EQ(a.table_hash(), b.table_hash());
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(a.memory(), 2);
}

TEST(Population, RandomMixedProducesStochasticStrategies) {
  util::Xoshiro256 rng(1);
  const auto p = Population::random_mixed(8, 1, rng);
  bool any_nondegenerate = false;
  for (SSetId i = 0; i < p.size(); ++i) {
    EXPECT_FALSE(p.strategy(i).is_pure());
    if (!p.strategy(i).as_mixed().is_degenerate()) any_nondegenerate = true;
  }
  EXPECT_TRUE(any_nondegenerate);
}

TEST(Population, SetStrategyReplaces) {
  util::Xoshiro256 rng(2);
  auto p = Population::random_pure(4, 1, rng);
  const game::Strategy wsls = game::named::win_stay_lose_shift(1);
  p.set_strategy(2, wsls);
  EXPECT_TRUE(p.strategy(2) == wsls);
}

TEST(Population, SetStrategyValidates) {
  util::Xoshiro256 rng(3);
  auto p = Population::random_pure(4, 1, rng);
  EXPECT_THROW(p.set_strategy(9, game::named::all_c(1)),
               std::invalid_argument);
  EXPECT_THROW(p.set_strategy(0, game::named::all_c(2)),
               std::invalid_argument);
}

TEST(Population, FitnessStorage) {
  util::Xoshiro256 rng(4);
  auto p = Population::random_pure(4, 1, rng);
  p.set_fitness(1, 3.5);
  EXPECT_DOUBLE_EQ(p.fitness(1), 3.5);
  EXPECT_DOUBLE_EQ(p.fitness(0), 0.0);
  EXPECT_EQ(p.fitness().size(), 4u);
}

TEST(Population, TableHashTracksContent) {
  util::Xoshiro256 rng(5);
  auto p = Population::random_pure(8, 1, rng);
  const auto h0 = p.table_hash();
  p.set_strategy(3, game::named::all_d(1));
  EXPECT_NE(p.table_hash(), h0);
}

TEST(Population, InterningSharesClassesAcrossEqualStrategies) {
  std::vector<game::Strategy> ss;
  for (int rep = 0; rep < 3; ++rep) {
    ss.emplace_back(game::named::all_c(1));
    ss.emplace_back(game::named::all_d(1));
  }
  const Population p(std::move(ss));
  EXPECT_EQ(p.class_count(), 2u);
  // Equal strategies share a class id; different ones never do.
  EXPECT_EQ(p.strategy_class(0), p.strategy_class(2));
  EXPECT_EQ(p.strategy_class(0), p.strategy_class(4));
  EXPECT_EQ(p.strategy_class(1), p.strategy_class(3));
  EXPECT_NE(p.strategy_class(0), p.strategy_class(1));
  // Refcounts cover every SSet.
  std::uint32_t members = 0;
  for (const StrategyClass& c : p.classes()) members += c.members;
  EXPECT_EQ(members, p.size());
}

TEST(Population, InterningTracksSetStrategy) {
  std::vector<game::Strategy> ss;
  ss.emplace_back(game::named::all_c(1));
  ss.emplace_back(game::named::all_d(1));
  ss.emplace_back(game::named::all_d(1));
  Population p(std::move(ss));
  EXPECT_EQ(p.class_count(), 2u);

  // Adoption: SSet 0 copies SSet 1's strategy — ALLC's class dies.
  p.set_strategy(0, p.strategy(1));
  EXPECT_EQ(p.class_count(), 1u);
  EXPECT_EQ(p.strategy_class(0), p.strategy_class(1));

  // Mutation to a brand-new strategy revives diversity; the freed slot is
  // recycled, so the class table never grows past peak diversity.
  const std::size_t slots = p.classes().size();
  p.set_strategy(2, game::named::tit_for_tat(1));
  EXPECT_EQ(p.class_count(), 2u);
  EXPECT_EQ(p.classes().size(), slots);
  EXPECT_NE(p.strategy_class(2), p.strategy_class(0));
  EXPECT_TRUE(p.classes()[p.strategy_class(2)].strategy ==
              game::named::tit_for_tat(1));
}

TEST(Population, InterningSurvivesSelfAssignment) {
  std::vector<game::Strategy> ss;
  ss.emplace_back(game::named::all_c(1));
  ss.emplace_back(game::named::all_c(1));
  Population p(std::move(ss));
  // Rewriting an SSet with its own current strategy must not disturb the
  // class table (intern happens before release).
  p.set_strategy(0, p.strategy(0));
  EXPECT_EQ(p.class_count(), 1u);
  EXPECT_EQ(p.strategy_class(0), p.strategy_class(1));
  EXPECT_EQ(p.classes()[p.strategy_class(0)].members, 2u);
}

TEST(Population, ClassHashMatchesStrategyHash) {
  util::Xoshiro256 rng(7);
  const auto p = Population::random_mixed(6, 2, rng);
  for (SSetId i = 0; i < p.size(); ++i) {
    const StrategyClass& c = p.classes()[p.strategy_class(i)];
    EXPECT_TRUE(c.strategy == p.strategy(i));
    EXPECT_EQ(c.hash, p.strategy(i).hash());
  }
}

TEST(Population, MixedMemoryDepthsRejected) {
  std::vector<game::Strategy> strategies;
  strategies.emplace_back(game::named::all_c(1));
  strategies.emplace_back(game::named::all_c(2));
  EXPECT_THROW(Population{std::move(strategies)}, std::invalid_argument);
}

TEST(Population, EmptyRejected) {
  EXPECT_THROW(Population{std::vector<game::Strategy>{}},
               std::invalid_argument);
}

}  // namespace
}  // namespace egt::pop
