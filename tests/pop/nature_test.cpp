#include "pop/nature.hpp"

#include <gtest/gtest.h>

#include <set>

namespace egt::pop {
namespace {

NatureConfig base_config() {
  NatureConfig c;
  c.ssets = 32;
  c.memory = 1;
  c.pc_rate = 0.5;
  c.mutation_rate = 0.25;
  c.beta = 1.0;
  c.seed = 77;
  return c;
}

TEST(Nature, SameSeedSamePlans) {
  NatureAgent a(base_config()), b(base_config());
  for (int g = 0; g < 200; ++g) {
    const auto pa = a.plan_generation();
    const auto pb = b.plan_generation();
    ASSERT_EQ(pa.pc.has_value(), pb.pc.has_value());
    if (pa.pc) {
      ASSERT_EQ(pa.pc->teacher, pb.pc->teacher);
      ASSERT_EQ(pa.pc->learner, pb.pc->learner);
    }
    ASSERT_EQ(pa.mutation.has_value(), pb.mutation.has_value());
    if (pa.mutation) {
      ASSERT_EQ(pa.mutation->target, pb.mutation->target);
      ASSERT_TRUE(pa.mutation->strategy == pb.mutation->strategy);
    }
    // Keep the adoption draw aligned on both agents.
    if (pa.pc) {
      ASSERT_EQ(a.decide_adoption(1.0, 0.0), b.decide_adoption(1.0, 0.0));
    }
  }
}

TEST(Nature, EventRatesMatchConfiguration) {
  auto cfg = base_config();
  cfg.pc_rate = 0.1;       // the paper's production rate
  cfg.mutation_rate = 0.05;  // the paper's mu
  NatureAgent agent(cfg);
  int pcs = 0, muts = 0;
  constexpr int kGens = 20000;
  for (int g = 0; g < kGens; ++g) {
    const auto plan = agent.plan_generation();
    if (plan.pc) {
      ++pcs;
      (void)agent.decide_adoption(0.0, 0.0);
    }
    if (plan.mutation) ++muts;
  }
  EXPECT_NEAR(static_cast<double>(pcs) / kGens, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(muts) / kGens, 0.05, 0.007);
}

TEST(Nature, TeacherAndLearnerAreAlwaysDistinct) {
  NatureAgent agent(base_config());
  for (int g = 0; g < 2000; ++g) {
    const auto plan = agent.plan_generation();
    if (plan.pc) {
      ASSERT_NE(plan.pc->teacher, plan.pc->learner);
      ASSERT_LT(plan.pc->teacher, 32u);
      ASSERT_LT(plan.pc->learner, 32u);
      (void)agent.decide_adoption(0.0, 0.0);
    }
  }
}

TEST(Nature, MutationRespectsStrategySpace) {
  auto cfg = base_config();
  cfg.mutation_rate = 1.0;
  cfg.space = StrategySpace::Pure;
  NatureAgent pure_agent(cfg);
  cfg.space = StrategySpace::Mixed;
  cfg.seed += 1;
  NatureAgent mixed_agent(cfg);
  for (int g = 0; g < 20; ++g) {
    auto pp = pure_agent.plan_generation();
    if (pp.pc) (void)pure_agent.decide_adoption(0, 0);
    ASSERT_TRUE(pp.mutation);
    ASSERT_TRUE(pp.mutation->strategy.is_pure());
    auto pm = mixed_agent.plan_generation();
    if (pm.pc) (void)mixed_agent.decide_adoption(0, 0);
    ASSERT_TRUE(pm.mutation);
    ASSERT_FALSE(pm.mutation->strategy.is_pure());
  }
}

TEST(Nature, MutationTargetsCoverThePopulation) {
  auto cfg = base_config();
  cfg.ssets = 8;
  cfg.mutation_rate = 1.0;
  cfg.pc_rate = 0.0;
  NatureAgent agent(cfg);
  std::set<SSetId> seen;
  for (int g = 0; g < 500; ++g) {
    seen.insert(agent.plan_generation().mutation->target);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Nature, AdoptionFollowsFermiStatistics) {
  auto cfg = base_config();
  cfg.pc_rate = 1.0;
  cfg.mutation_rate = 0.0;
  cfg.beta = 1.0;
  NatureAgent agent(cfg);
  int adopted = 0;
  constexpr int kGens = 20000;
  for (int g = 0; g < kGens; ++g) {
    (void)agent.plan_generation();
    if (agent.decide_adoption(2.0, 1.0)) ++adopted;
  }
  const double expected = fermi_probability(2.0, 1.0, 1.0);
  EXPECT_NEAR(static_cast<double>(adopted) / kGens, expected, 0.01);
}

TEST(Nature, TeacherBetterGateBlocksWorseTeachers) {
  auto cfg = base_config();
  cfg.pc_rate = 1.0;
  cfg.mutation_rate = 0.0;
  cfg.require_teacher_better = true;
  NatureAgent agent(cfg);
  for (int g = 0; g < 200; ++g) {
    (void)agent.plan_generation();
    // Equal or worse teacher can never be adopted under the paper's gate.
    ASSERT_FALSE(agent.decide_adoption(1.0, 1.0));
  }
}

TEST(Nature, QuietGenerationsWhenRatesAreZero) {
  auto cfg = base_config();
  cfg.pc_rate = 0.0;
  cfg.mutation_rate = 0.0;
  NatureAgent agent(cfg);
  for (int g = 0; g < 100; ++g) {
    ASSERT_TRUE(agent.plan_generation().quiet());
  }
  EXPECT_EQ(agent.generations_planned(), 100u);
}

TEST(Nature, UShapedKernelConcentratesNearCorners) {
  auto cfg = base_config();
  cfg.space = StrategySpace::Mixed;
  cfg.kernel = MutationKernel::UShapedProbs;
  cfg.mutation_rate = 1.0;
  cfg.pc_rate = 0.0;
  NatureAgent agent(cfg);
  int near_corner = 0, total = 0;
  for (int g = 0; g < 300; ++g) {
    const auto plan = agent.plan_generation();
    const auto& m = plan.mutation->strategy.as_mixed();
    for (game::State s = 0; s < m.states(); ++s) {
      const double p = m.coop_prob(s);
      ASSERT_GE(p, 0.0);
      ASSERT_LE(p, 1.0);
      if (p < 0.15 || p > 0.85) ++near_corner;
      ++total;
    }
  }
  // Arcsine density puts ~51% of mass outside [0.15, 0.85] (uniform: 30%).
  EXPECT_GT(static_cast<double>(near_corner) / total, 0.42);
}

TEST(Nature, BitFlipKernelStaysNearCurrentStrategy) {
  auto cfg = base_config();
  cfg.space = StrategySpace::Pure;
  cfg.kernel = MutationKernel::PureBitFlip;
  cfg.bitflip_bits = 2;
  cfg.mutation_rate = 1.0;
  cfg.pc_rate = 0.0;
  cfg.memory = 2;
  NatureAgent agent(cfg);
  util::Xoshiro256 rng(3);
  const Population pop = Population::random_pure(cfg.ssets, 2, rng);
  for (int g = 0; g < 100; ++g) {
    const auto plan = agent.plan_generation(&pop);
    ASSERT_TRUE(plan.mutation);
    const auto& mutant = plan.mutation->strategy.as_pure();
    const auto& original = pop.strategy(plan.mutation->target).as_pure();
    const auto dist = mutant.table().hamming_distance(original.table());
    // Two flips: Hamming distance 2, or 0 if both hit the same bit.
    ASSERT_LE(dist, 2u);
  }
}

TEST(Nature, GaussianKernelPerturbsWithinBounds) {
  auto cfg = base_config();
  cfg.space = StrategySpace::Mixed;
  cfg.kernel = MutationKernel::MixedGaussian;
  cfg.gaussian_sigma = 0.05;
  cfg.mutation_rate = 1.0;
  cfg.pc_rate = 0.0;
  NatureAgent agent(cfg);
  util::Xoshiro256 rng(4);
  const Population pop = Population::random_mixed(cfg.ssets, 1, rng);
  for (int g = 0; g < 100; ++g) {
    const auto plan = agent.plan_generation(&pop);
    ASSERT_TRUE(plan.mutation);
    const auto& mutant = plan.mutation->strategy.as_mixed();
    const auto original = pop.strategy(plan.mutation->target).to_mixed();
    for (game::State s = 0; s < 4; ++s) {
      ASSERT_GE(mutant.coop_prob(s), 0.0);
      ASSERT_LE(mutant.coop_prob(s), 1.0);
    }
    // Perturbations are local: typically well under 4 sigma per state.
    ASSERT_LT(mutant.distance(original), 0.05 * 10);
  }
}

TEST(Nature, LocalKernelsRequireThePopulation) {
  auto cfg = base_config();
  cfg.space = StrategySpace::Pure;
  cfg.kernel = MutationKernel::PureBitFlip;
  cfg.mutation_rate = 1.0;
  cfg.pc_rate = 0.0;
  NatureAgent agent(cfg);
  EXPECT_THROW((void)agent.plan_generation(nullptr), std::invalid_argument);
}

TEST(Nature, KernelLocalityPredicate) {
  EXPECT_FALSE(kernel_is_local(MutationKernel::UniformProbs));
  EXPECT_FALSE(kernel_is_local(MutationKernel::UShapedProbs));
  EXPECT_TRUE(kernel_is_local(MutationKernel::PureBitFlip));
  EXPECT_TRUE(kernel_is_local(MutationKernel::MixedGaussian));
}

TEST(Nature, MoranPlansEventsAtTheConfiguredRate) {
  auto cfg = base_config();
  cfg.update_rule = UpdateRule::Moran;
  cfg.pc_rate = 0.25;
  cfg.mutation_rate = 0.0;
  NatureAgent agent(cfg);
  int events = 0;
  constexpr int kGens = 20000;
  for (int g = 0; g < kGens; ++g) {
    const auto plan = agent.plan_generation();
    ASSERT_FALSE(plan.pc.has_value());  // Moran replaces PC entirely
    if (plan.moran) {
      ++events;
      std::vector<double> fitness(cfg.ssets, 1.0);
      (void)agent.select_moran(fitness);
    }
  }
  EXPECT_NEAR(static_cast<double>(events) / kGens, 0.25, 0.01);
}

TEST(Nature, MoranStrongSelectionPicksTheFittest) {
  auto cfg = base_config();
  cfg.update_rule = UpdateRule::Moran;
  cfg.beta = 200.0;
  NatureAgent agent(cfg);
  std::vector<double> fitness(cfg.ssets, 1.0);
  fitness[13] = 2.0;  // clear winner
  for (int trial = 0; trial < 50; ++trial) {
    const auto pick = agent.select_moran(fitness);
    ASSERT_EQ(pick.reproducer, 13u);
    ASSERT_LT(pick.dying, cfg.ssets);
  }
}

TEST(Nature, MoranNeutralSelectionIsUniform) {
  auto cfg = base_config();
  cfg.update_rule = UpdateRule::Moran;
  cfg.beta = 0.0;
  cfg.ssets = 4;
  NatureAgent agent(cfg);
  const std::vector<double> fitness{9.0, 0.0, 5.0, 1.0};  // ignored at beta=0
  std::vector<int> counts(4, 0);
  constexpr int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) {
    ++counts[agent.select_moran(fitness).reproducer];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.25, 0.02);
  }
}

TEST(Nature, MoranSelectionValidatesVectorLength) {
  auto cfg = base_config();
  cfg.update_rule = UpdateRule::Moran;
  NatureAgent agent(cfg);
  std::vector<double> wrong(cfg.ssets - 1, 1.0);
  EXPECT_THROW((void)agent.select_moran(wrong), std::invalid_argument);
}

TEST(Nature, ConfigValidation) {
  auto cfg = base_config();
  cfg.ssets = 1;
  EXPECT_THROW(NatureAgent{cfg}, std::invalid_argument);
  cfg = base_config();
  cfg.pc_rate = 1.5;
  EXPECT_THROW(NatureAgent{cfg}, std::invalid_argument);
  cfg = base_config();
  cfg.beta = -1.0;
  EXPECT_THROW(NatureAgent{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace egt::pop
