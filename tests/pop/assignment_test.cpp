#include "pop/assignment.hpp"

#include <gtest/gtest.h>

#include <set>

namespace egt::pop {
namespace {

TEST(Assignment, PaperSettingOneGamePerAgent) {
  // §V-C: agents per SSet = number of SSets, "so that each agent would
  // handle one game per generation" (one agent idles: no self-play).
  const OpponentAssignment a(8, 8);
  for (std::uint32_t agent = 0; agent < 7; ++agent) {
    EXPECT_EQ(a.games_for_agent(agent), 1u);
  }
  EXPECT_EQ(a.games_for_agent(7), 0u);
  EXPECT_EQ(a.games_per_generation(), 8u * 7u);
  EXPECT_EQ(a.total_agents(), 64u);
}

TEST(Assignment, OpponentsExcludeSelf) {
  const OpponentAssignment a(6, 2);
  for (SSetId s = 0; s < 6; ++s) {
    for (std::uint32_t agent = 0; agent < 2; ++agent) {
      for (SSetId opp : a.opponents_of(s, agent)) {
        ASSERT_NE(opp, s);
        ASSERT_LT(opp, 6u);
      }
    }
  }
}

TEST(Assignment, AgentsPartitionTheOpponentList) {
  for (SSetId ssets : {2u, 5u, 16u, 33u}) {
    for (std::uint32_t agents : {1u, 2u, 3u, 7u, 40u}) {
      const OpponentAssignment a(ssets, agents);
      for (SSetId s = 0; s < ssets; s += 3) {
        std::set<SSetId> covered;
        std::uint32_t total = 0;
        for (std::uint32_t agent = 0; agent < agents; ++agent) {
          const auto opps = a.opponents_of(s, agent);
          ASSERT_EQ(opps.size(), a.games_for_agent(agent));
          total += static_cast<std::uint32_t>(opps.size());
          for (SSetId o : opps) {
            ASSERT_TRUE(covered.insert(o).second)
                << "opponent " << o << " assigned twice";
          }
        }
        ASSERT_EQ(total, ssets - 1) << "not all opponents covered";
        ASSERT_EQ(covered.size(), ssets - 1);
      }
    }
  }
}

TEST(Assignment, LoadIsBalancedWithinOne) {
  const OpponentAssignment a(100, 7);
  std::uint32_t lo = ~0u, hi = 0;
  for (std::uint32_t agent = 0; agent < 7; ++agent) {
    lo = std::min(lo, a.games_for_agent(agent));
    hi = std::max(hi, a.games_for_agent(agent));
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(Assignment, AgentForOpponentInvertsOpponentsOf) {
  for (std::uint32_t agents : {1u, 3u, 9u, 10u}) {
    const OpponentAssignment a(10, agents);
    for (SSetId s = 0; s < 10; ++s) {
      for (std::uint32_t agent = 0; agent < agents; ++agent) {
        for (SSetId opp : a.opponents_of(s, agent)) {
          ASSERT_EQ(a.agent_for_opponent(s, opp), agent)
              << "sset=" << s << " opp=" << opp;
        }
      }
    }
  }
}

TEST(Assignment, Validation) {
  EXPECT_THROW(OpponentAssignment(1, 4), std::invalid_argument);
  EXPECT_THROW(OpponentAssignment(4, 0), std::invalid_argument);
  const OpponentAssignment a(4, 2);
  EXPECT_THROW((void)a.games_for_agent(2), std::invalid_argument);
  EXPECT_THROW((void)a.opponents_of(4, 0), std::invalid_argument);
  EXPECT_THROW((void)a.agent_for_opponent(1, 1), std::invalid_argument);
}

TEST(Assignment, TableVIIIAgentCounts) {
  // Table VIII numerators: a = s gives s^2 agents in the population.
  EXPECT_EQ(OpponentAssignment(1024, 1024).total_agents(), 1048576u);
  EXPECT_EQ(OpponentAssignment(32768, 32768).total_agents(),
            1073741824u);
}

}  // namespace
}  // namespace egt::pop
