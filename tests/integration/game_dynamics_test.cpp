// Textbook dynamics of the non-IPD presets through the full pipeline
// (DESIGN.md §10): hawk-dove settles near its mixed ESS, stag-hunt fixes
// on the risk-dominant equilibrium, RPS keeps cycling instead of fixating,
// and public-goods contribution tracks the sign of r - k. Seeds are
// pinned; every run is bit-deterministic, the bands document the regime.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "game/spec/registry.hpp"
#include "pop/stats.hpp"

namespace egt::core {
namespace {

// Time-averaged population mean of action-0 propensity (dove share /
// cooperation / contribution, depending on the game) over `samples`
// windows of `window` generations after the engine's current state.
double time_averaged_coop(Engine& engine, int samples, std::uint64_t window) {
  double sum = 0.0;
  for (int s = 0; s < samples; ++s) {
    engine.run(window);
    sum += pop::mean_coop_probability(engine.population());
  }
  return sum / samples;
}

TEST(GameDynamics, HawkDoveHoversNearTheMixedEss) {
  // hawk_dove: V/2 < C so pure hawk is not stable; the mixed ESS plays
  // hawk with probability 2/3. The population mean dove share should
  // hover near 1/3 — clearly below one half and clearly above extinction.
  SimConfig cfg;
  cfg.memory = 0;
  cfg.ssets = 48;
  cfg.generations = 0;  // stepped manually below
  cfg.space = pop::StrategySpace::Mixed;
  cfg.game = *game::find_game("hawk_dove");
  cfg.pc_rate = 0.5;
  cfg.mutation_rate = 0.05;
  cfg.beta = 5.0;
  cfg.seed = 31;
  cfg.fitness_mode = FitnessMode::Analytic;
  Engine engine(cfg);
  engine.run(4000);  // burn-in
  const double dove = time_averaged_coop(engine, /*samples=*/40, 100);
  EXPECT_GT(dove, 0.18);
  EXPECT_LT(dove, 0.48);
}

TEST(GameDynamics, StagHuntFixesOnTheRiskDominantHare) {
  // stag_hunt {4,0,3,2}: stag is payoff-dominant but hare risk-dominant
  // (R - T = 1 < P - S = 2; the stag basin needs 2/3 stag players).
  // From a random start under strong imitation the population fixes on
  // hare (action 1).
  SimConfig cfg;
  cfg.memory = 0;
  cfg.ssets = 24;
  cfg.generations = 6000;
  cfg.game = *game::find_game("stag_hunt");
  cfg.pc_rate = 0.5;
  cfg.mutation_rate = 0.0;  // clean fixation
  cfg.beta = 10.0;
  cfg.seed = 7;
  cfg.fitness_mode = FitnessMode::Analytic;
  Engine engine(cfg);
  engine.run_all();
  EXPECT_LT(pop::mean_coop_probability(engine.population()), 0.05);
}

TEST(GameDynamics, RpsNeverFixatesAndKeepsEveryActionAlive) {
  // Zero-sum RPS has no pure ESS: best-response cycling plus mutation
  // keeps all three actions in play. Assert time-averaged shares stay
  // interior — no extinction, no fixation.
  SimConfig cfg;
  cfg.memory = 0;
  cfg.ssets = 48;
  cfg.generations = 0;
  cfg.space = pop::StrategySpace::Mixed;
  cfg.game = *game::find_game("rps");
  cfg.pc_rate = 0.5;
  cfg.mutation_rate = 0.05;
  cfg.beta = 5.0;
  cfg.seed = 11;
  cfg.fitness_mode = FitnessMode::Analytic;
  Engine engine(cfg);
  engine.run(2000);  // burn-in
  double share[3] = {0.0, 0.0, 0.0};
  const int samples = 40;
  for (int s = 0; s < samples; ++s) {
    engine.run(100);
    const auto& pop = engine.population();
    for (pop::SSetId i = 0; i < pop.size(); ++i) {
      const auto& nw = pop.strategy(i).as_nway();
      for (std::uint32_t a = 0; a < 3; ++a) {
        share[a] += nw.action_prob(a) / (samples * pop.size());
      }
    }
  }
  for (std::uint32_t a = 0; a < 3; ++a) {
    EXPECT_GT(share[a], 0.10) << "action " << a << " went extinct";
    EXPECT_LT(share[a], 0.70) << "action " << a << " fixated";
  }
}

TEST(GameDynamics, PublicGoodsContributionTracksRVersusK) {
  // k-window PGG: d(payoff)/d(own contribution) has the sign of r - k.
  // r = 6 > k = 4 makes contributing dominant; r = 2 < k = 4 makes free
  // riding dominant. Same pipeline, opposite fates.
  const auto run_with_r = [](double r) {
    SimConfig cfg;
    cfg.memory = 0;
    cfg.ssets = 24;
    cfg.generations = 0;
    cfg.game = game::GameSpec::public_goods("pgg_test", r, 1.0, /*k=*/4,
                                            /*rounds=*/16);
    cfg.pc_rate = 0.5;
    cfg.mutation_rate = 0.02;
    cfg.beta = 5.0;
    cfg.seed = 17;
    cfg.fitness_mode = FitnessMode::Analytic;
    Engine engine(cfg);
    engine.run(2000);  // burn-in
    return time_averaged_coop(engine, /*samples=*/20, 100);
  };
  const double generous = run_with_r(6.0);
  const double stingy = run_with_r(2.0);
  EXPECT_GT(generous, 0.7) << "r > k should sustain contribution";
  EXPECT_LT(stingy, 0.3) << "r < k should collapse to free riding";
  EXPECT_GT(generous, stingy + 0.4);
}

}  // namespace
}  // namespace egt::core
