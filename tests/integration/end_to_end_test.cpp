// Whole-pipeline smoke tests: engine -> analysis -> artefacts, and the
// machine simulator consuming real calibration output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/heatmap.hpp"
#include "analysis/kmeans.hpp"
#include "core/engine.hpp"
#include "core/observer.hpp"
#include "machine/perfsim.hpp"
#include "pop/stats.hpp"

namespace egt {
namespace {

TEST(EndToEnd, Fig2PipelineProducesSnapshotsClustersAndHeatmaps) {
  core::SimConfig cfg;
  cfg.memory = 1;
  cfg.ssets = 32;
  cfg.generations = 2000;
  cfg.space = pop::StrategySpace::Mixed;
  cfg.game.noise = 0.05;
  cfg.pc_rate = 0.3;
  cfg.mutation_rate = 0.05;
  cfg.beta = 5.0;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  cfg.seed = 8;

  core::Engine engine(cfg);
  core::SnapshotRecorder snaps({0, cfg.generations - 1});
  engine.run_all(&snaps);
  ASSERT_EQ(snaps.snapshots().size(), 2u);

  const auto& final_pop = snaps.snapshots()[1].second;
  const auto points = analysis::strategy_matrix(final_pop);
  const auto clusters = analysis::kmeans(points, 8, 17);
  EXPECT_EQ(clusters.assignment.size(), 32u);

  const std::string path = ::testing::TempDir() + "egt_e2e_fig2.ppm";
  analysis::HeatmapOptions opt;
  opt.row_order = analysis::cluster_sorted_order(clusters);
  analysis::write_heatmap_ppm(path, points, opt);
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

TEST(EndToEnd, CalibrationFeedsSimulatorWithSaneScalingShape) {
  // A tiny real calibration drives the BG/L model; Table VI's qualitative
  // shape (monotone drop in time with processors) must hold.
  const auto table = machine::calibrate_host(/*sample_rounds=*/30000);
  const machine::PerfSimulator sim(machine::bluegene_l(), table);
  machine::Workload w;
  w.memory = 2;
  w.ssets = 1024;
  w.generations = 1000;
  w.pc_rate = 0.01;
  double prev = 1e100;
  for (std::uint64_t p : {128u, 256u, 512u, 1024u, 2048u}) {
    const double t = sim.simulate(w, p).total_seconds;
    ASSERT_LT(t, prev);
    prev = t;
  }
}

TEST(EndToEnd, TimeSeriesObserverTracksTakeover) {
  // Zero mutation + aggressive imitation: dominant fraction must be
  // monotone-ish up and end higher than it started.
  core::SimConfig cfg;
  cfg.memory = 1;
  cfg.ssets = 24;
  cfg.generations = 4000;
  cfg.pc_rate = 0.8;
  cfg.mutation_rate = 0.0;
  cfg.beta = 10.0;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  cfg.seed = 31;

  core::Engine engine(cfg);
  core::TimeSeriesRecorder rec(500);
  engine.run_all(&rec);
  ASSERT_GE(rec.samples().size(), 2u);
  EXPECT_GE(rec.samples().back().dominant_fraction,
            rec.samples().front().dominant_fraction);
  EXPECT_LE(rec.samples().back().distinct, rec.samples().front().distinct);
}

}  // namespace
}  // namespace egt
