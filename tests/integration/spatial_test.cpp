// Structured-population extension: graph-restricted play and imitation.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.hpp"
#include "core/parallel_engine.hpp"
#include "pop/stats.hpp"

namespace egt::core {
namespace {

SimConfig ring_config() {
  SimConfig cfg;
  cfg.ssets = 24;
  cfg.memory = 1;
  cfg.generations = 80;
  cfg.pc_rate = 0.5;
  cfg.mutation_rate = 0.1;
  cfg.seed = 515;
  cfg.fitness_mode = FitnessMode::Analytic;
  cfg.interaction.kind = InteractionSpec::Kind::Ring;
  cfg.interaction.ring_k = 2;
  return cfg;
}

TEST(Spatial, RingConfigValidates) {
  EXPECT_NO_THROW(ring_config().validate());
  auto bad = ring_config();
  bad.interaction.ring_k = 12;  // 2k == ssets
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Spatial, LatticeConfigValidates) {
  auto cfg = ring_config();
  cfg.interaction.kind = InteractionSpec::Kind::Lattice2D;
  cfg.interaction.lattice_width = 6;  // 6 x 4
  EXPECT_NO_THROW(cfg.validate());
  cfg.interaction.lattice_width = 5;  // does not divide 24... 24/5 no
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.interaction.lattice_width = 12;  // height 2 < 3
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Spatial, MoranRuleIsRejectedOnStructuredPopulations) {
  auto cfg = ring_config();
  cfg.update_rule = pop::UpdateRule::Moran;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Spatial, LocalMutationKernelMatchesAcrossEngines) {
  // Bit-flip mutants come from the target's *current* strategy: both
  // engines must consult identical replicas at identical times.
  auto cfg = ring_config();
  cfg.space = pop::StrategySpace::Pure;
  cfg.mutation_kernel = pop::MutationKernel::PureBitFlip;
  cfg.mutation_bits = 2;
  cfg.mutation_rate = 0.5;
  Engine serial(cfg);
  serial.run_all();
  for (auto pattern :
       {CommPattern::PaperBcast, CommPattern::ReplicatedNature}) {
    cfg.comm_pattern = pattern;
    const auto par = run_parallel(cfg, 6);
    ASSERT_EQ(par.population.table_hash(), serial.population().table_hash());
  }
}

TEST(Spatial, ImitationOnlyCrossesEdges) {
  auto cfg = ring_config();
  cfg.mutation_rate = 0.0;
  cfg.pc_rate = 1.0;
  Engine engine(cfg);
  const auto* graph = engine.interaction_graph();
  ASSERT_NE(graph, nullptr);
  for (int g = 0; g < 100; ++g) {
    engine.step();
    const auto& rec = engine.last_record();
    ASSERT_TRUE(rec.pc.has_value());
    ASSERT_TRUE(graph->are_neighbors(rec.pc->teacher, rec.pc->learner))
        << rec.pc->teacher << " -> " << rec.pc->learner;
  }
}

TEST(Spatial, FitnessOnlyCountsNeighbours) {
  // On a ring with k=1, changing a strategy two hops away must not change
  // an SSet's fitness.
  auto cfg = ring_config();
  cfg.interaction.ring_k = 1;
  cfg.fitness_scale = FitnessScale::Total;
  auto graph = make_shared_graph(cfg);
  auto pop = make_initial_population(cfg);
  BlockFitness fit(cfg, 0, cfg.ssets, graph);
  fit.initialize(pop);
  const double f0_before = fit.fitness(0);

  // SSet 5 is not a neighbour of SSet 0 on the k=1 ring.
  pop.set_strategy(5, pop.strategy(6));
  fit.strategy_changed(5, pop, 1);
  EXPECT_DOUBLE_EQ(fit.fitness(0), f0_before);
  // ... but neighbours 4 and 6 may well have moved; at least their rows
  // were re-evaluated (pair counter grew).
  EXPECT_GT(fit.pairs_evaluated(), 0u);
}

TEST(Spatial, PerRoundAverageFitnessStaysInPayoffRange) {
  auto cfg = ring_config();
  Engine engine(cfg);
  engine.run(40);
  for (pop::SSetId i = 0; i < cfg.ssets; ++i) {
    ASSERT_GE(engine.population().fitness(i), 0.0);
    ASSERT_LE(engine.population().fitness(i), 4.0);
  }
}

TEST(Spatial, SerialParallelEquivalenceOnRing) {
  const auto cfg = ring_config();
  Engine serial(cfg);
  serial.run_all();
  for (int nranks : {2, 3, 8}) {
    const auto par = run_parallel(cfg, nranks);
    ASSERT_EQ(par.population.table_hash(), serial.population().table_hash())
        << nranks;
    for (pop::SSetId i = 0; i < cfg.ssets; ++i) {
      ASSERT_DOUBLE_EQ(par.population.fitness(i),
                       serial.population().fitness(i));
    }
  }
}

TEST(Spatial, SerialParallelEquivalenceOnLattice) {
  auto cfg = ring_config();
  cfg.interaction.kind = InteractionSpec::Kind::Lattice2D;
  cfg.interaction.lattice_width = 6;
  cfg.interaction.moore = true;
  Engine serial(cfg);
  serial.run_all();
  const auto par = run_parallel(cfg, 5);
  EXPECT_EQ(par.population.table_hash(), serial.population().table_hash());
}

TEST(Spatial, CompleteKindMatchesUnstructuredEngineExactly) {
  // InteractionSpec::Complete must leave trajectories identical to the
  // original unstructured configuration (the graph is implicit).
  auto cfg = ring_config();
  cfg.interaction = InteractionSpec{};
  Engine structured(cfg);
  structured.run_all();
  SimConfig plain = cfg;
  Engine original(plain);
  original.run_all();
  EXPECT_EQ(structured.population().table_hash(),
            original.population().table_hash());
}

TEST(Spatial, AgentThreadsNowComposeWithStructuredPopulations) {
  // Previously --threads was hard-rejected for structured populations; the
  // agent tier now routes graph neighbours through the pool with a
  // fixed-order reduction, so it must validate and stay bit-identical.
  auto cfg = ring_config();
  EXPECT_NO_THROW([&] {
    auto c = cfg;
    c.agent_threads = 2;
    c.validate();
  }());
  Engine serial(cfg);
  serial.run_all();
  for (unsigned threads : {1u, 2u, 4u}) {
    auto threaded_cfg = cfg;
    threaded_cfg.agent_threads = threads;
    Engine threaded(threaded_cfg);
    threaded.run_all();
    ASSERT_EQ(threaded.population().table_hash(),
              serial.population().table_hash())
        << "agent_threads=" << threads;
    for (pop::SSetId i = 0; i < cfg.ssets; ++i) {
      ASSERT_DOUBLE_EQ(threaded.population().fitness(i),
                       serial.population().fitness(i));
    }
  }
  // And composed with the rank tier on a lattice.
  auto lattice = ring_config();
  lattice.interaction.kind = InteractionSpec::Kind::Lattice2D;
  lattice.interaction.lattice_width = 6;
  Engine lattice_serial(lattice);
  lattice_serial.run_all();
  lattice.agent_threads = 2;
  const auto par = run_parallel(lattice, 4);
  EXPECT_EQ(par.population.table_hash(),
            lattice_serial.population().table_hash());
}

TEST(Spatial, SsetThreadsBitIdenticalOnRing) {
  auto cfg = ring_config();
  Engine serial(cfg);
  serial.run_all();
  cfg.sset_threads = 3;
  Engine threaded(cfg);
  threaded.run_all();
  EXPECT_EQ(threaded.population().table_hash(),
            serial.population().table_hash());
}

TEST(Spatial, StructuredRunsDoLessFitnessWorkPerEvent) {
  // Degree-4 ring vs complete: each strategy change refreshes 2*degree
  // pairs instead of 2*(ssets-1).
  auto ring = ring_config();
  ring.generations = 60;
  Engine ring_engine(ring);
  ring_engine.run_all();
  auto complete = ring_config();
  complete.generations = 60;
  complete.interaction = InteractionSpec{};
  Engine complete_engine(complete);
  complete_engine.run_all();
  EXPECT_LT(ring_engine.pairs_evaluated(), complete_engine.pairs_evaluated());
}

}  // namespace
}  // namespace egt::core
