// The central correctness claim of the parallel design: for any rank count
// and any communication pattern, the parallel engine reproduces the serial
// reference trajectory bit for bit.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/parallel_engine.hpp"
#include "ft/ft_engine.hpp"

namespace egt::core {
namespace {

SimConfig base_config() {
  SimConfig cfg;
  cfg.ssets = 24;
  cfg.memory = 1;
  cfg.generations = 60;
  cfg.pc_rate = 0.4;
  cfg.mutation_rate = 0.2;
  cfg.seed = 2024;
  cfg.fitness_mode = FitnessMode::Analytic;
  return cfg;
}

void expect_equal_outcome(const SimConfig& cfg, int nranks) {
  Engine serial(cfg);
  serial.run_all();
  const auto parallel = run_parallel(cfg, nranks);

  ASSERT_EQ(parallel.population.size(), serial.population().size());
  EXPECT_EQ(parallel.population.table_hash(), serial.population().table_hash())
      << "strategy tables diverged at nranks=" << nranks;
  for (pop::SSetId i = 0; i < serial.population().size(); ++i) {
    ASSERT_DOUBLE_EQ(parallel.population.fitness(i),
                     serial.population().fitness(i))
        << "fitness diverged at SSet " << i << ", nranks=" << nranks;
    ASSERT_TRUE(parallel.population.strategy(i) ==
                serial.population().strategy(i))
        << "strategy diverged at SSet " << i << ", nranks=" << nranks;
  }
}

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, PaperBcastPatternMatchesSerial) {
  auto cfg = base_config();
  cfg.comm_pattern = CommPattern::PaperBcast;
  expect_equal_outcome(cfg, GetParam());
}

TEST_P(RankSweep, ReplicatedNaturePatternMatchesSerial) {
  auto cfg = base_config();
  cfg.comm_pattern = CommPattern::ReplicatedNature;
  expect_equal_outcome(cfg, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 24));

TEST(SerialParallel, MixedStrategiesMatchToo) {
  auto cfg = base_config();
  cfg.space = pop::StrategySpace::Mixed;
  cfg.game.noise = 0.05;
  cfg.generations = 40;
  expect_equal_outcome(cfg, 5);
}

TEST(SerialParallel, SampledModeMatches) {
  auto cfg = base_config();
  cfg.fitness_mode = FitnessMode::Sampled;
  cfg.ssets = 10;
  cfg.generations = 15;
  expect_equal_outcome(cfg, 3);
}

TEST(SerialParallel, SampledFrozenModeMatches) {
  auto cfg = base_config();
  cfg.fitness_mode = FitnessMode::SampledFrozen;
  cfg.generations = 30;
  expect_equal_outcome(cfg, 4);
}

TEST(SerialParallel, HigherMemoryMatches) {
  auto cfg = base_config();
  cfg.memory = 3;
  cfg.ssets = 12;
  cfg.generations = 20;
  expect_equal_outcome(cfg, 4);
}

TEST(SerialParallel, PaperGateMatches) {
  auto cfg = base_config();
  cfg.require_teacher_better = true;
  expect_equal_outcome(cfg, 6);
}

TEST(SerialParallel, ReplicatedNatureSendsFewerBroadcastBytes) {
  // The ablation's point: replaying Nature locally avoids shipping the
  // per-generation plan and the mutated strategy payloads — which at
  // memory-six are 512-byte broadcasts.
  auto cfg = base_config();
  cfg.memory = 6;
  cfg.ssets = 12;
  cfg.generations = 100;
  cfg.comm_pattern = CommPattern::PaperBcast;
  const auto paper = run_parallel(cfg, 6);
  cfg.comm_pattern = CommPattern::ReplicatedNature;
  const auto replicated = run_parallel(cfg, 6);
  EXPECT_EQ(paper.population.table_hash(), replicated.population.table_hash());
  EXPECT_LT(replicated.traffic.bytes, paper.traffic.bytes);
}

TEST(SerialParallel, AgentThreadTierComposesWithRankTier) {
  // Both of the paper's parallel levels at once: ranks own SSet blocks,
  // worker threads split each SSet's games. Still bit-identical.
  auto cfg = base_config();
  cfg.generations = 30;
  cfg.agent_threads = 0;
  Engine serial(cfg);
  serial.run_all();
  cfg.agent_threads = 2;
  const auto par = run_parallel(cfg, 3);
  EXPECT_EQ(par.population.table_hash(), serial.population().table_hash());
}

TEST(SerialParallel, MoranRuleMatchesOnBothPatterns) {
  auto cfg = base_config();
  cfg.update_rule = pop::UpdateRule::Moran;
  cfg.pc_rate = 0.5;
  cfg.generations = 80;
  cfg.comm_pattern = CommPattern::PaperBcast;
  expect_equal_outcome(cfg, 5);
  cfg.comm_pattern = CommPattern::ReplicatedNature;
  expect_equal_outcome(cfg, 7);
}

TEST(SerialParallel, MoranCostsMoreTrafficThanPairwiseComparison) {
  // The design argument for the paper's PC rule: Moran ships the whole
  // fitness vector per event, PC ships two doubles.
  auto cfg = base_config();
  cfg.generations = 200;
  cfg.mutation_rate = 0.0;
  cfg.update_rule = pop::UpdateRule::PairwiseComparison;
  const auto pc = run_parallel(cfg, 6);
  cfg.update_rule = pop::UpdateRule::Moran;
  const auto moran = run_parallel(cfg, 6);
  EXPECT_GT(moran.traffic.bytes, pc.traffic.bytes);
}

TEST(SerialParallel, FaultTolerantEngineMatchesSerialThroughARankFailure) {
  // The ft claim, end to end: losing a worker mid-run (recovered from its
  // last block checkpoint) leaves the trajectory indistinguishable from
  // the serial reference.
  const auto cfg = base_config();
  Engine serial(cfg);
  serial.run_all();

  ft::FtRunOptions opt;
  opt.plan.kill(2, 30);
  opt.checkpoint_every = 10;  // 30 % 10 == 0: recovery hits the fast path
  const auto ft = ft::run_parallel_ft(cfg, 4, opt);

  EXPECT_EQ(ft.ranks_lost, 1);
  EXPECT_GE(ft.metrics.counter_value("ft.recoveries"), 1u);
  ASSERT_EQ(ft.population.size(), serial.population().size());
  EXPECT_EQ(ft.population.table_hash(), serial.population().table_hash());
  for (pop::SSetId i = 0; i < serial.population().size(); ++i) {
    ASSERT_DOUBLE_EQ(ft.population.fitness(i), serial.population().fitness(i))
        << "fitness diverged at SSet " << i;
    ASSERT_TRUE(ft.population.strategy(i) == serial.population().strategy(i))
        << "strategy diverged at SSet " << i;
  }
}

TEST(SerialParallel, SsetThreadTierMatchesSerialOnAllEngines) {
  // The SSet-row tier must be invisible to the trajectory on every engine:
  // serial reference (threads off) vs serial, rank-parallel and
  // fault-tolerant runs with --sset-threads on, all bit-identical.
  auto cfg = base_config();
  Engine reference(cfg);
  reference.run_all();

  cfg.sset_threads = 3;
  Engine serial(cfg);
  serial.run_all();
  EXPECT_EQ(serial.population().table_hash(),
            reference.population().table_hash());

  const auto par = run_parallel(cfg, 4);
  EXPECT_EQ(par.population.table_hash(), reference.population().table_hash());

  ft::FtRunOptions opt;
  opt.plan.kill(2, 30);
  opt.checkpoint_every = 10;
  const auto ft = ft::run_parallel_ft(cfg, 4, opt);
  EXPECT_EQ(ft.ranks_lost, 1);
  EXPECT_EQ(ft.population.table_hash(), reference.population().table_hash());
  for (pop::SSetId i = 0; i < reference.population().size(); ++i) {
    ASSERT_DOUBLE_EQ(ft.population.fitness(i),
                     reference.population().fitness(i))
        << "fitness diverged at SSet " << i;
  }
}

TEST(SerialParallel, DedupOffMatchesDedupOn) {
  // The dedup cache must be a pure evaluation-count optimization: turning
  // it off changes games_played and nothing else.
  auto cfg = base_config();
  Engine with(cfg);
  with.run_all();
  cfg.dedup = false;
  Engine without(cfg);
  without.run_all();
  EXPECT_EQ(with.population().table_hash(), without.population().table_hash());
  EXPECT_EQ(with.pairs_evaluated(), without.pairs_evaluated());
  EXPECT_LE(with.games_played(), without.games_played());
  const auto par = run_parallel(cfg, 3);  // dedup off in parallel too
  EXPECT_EQ(par.population.table_hash(), with.population().table_hash());
}

TEST(SerialParallel, RejectsMoreRanksThanSSets) {
  auto cfg = base_config();
  cfg.ssets = 4;
  EXPECT_THROW((void)run_parallel(cfg, 5), std::invalid_argument);
}

}  // namespace
}  // namespace egt::core
