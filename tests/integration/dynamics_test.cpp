// Scientific sanity of the evolutionary dynamics: known results from the
// cooperation literature must emerge from the full pipeline.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "game/named.hpp"
#include "pop/stats.hpp"

namespace egt::core {
namespace {

TEST(Dynamics, DefectionDominatesOneShotGames) {
  // Memory-zero = repeated one-shot PD: ALLD is the unbeatable strategy
  // (paper §III-A), so the population must converge towards defection.
  SimConfig cfg;
  cfg.memory = 0;
  cfg.ssets = 24;
  cfg.generations = 4000;
  cfg.pc_rate = 0.5;
  cfg.mutation_rate = 0.02;
  cfg.beta = 10.0;
  cfg.seed = 7;
  cfg.fitness_mode = FitnessMode::Analytic;
  Engine engine(cfg);
  engine.run_all();
  EXPECT_LT(pop::mean_coop_probability(engine.population()), 0.25);
}

TEST(Dynamics, NoisyMixedMemoryOneEvolvesCooperationViaWsls) {
  // Scaled-down Fig. 2 / Nowak & Sigmund 1993: mixed memory-one strategies
  // with execution errors. The population should discover a cooperative
  // regime whose dominant rule is WSLS-like.
  SimConfig cfg;
  cfg.memory = 1;
  cfg.ssets = 40;
  cfg.generations = 60000;
  cfg.space = pop::StrategySpace::Mixed;
  cfg.game.noise = 0.05;
  cfg.pc_rate = 0.5;
  cfg.mutation_rate = 0.05;
  cfg.beta = 10.0;
  cfg.seed = 12345;
  cfg.fitness_mode = FitnessMode::Analytic;
  Engine engine(cfg);
  engine.run_all();

  // The qualitative claims: cooperation well above the random baseline and
  // the dominant strategy closer to WSLS than to ALLD.
  const auto& pop = engine.population();
  const auto c = pop::census(pop);
  const auto& dominant = pop.strategy(c.front().example);
  const auto wsls =
      game::Strategy(game::named::win_stay_lose_shift(1)).to_mixed();
  const auto alld = game::Strategy(game::named::all_d(1)).to_mixed();
  const double d_wsls = dominant.to_mixed().distance(wsls);
  const double d_alld = dominant.to_mixed().distance(alld);
  EXPECT_LT(d_wsls, d_alld)
      << "dominant strategy " << dominant.to_mixed().to_string();
}

TEST(Dynamics, StrongSelectionReducesDiversityFasterThanWeak) {
  auto run_entropy = [](double beta) {
    SimConfig cfg;
    cfg.memory = 1;
    cfg.ssets = 32;
    cfg.generations = 3000;
    cfg.pc_rate = 0.8;
    cfg.mutation_rate = 0.0;
    cfg.beta = beta;
    cfg.seed = 99;
    cfg.fitness_mode = FitnessMode::Analytic;
    Engine engine(cfg);
    engine.run_all();
    return pop::distinct_strategies(engine.population());
  };
  // With zero mutation, imitation is pure coarsening; strong selection
  // must not preserve more diversity than (near-)neutral drift.
  EXPECT_LE(run_entropy(50.0), run_entropy(0.01) + 2);
}

TEST(Dynamics, MutationMaintainsDiversity) {
  SimConfig cfg;
  cfg.memory = 1;
  cfg.ssets = 32;
  cfg.generations = 5000;
  cfg.pc_rate = 0.5;
  cfg.beta = 5.0;
  cfg.seed = 21;
  cfg.fitness_mode = FitnessMode::Analytic;

  cfg.mutation_rate = 0.0;
  Engine frozen(cfg);
  frozen.run_all();
  cfg.mutation_rate = 0.3;
  Engine churning(cfg);
  churning.run_all();
  EXPECT_GT(pop::distinct_strategies(churning.population()),
            pop::distinct_strategies(frozen.population()));
}

TEST(Dynamics, MoranRuleAlsoSelectsForFitness) {
  // Memory-zero PD under Moran dynamics: defection must still win.
  SimConfig cfg;
  cfg.memory = 0;
  cfg.ssets = 16;
  cfg.generations = 4000;
  cfg.update_rule = pop::UpdateRule::Moran;
  cfg.pc_rate = 0.8;
  cfg.mutation_rate = 0.02;
  cfg.beta = 10.0;
  cfg.seed = 4;
  cfg.fitness_mode = FitnessMode::Analytic;
  Engine engine(cfg);
  engine.run_all();
  EXPECT_LT(pop::mean_coop_probability(engine.population()), 0.3);
}

TEST(Dynamics, PopulationSizeIsConstantThroughoutTheRun) {
  // Paper §IV-A: the overall population size stays constant.
  SimConfig cfg;
  cfg.ssets = 16;
  cfg.generations = 200;
  cfg.pc_rate = 0.5;
  cfg.mutation_rate = 0.3;
  cfg.fitness_mode = FitnessMode::Analytic;
  Engine engine(cfg);
  CallbackObserver obs([&](const pop::Population& p, const GenerationRecord&) {
    ASSERT_EQ(p.size(), 16u);
  });
  engine.run(200, &obs);
}

}  // namespace
}  // namespace egt::core
