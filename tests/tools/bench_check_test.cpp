// Unit tests for the perf-gate semantics in tools/bench_check_lib.hpp.
//
// The motivating bug: bench_check compared single-sample wall_s values with
// a pure ratio test, so a 0.5 ms analytic row could trip the CI gate on
// scheduler jitter alone. The gate now requires a regression to be both
// relatively (--max-regress) and absolutely (--noise-floor) significant.
#include "bench_check_lib.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/json.hpp"

namespace egt::bench {
namespace {

TEST(TimeGate, RelativeBudgetStillApplies) {
  TimeGate g{/*max_regress=*/0.25, /*min_seconds=*/0.0, /*noise_floor=*/0.005};
  EXPECT_FALSE(time_regressed(1.0, 1.0, g));
  EXPECT_FALSE(time_regressed(1.0, 1.24, g));   // inside relative budget
  EXPECT_TRUE(time_regressed(1.0, 1.26, g));    // past both budgets
  EXPECT_TRUE(time_regressed(0.4, 0.9, g));
}

TEST(TimeGate, NoiseFloorProtectsSubMillisecondRows) {
  TimeGate g{/*max_regress=*/0.25, /*min_seconds=*/0.0, /*noise_floor=*/0.005};
  // A 0.5 ms row jittering to 2 ms is a 4x "slowdown" but only +1.5 ms —
  // well under the floor, so it must pass.
  EXPECT_FALSE(time_regressed(0.0005, 0.002, g));
  EXPECT_FALSE(time_regressed(0.0005, 0.0054, g));  // exactly +floor-ish
  // A genuine regression on the same row (0.5 ms -> 20 ms) still fails.
  EXPECT_TRUE(time_regressed(0.0005, 0.020, g));
}

TEST(TimeGate, NoiseFloorAloneDoesNotExcuseBigRows) {
  // On slow rows the relative budget dominates: +5 ms of slack is nothing
  // against a 1 s baseline, and a 30% regression must still fail.
  TimeGate g{/*max_regress=*/0.25, /*min_seconds=*/0.0, /*noise_floor=*/0.005};
  EXPECT_TRUE(time_regressed(1.0, 1.3, g));
}

TEST(TimeGate, MinSecondsSkipsRowsEntirely) {
  TimeGate g{/*max_regress=*/0.25, /*min_seconds=*/0.05, /*noise_floor=*/0.0};
  EXPECT_FALSE(time_regressed(0.01, 10.0, g));  // below min_seconds: skipped
  EXPECT_TRUE(time_regressed(0.06, 10.0, g));
}

util::JsonValue doc(const std::string& rows) {
  return util::JsonValue::parse(
      R"({"schema":"egt.bench_fitness/v1","rows":[)" + rows + "]}");
}

std::string row(const std::string& name, double wall_s,
                std::uint64_t pairs = 100, std::uint64_t games = 100,
                const std::string& hash = "abc") {
  std::ostringstream os;
  os << R"({"name":")" << name << R"(","wall_s":)" << wall_s
     << R"(,"pairs_evaluated":)" << pairs << R"(,"games_played":)" << games
     << R"(,"table_hash":")" << hash << R"("})";
  return os.str();
}

TEST(CheckBaseline, PassesWithinBudgets) {
  TimeGate g{0.25, 0.0, 0.005};
  std::ostringstream out, err;
  const auto base = doc(row("analytic", 0.0005) + "," + row("sampled", 0.5));
  const auto cur = doc(row("analytic", 0.002) + "," + row("sampled", 0.55));
  EXPECT_EQ(check_baseline(base, cur, g, out, err), 0);
}

TEST(CheckBaseline, FailsOnGenuineSlowdownAndCounterDrift) {
  TimeGate g{0.25, 0.0, 0.005};
  std::ostringstream out, err;
  const auto base = doc(row("analytic", 0.0005) + "," + row("sampled", 0.5));
  const auto cur = doc(row("analytic", 0.5) + "," +
                       row("sampled", 0.55, /*pairs=*/101));
  // analytic: time regression; sampled: pairs_evaluated drift.
  EXPECT_EQ(check_baseline(base, cur, g, out, err), 2);
  EXPECT_NE(err.str().find("wall time"), std::string::npos);
  EXPECT_NE(err.str().find("pairs_evaluated"), std::string::npos);
}

TEST(CheckBaseline, FailsOnMissingRowAndHashDivergence) {
  TimeGate g{0.25, 0.0, 0.005};
  std::ostringstream out, err;
  const auto base = doc(row("a", 0.1) + "," + row("b", 0.1));
  const auto cur =
      doc(row("a", 0.1, 100, 100, "different-hash"));
  EXPECT_EQ(check_baseline(base, cur, g, out, err), 2);
  EXPECT_NE(err.str().find("hash"), std::string::npos);
  EXPECT_NE(err.str().find("missing"), std::string::npos);
}

TEST(CheckTraceOverhead, NoiseFloorAppliesToTracedTwin) {
  TimeGate g{0.25, 0.0, 0.005};
  std::ostringstream out, err;
  // 0.8 ms untraced, 1.4 ms traced: 75% "overhead" but inside the floor.
  const auto d =
      doc(row("fast", 0.0008) + "," + row("fast + trace", 0.0014));
  EXPECT_EQ(check_trace_overhead(d, /*max_overhead=*/0.05, g, out, err), 0);
}

TEST(CheckTraceOverhead, FailsOnRealOverheadAndTrajectoryChange) {
  TimeGate g{0.25, 0.0, 0.005};
  std::ostringstream out, err;
  const auto d = doc(row("slow", 0.5) + "," +
                     row("slow + trace", 0.7, 100, 100, "other"));
  // wall overhead past 5% + floor, and the table hash moved: 2 failures.
  EXPECT_EQ(check_trace_overhead(d, /*max_overhead=*/0.05, g, out, err), 2);
}

TEST(CheckTraceOverhead, FailsWhenNoTracedRowsExist) {
  TimeGate g;
  std::ostringstream out, err;
  const auto d = doc(row("only", 0.1));
  EXPECT_EQ(check_trace_overhead(d, 0.05, g, out, err), 1);
}

}  // namespace
}  // namespace egt::bench
