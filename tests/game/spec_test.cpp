// GameSpec + preset registry (DESIGN.md §10): the default spec must be
// bit-for-bit the paper's IPD, validation must reject inconsistent specs,
// and every registered preset must be well-formed and reachable by name.
// Also covers the NWayStrategy wire format (kind byte 2).
#include "game/spec/gamespec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "game/spec/registry.hpp"
#include "game/strategy.hpp"
#include "util/rng.hpp"

namespace egt::game {
namespace {

TEST(GameSpec, DefaultIsThePaperIpd) {
  const GameSpec s;
  EXPECT_EQ(s.kind, GameKind::Matrix);
  EXPECT_EQ(s.actions, 2u);
  EXPECT_EQ(s.play, PlayMode::Iterated);
  EXPECT_EQ(s.rounds, 200u);
  EXPECT_DOUBLE_EQ(s.noise, 0.0);
  EXPECT_FALSE(s.uses_nway());
  EXPECT_FALSE(s.requires_memory0());
  const IpdParams p = s.ipd_params();
  EXPECT_DOUBLE_EQ(p.payoff.reward, 3.0);
  EXPECT_DOUBLE_EQ(p.payoff.sucker, 0.0);
  EXPECT_DOUBLE_EQ(p.payoff.temptation, 4.0);
  EXPECT_DOUBLE_EQ(p.payoff.punishment, 1.0);
  EXPECT_NO_THROW(s.validate());
}

TEST(GameSpec, PayoffOfReadsThePayoffMatrixViewForTwoActions) {
  const GameSpec s;  // row_payoff empty: PayoffMatrix is authoritative
  EXPECT_DOUBLE_EQ(s.payoff_of(0, 0), 3.0);   // R
  EXPECT_DOUBLE_EQ(s.payoff_of(0, 1), 0.0);   // S
  EXPECT_DOUBLE_EQ(s.payoff_of(1, 0), 4.0);   // T
  EXPECT_DOUBLE_EQ(s.payoff_of(1, 1), 1.0);   // P
  // Symmetric: the column player's payoff is the transposed table.
  EXPECT_DOUBLE_EQ(s.col_payoff_of(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(s.col_payoff_of(0, 1), 0.0);
}

TEST(GameSpec, PayoffOfReadsTheRowTableForNWayGames) {
  const auto s = GameSpec::matrix_n(
      "rps_copy", 3, {0, -1, 1, 1, 0, -1, -1, 1, 0});
  EXPECT_TRUE(s.uses_nway());
  EXPECT_TRUE(s.requires_memory0());
  EXPECT_DOUBLE_EQ(s.payoff_of(1, 0), 1.0);   // paper beats rock
  EXPECT_DOUBLE_EQ(s.payoff_of(0, 1), -1.0);  // rock loses to paper
  EXPECT_DOUBLE_EQ(s.col_payoff_of(1, 0), 1.0);
}

TEST(GameSpec, BimatrixColumnTableOverridesTheTranspose) {
  GameSpec s = GameSpec::matrix_n("bim", 2, {1, 2, 3, 4});
  s.col_payoff = {5, 6, 7, 8};
  s.validate();
  EXPECT_TRUE(s.uses_nway());  // explicit bimatrix, even with m == 2
  EXPECT_DOUBLE_EQ(s.col_payoff_of(0, 1), 6.0);  // col_payoff[0*2+1]
}

TEST(GameSpec, MatrixHashIgnoresLabelsButNotPayoffs) {
  GameSpec a;
  GameSpec b;
  b.labels = {"give", "take"};
  EXPECT_EQ(a.matrix_hash(), b.matrix_hash());
  b.payoff.temptation = 5.0;
  EXPECT_NE(a.matrix_hash(), b.matrix_hash());
  GameSpec pgg = GameSpec::public_goods("pgg", 3.0, 1.0);
  GameSpec pgg2 = GameSpec::public_goods("pgg", 3.0, 1.0, 4);
  EXPECT_NE(pgg.matrix_hash(), pgg2.matrix_hash());
}

TEST(GameSpec, ValidateRejectsInconsistentSpecs) {
  GameSpec s;
  s.rounds = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = GameSpec();
  s.labels = {"only-one"};
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = GameSpec();
  s.actions = 3;  // m >= 3 without a table
  EXPECT_THROW(s.validate(), std::invalid_argument);
  EXPECT_THROW(GameSpec::matrix_n("bad", 3, {1, 2, 3}),
               std::invalid_argument);
  EXPECT_THROW(GameSpec::public_goods("bad", -1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(GameSpec::public_goods("bad", 3.0, 1.0, /*k=*/1),
               std::invalid_argument);
}

TEST(Registry, ShipsTheDocumentedPresetsSorted) {
  const auto names = game_names();
  for (const char* expected :
       {"axelrod", "coordination", "donation", "hawk_dove", "ipd", "pgg",
        "rps", "snowdrift", "stag_hunt"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) !=
                names.end())
        << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(registry().size(), names.size());
  for (const GameSpec& g : registry()) EXPECT_NO_THROW(g.validate());
}

TEST(Registry, FindGameNormalizesDashes) {
  ASSERT_NE(find_game("hawk_dove"), nullptr);
  EXPECT_EQ(find_game("hawk-dove"), find_game("hawk_dove"));
  EXPECT_EQ(find_game("no_such_game"), nullptr);
}

TEST(Registry, ListingMentionsEveryPreset) {
  const std::string listing = registry_listing();
  for (const auto& name : game_names()) {
    EXPECT_NE(listing.find(name), std::string::npos) << name;
  }
}

TEST(Registry, IpdPresetMatchesTheDefaultSpec) {
  const GameSpec* ipd = find_game("ipd");
  ASSERT_NE(ipd, nullptr);
  EXPECT_TRUE(*ipd == GameSpec());
}

TEST(Registry, PresetShapesMatchTheirKind) {
  const GameSpec* hd = find_game("hawk_dove");
  ASSERT_NE(hd, nullptr);
  EXPECT_FALSE(hd->uses_nway());
  EXPECT_DOUBLE_EQ(hd->payoff.temptation, 2.0);  // hawk exploits dove
  EXPECT_EQ(hd->label(0), "dove");

  const GameSpec* rps = find_game("rps");
  ASSERT_NE(rps, nullptr);
  EXPECT_EQ(rps->actions, 3u);
  EXPECT_TRUE(rps->uses_nway());
  EXPECT_EQ(rps->play, PlayMode::OneShot);
  // Zero-sum: every ordered pair sums to 0 across the two roles.
  for (std::uint32_t a = 0; a < 3; ++a) {
    for (std::uint32_t b = 0; b < 3; ++b) {
      EXPECT_DOUBLE_EQ(rps->payoff_of(a, b) + rps->col_payoff_of(b, a), 0.0);
    }
  }

  const GameSpec* pgg = find_game("pgg");
  ASSERT_NE(pgg, nullptr);
  EXPECT_EQ(pgg->kind, GameKind::PublicGoods);
  EXPECT_TRUE(pgg->requires_memory0());
}

TEST(NWayStrategy, FromProbsValidatesAndNormalizes) {
  const auto s = NWayStrategy::from_probs({0.2, 0.3, 0.5});
  EXPECT_EQ(s.actions(), 3u);
  EXPECT_EQ(s.memory(), 0);
  EXPECT_DOUBLE_EQ(s.action_prob(2), 0.5);
  EXPECT_THROW(NWayStrategy::from_probs({0.9, 0.9}), std::invalid_argument);
  EXPECT_THROW(NWayStrategy::from_probs({1.0}), std::invalid_argument);
}

TEST(NWayStrategy, PureActionIsDegenerate) {
  const auto s = NWayStrategy::pure_action(4, 2);
  EXPECT_TRUE(s.is_degenerate());
  EXPECT_DOUBLE_EQ(s.action_prob(2), 1.0);
  EXPECT_DOUBLE_EQ(s.action_prob(0), 0.0);
}

TEST(NWayStrategy, RandomDrawsAValidDistribution) {
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 16; ++i) {
    const auto s = NWayStrategy::random(3, rng);
    double sum = 0.0;
    for (std::uint32_t a = 0; a < 3; ++a) {
      EXPECT_GE(s.action_prob(a), 0.0);
      sum += s.action_prob(a);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(NWayStrategy, SerializeRoundTripsThroughStrategy) {
  const Strategy s{NWayStrategy::from_probs({0.25, 0.25, 0.5})};
  ASSERT_TRUE(s.is_nway());
  const auto blob = s.serialize();
  const Strategy back = Strategy::deserialize(blob);
  ASSERT_TRUE(back.is_nway());
  EXPECT_TRUE(s == back);
  EXPECT_EQ(s.hash(), back.hash());
  EXPECT_DOUBLE_EQ(back.coop_prob(0), 0.25);  // action-0 propensity
}

TEST(NWayStrategy, MoveInterfaceIsRejected) {
  const Strategy s{NWayStrategy::from_probs({0.5, 0.25, 0.25})};
  util::StreamRng rng(1, 2);
  EXPECT_THROW(s.move(0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace egt::game
