#include "game/tournament.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace egt::game {
namespace {

TEST(Tournament, ScoresMatchManualPairings) {
  std::vector<named::NamedStrategy> entries{
      {"ALLC", named::all_c(1)},
      {"ALLD", named::all_d(1)},
  };
  TournamentConfig cfg;
  const auto res = run_tournament(entries, 1, cfg);
  // One game: ALLC suckered every round, ALLD tempted every round.
  EXPECT_DOUBLE_EQ(res.score[0][1], 0.0);
  EXPECT_DOUBLE_EQ(res.score[1][0], 200.0 * 4.0);
  EXPECT_EQ(res.ranking.front(), 1u);  // ALLD wins a 2-entry field
}

TEST(Tournament, RetaliatorsBeatAlldWithoutEasyPrey) {
  // Axelrod's qualitative result: in a field of retaliators (no
  // unconditional cooperators to exploit), ALLD cannot win — nice,
  // provocable strategies top the table.
  std::vector<named::NamedStrategy> entries{
      {"ALLD", named::all_d(1)},      {"TFT", named::tit_for_tat(1)},
      {"GRIM", named::grim(1)},       {"WSLS", named::win_stay_lose_shift(1)},
      {"CTFT", named::contrite_tit_for_tat(1)},
  };
  TournamentConfig cfg;
  cfg.game.payoff = axelrod_payoff();
  const auto res = run_tournament(entries, 1, cfg);
  const std::string& winner = res.names[res.ranking.front()];
  EXPECT_NE(winner, "ALLD");
  // ... and ALLD's exploitation of ALLC can flip the field: adding one
  // unconditional cooperator hands ALLD a 1000-point meal.
  entries.push_back({"ALLC", named::all_c(1)});
  const auto res2 = run_tournament(entries, 1, cfg);
  const std::size_t alld_pos_before =
      static_cast<std::size_t>(std::find(res.names.begin(), res.names.end(),
                                         "ALLD") -
                               res.names.begin());
  EXPECT_GT(res2.total[alld_pos_before], res.total[alld_pos_before]);
}

TEST(Tournament, SelfPlayOptionAddsDiagonal) {
  std::vector<named::NamedStrategy> entries{
      {"ALLC", named::all_c(1)},
      {"TFT", named::tit_for_tat(1)},
  };
  TournamentConfig with_self;
  with_self.include_self_play = true;
  const auto res = run_tournament(entries, 1, with_self);
  EXPECT_DOUBLE_EQ(res.score[0][0], 600.0);  // ALLC vs itself
  TournamentConfig without;
  const auto res2 = run_tournament(entries, 1, without);
  EXPECT_DOUBLE_EQ(res2.score[0][0], 0.0);
}

TEST(Tournament, RepetitionsScaleDeterministicScores) {
  std::vector<named::NamedStrategy> entries{
      {"ALLC", named::all_c(1)},
      {"ALLD", named::all_d(1)},
  };
  TournamentConfig cfg;
  cfg.repetitions = 3;
  const auto res = run_tournament(entries, 1, cfg);
  EXPECT_DOUBLE_EQ(res.score[1][0], 3.0 * 800.0);
}

TEST(Tournament, CooperationRatesAreSane) {
  const auto entries = named::pure_catalog(1);
  const auto res = run_tournament(entries, 1);
  for (std::size_t i = 0; i < res.names.size(); ++i) {
    ASSERT_GE(res.coop_rate[i], 0.0);
    ASSERT_LE(res.coop_rate[i], 1.0);
    if (res.names[i] == "ALLC") EXPECT_DOUBLE_EQ(res.coop_rate[i], 1.0);
    if (res.names[i] == "ALLD") EXPECT_DOUBLE_EQ(res.coop_rate[i], 0.0);
  }
}

TEST(Tournament, FormatRankingListsAllEntries) {
  const auto entries = named::pure_catalog(1);
  const auto res = run_tournament(entries, 1);
  const std::string text = format_ranking(res);
  for (const auto& e : entries) {
    EXPECT_NE(text.find(e.name), std::string::npos) << e.name;
  }
}

TEST(Tournament, RejectsMemoryMismatch) {
  std::vector<named::NamedStrategy> entries{{"ALLC", named::all_c(2)}};
  EXPECT_THROW((void)run_tournament(entries, 1), std::invalid_argument);
}

TEST(Tournament, EmptyFieldRejected) {
  EXPECT_THROW((void)run_tournament({}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace egt::game
