#include "game/markov.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "game/named.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace egt::game::markov {
namespace {

const PayoffMatrix kPayoff = paper_payoff();

TEST(ExactPure, MatchesSampledEngineForNamedPairs) {
  const IpdEngine engine(1);
  const auto cat = named::pure_catalog(1);
  for (const auto& a : cat) {
    for (const auto& b : cat) {
      const auto exact =
          exact_pure_game(a.strategy.as_pure(), b.strategy.as_pure(), kPayoff,
                          200);
      const auto sampled = engine.play(a.strategy.as_pure(),
                                       b.strategy.as_pure(),
                                       util::StreamRng(0, 0));
      ASSERT_DOUBLE_EQ(exact.payoff_a, sampled.payoff_a)
          << a.name << " vs " << b.name;
      ASSERT_DOUBLE_EQ(exact.payoff_b, sampled.payoff_b)
          << a.name << " vs " << b.name;
      ASSERT_EQ(exact.coop_a, sampled.coop_a);
      ASSERT_EQ(exact.coop_b, sampled.coop_b);
    }
  }
}

class ExactPureSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExactPureSweep, MatchesSampledEngineOnRandomPairs) {
  const int memory = GetParam();
  const IpdEngine engine(memory);
  util::Xoshiro256 rng(1000 + memory);
  for (int g = 0; g < 25; ++g) {
    const auto a = PureStrategy::random(memory, rng);
    const auto b = PureStrategy::random(memory, rng);
    const auto exact = exact_pure_game(a, b, kPayoff, 200);
    const auto sampled = engine.play(a, b, util::StreamRng(0, 0));
    ASSERT_DOUBLE_EQ(exact.payoff_a, sampled.payoff_a);
    ASSERT_DOUBLE_EQ(exact.payoff_b, sampled.payoff_b);
    ASSERT_EQ(exact.coop_a, sampled.coop_a);
  }
}

INSTANTIATE_TEST_SUITE_P(Memory1To6, ExactPureSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(ExactPure, ShortGamesInsideTransient) {
  // rounds smaller than the transient must still be exact.
  const auto grim = named::grim(2);
  const auto alt = named::alternator(2);
  for (std::uint32_t rounds : {1u, 2u, 3u, 5u, 17u}) {
    IpdParams params;
    params.rounds = rounds;
    const IpdEngine engine(2, params);
    const auto exact = exact_pure_game(grim, alt, kPayoff, rounds);
    const auto sampled = engine.play(grim, alt, util::StreamRng(0, 0));
    ASSERT_DOUBLE_EQ(exact.payoff_a, sampled.payoff_a) << rounds;
  }
}

TEST(ExpectedGameMem1, MatchesDeterministicPairsExactly) {
  const Strategy tft = named::tit_for_tat(1);
  const Strategy alld = named::all_d(1);
  const auto e = expected_game_mem1(tft, alld, kPayoff, 200, 0.0);
  EXPECT_NEAR(e.payoff_a, 199.0, 1e-9);
  EXPECT_NEAR(e.payoff_b, 4.0 + 199.0, 1e-9);
}

TEST(ExpectedGameMem1, MatchesMonteCarloForStochasticPair) {
  const Strategy gtft = named::generous_tit_for_tat(1, 1.0 / 3.0);
  const Strategy rnd = named::random_strategy(1, 0.5);
  const auto expected = expected_game_mem1(gtft, rnd, kPayoff, 200, 0.0);

  const IpdEngine engine(1);
  util::RunningStats pa;
  for (int g = 0; g < 3000; ++g) {
    pa.add(engine.play(gtft, rnd, util::StreamRng(5, g)).payoff_a);
  }
  // Monte-Carlo mean within ~5 sigma of the analytic expectation.
  const double sem = pa.stddev() / std::sqrt(3000.0);
  EXPECT_NEAR(pa.mean(), expected.payoff_a, 5.0 * sem + 1e-9);
}

TEST(ExpectedGameMem1, NoiseMatchesMonteCarlo) {
  const Strategy wsls = named::win_stay_lose_shift(1);
  const auto expected = expected_game_mem1(wsls, wsls, kPayoff, 200, 0.05);

  IpdParams params;
  params.noise = 0.05;
  const IpdEngine engine(1, params);
  util::RunningStats pa;
  for (int g = 0; g < 3000; ++g) {
    pa.add(engine.play(wsls, wsls, util::StreamRng(6, g)).payoff_a);
  }
  const double sem = pa.stddev() / std::sqrt(3000.0);
  EXPECT_NEAR(pa.mean(), expected.payoff_a, 5.0 * sem + 1e-9);
}

TEST(Stationary, AllCPairSitsInMutualCooperation) {
  const Strategy allc = named::all_c(1);
  const auto pi = stationary_distribution_mem1(allc, allc, 0.0);
  EXPECT_NEAR(pi[0], 1.0, 1e-9);
}

TEST(Stationary, DistributionSumsToOne) {
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 20; ++i) {
    const Strategy a = MixedStrategy::random(1, rng);
    const Strategy b = MixedStrategy::random(1, rng);
    const auto pi = stationary_distribution_mem1(a, b, 0.01);
    const double sum = pi[0] + pi[1] + pi[2] + pi[3];
    ASSERT_NEAR(sum, 1.0, 1e-9);
    for (double p : pi) ASSERT_GE(p, -1e-12);
  }
}

TEST(Stationary, WslsPairUnderNoiseIsMostlyCooperative) {
  const Strategy wsls = named::win_stay_lose_shift(1);
  const auto out = stationary_mem1(wsls, wsls, kPayoff, 0.01);
  EXPECT_GT(out.coop_a, 0.9);
  EXPECT_GT(out.payoff_a, 2.8);
}

TEST(Stationary, TftPairUnderNoiseDropsToHalfCooperation) {
  // Classic result: noisy TFT-vs-TFT spends equal time in all four outcome
  // states, i.e. ~50% cooperation — far below WSLS.
  const Strategy tft = named::tit_for_tat(1);
  const auto out = stationary_mem1(tft, tft, kPayoff, 0.01);
  EXPECT_NEAR(out.coop_a, 0.5, 0.05);
}

TEST(Stationary, MatchesLongExpectedGameAverage) {
  const Strategy a = MixedStrategy::mem1({0.9, 0.2, 0.7, 0.4});
  const Strategy b = MixedStrategy::mem1({0.6, 0.1, 0.8, 0.3});
  const auto st = stationary_mem1(a, b, kPayoff, 0.0);
  const auto game = expected_game_mem1(a, b, kPayoff, 20000, 0.0);
  EXPECT_NEAR(game.payoff_a / 20000.0, st.payoff_a, 1e-3);
  EXPECT_NEAR(game.payoff_b / 20000.0, st.payoff_b, 1e-3);
}

TEST(Stationary, PeriodicChainFallsBackToCesaroAverage) {
  // Two alternators in anti-phase never reach a fixed point; the long-run
  // average still exists.
  const Strategy alt = named::alternator(1);
  const auto out = stationary_mem1(alt, alt, kPayoff, 0.0);
  EXPECT_NEAR(out.coop_a, 0.5, 1e-6);
}

TEST(PureOrbit, TftPairSitsOnMutualCooperation) {
  const auto o = pure_orbit(named::tit_for_tat(1), named::tit_for_tat(1),
                            kPayoff);
  EXPECT_EQ(o.cycle, 1u);
  EXPECT_EQ(o.transient, 0u);
  EXPECT_DOUBLE_EQ(o.cycle_payoff_a, 3.0);
  EXPECT_DOUBLE_EQ(o.cycle_coop_a, 1.0);
}

TEST(PureOrbit, AlternatorPairLocksIntoTwoCycle) {
  const auto o =
      pure_orbit(named::alternator(1), named::alternator(1), kPayoff);
  EXPECT_EQ(o.cycle, 2u);
  // Both alternate in phase: DD then CC -> average payoff (1+3)/2.
  EXPECT_DOUBLE_EQ(o.cycle_payoff_a, 2.0);
  EXPECT_DOUBLE_EQ(o.cycle_coop_a, 0.5);
}

TEST(PureOrbit, WslsAgainstAlldAlternates) {
  const auto o =
      pure_orbit(named::win_stay_lose_shift(1), named::all_d(1), kPayoff);
  // WSLS: C (suckered), D (punished), C, D, ... cycle length 2.
  EXPECT_EQ(o.cycle, 2u);
  EXPECT_DOUBLE_EQ(o.cycle_payoff_a, 0.5);   // (S + P) / 2
  EXPECT_DOUBLE_EQ(o.cycle_payoff_b, 2.5);   // (T + P) / 2 < R = 3
  EXPECT_DOUBLE_EQ(o.cycle_coop_a, 0.5);
  EXPECT_DOUBLE_EQ(o.cycle_coop_b, 0.0);
}

TEST(PureOrbit, GrimVersusAlternatorHasTransient) {
  const auto o = pure_orbit(named::grim(1), named::alternator(1), kPayoff);
  // GRIM cooperates until the alternator's opening defection arrives, then
  // locks into defection; a short transient precedes the absorbing cycle.
  EXPECT_GE(o.transient, 1u);
  EXPECT_LE(o.cycle_coop_a, 0.5);
}

class PureOrbitSweep : public ::testing::TestWithParam<int> {};

TEST_P(PureOrbitSweep, OrbitLengthsRespectStateSpaceBound) {
  const int memory = GetParam();
  util::Xoshiro256 rng(77 + memory);
  for (int g = 0; g < 30; ++g) {
    const auto a = PureStrategy::random(memory, rng);
    const auto b = PureStrategy::random(memory, rng);
    const auto o = pure_orbit(a, b, kPayoff);
    ASSERT_GE(o.cycle, 1u);
    ASSERT_LE(o.transient + o.cycle, num_states(memory));
    // The orbit averages must agree with a long exact game.
    const auto long_game = exact_pure_game(a, b, kPayoff, 100000);
    ASSERT_NEAR(long_game.payoff_a / 100000.0, o.cycle_payoff_a, 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Memory1To4, PureOrbitSweep,
                         ::testing::Values(1, 2, 3, 4));

// Cross-engine agreement swept over payoff matrices and noise levels: the
// analytic expectation must match Monte-Carlo regardless of the game.
struct CrossCheckCase {
  const char* name;
  PayoffMatrix payoff;
  double noise;
};

class AnalyticCrossCheck : public ::testing::TestWithParam<CrossCheckCase> {};

TEST_P(AnalyticCrossCheck, ExpectationMatchesMonteCarlo) {
  const auto& param = GetParam();
  util::Xoshiro256 rng(2024);
  const Strategy a = MixedStrategy::random(1, rng);
  const Strategy b = MixedStrategy::random(1, rng);
  const auto expected =
      expected_game_mem1(a, b, param.payoff, 100, param.noise);

  IpdParams params;
  params.payoff = param.payoff;
  params.rounds = 100;
  params.noise = param.noise;
  const IpdEngine engine(1, params);
  util::RunningStats pa, pb;
  for (int g = 0; g < 4000; ++g) {
    const auto r = engine.play(a, b, util::StreamRng(55, g));
    pa.add(r.payoff_a);
    pb.add(r.payoff_b);
  }
  const double sem_a = pa.stddev() / std::sqrt(4000.0);
  const double sem_b = pb.stddev() / std::sqrt(4000.0);
  EXPECT_NEAR(pa.mean(), expected.payoff_a, 5.0 * sem_a + 1e-9) << param.name;
  EXPECT_NEAR(pb.mean(), expected.payoff_b, 5.0 * sem_b + 1e-9) << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    GamesAndNoise, AnalyticCrossCheck,
    ::testing::Values(
        CrossCheckCase{"paper_clean", paper_payoff(), 0.0},
        CrossCheckCase{"paper_noisy", paper_payoff(), 0.05},
        CrossCheckCase{"axelrod", axelrod_payoff(), 0.02},
        CrossCheckCase{"donation", donation_payoff(3.0, 1.0), 0.01},
        CrossCheckCase{"snowdrift", snowdrift_payoff(4.0, 2.0), 0.05},
        CrossCheckCase{"stag_hunt", stag_hunt_payoff(), 0.1}),
    [](const ::testing::TestParamInfo<CrossCheckCase>& info) {
      return info.param.name;
    });

TEST(ExpectedGameMem1, RejectsWrongMemory) {
  const Strategy a = named::all_c(2);
  EXPECT_THROW((void)expected_game_mem1(a, a, kPayoff, 10, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace egt::game::markov
