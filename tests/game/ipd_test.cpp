#include "game/ipd.hpp"

#include <gtest/gtest.h>

#include "game/named.hpp"

namespace egt::game {
namespace {

util::StreamRng rng_for(std::uint64_t key) { return util::StreamRng(1, key); }

TEST(Ipd, MutualCooperationScoresReward) {
  const IpdEngine engine(1);
  const auto r =
      engine.play(named::all_c(1), named::all_c(1), rng_for(0));
  EXPECT_EQ(r.rounds, 200u);
  EXPECT_DOUBLE_EQ(r.payoff_a, 200.0 * 3.0);
  EXPECT_DOUBLE_EQ(r.payoff_b, 200.0 * 3.0);
  EXPECT_EQ(r.coop_a, 200u);
  EXPECT_EQ(r.coop_b, 200u);
  EXPECT_DOUBLE_EQ(r.coop_rate(), 1.0);
}

TEST(Ipd, DefectorExploitsCooperator) {
  const IpdEngine engine(1);
  const auto r = engine.play(named::all_d(1), named::all_c(1), rng_for(0));
  EXPECT_DOUBLE_EQ(r.payoff_a, 200.0 * 4.0);  // temptation every round
  EXPECT_DOUBLE_EQ(r.payoff_b, 0.0);          // sucker every round
  EXPECT_EQ(r.coop_a, 0u);
}

TEST(Ipd, TftVersusAllDLosesOnlyFirstRound) {
  const IpdEngine engine(1);
  const auto r =
      engine.play(named::tit_for_tat(1), named::all_d(1), rng_for(0));
  // TFT opens with C (all-cooperate initial view), gets suckered once, then
  // mutual defection.
  EXPECT_DOUBLE_EQ(r.payoff_a, 0.0 + 199.0 * 1.0);
  EXPECT_DOUBLE_EQ(r.payoff_b, 4.0 + 199.0 * 1.0);
}

TEST(Ipd, TftVersusTftCooperatesForever) {
  const IpdEngine engine(1);
  const auto r =
      engine.play(named::tit_for_tat(1), named::tit_for_tat(1), rng_for(0));
  EXPECT_DOUBLE_EQ(r.payoff_a, 600.0);
  EXPECT_DOUBLE_EQ(r.payoff_b, 600.0);
}

TEST(Ipd, AlternatorVersusAllCAlternates) {
  const IpdEngine engine(1);
  const auto r =
      engine.play(named::alternator(1), named::all_c(1), rng_for(0));
  // Opens D (own previous move reads C), then alternates C/D: 100 T + 100 R.
  EXPECT_DOUBLE_EQ(r.payoff_a, 100.0 * 4.0 + 100.0 * 3.0);
  EXPECT_EQ(r.coop_a, 100u);
}

TEST(Ipd, PayoffsAreSymmetricInRoleSwap) {
  const IpdEngine engine(2);
  const auto ab = engine.play(named::tit_for_two_tats(2), named::grim(2),
                              rng_for(7));
  const auto ba = engine.play(named::grim(2), named::tit_for_two_tats(2),
                              rng_for(7));
  EXPECT_DOUBLE_EQ(ab.payoff_a, ba.payoff_b);
  EXPECT_DOUBLE_EQ(ab.payoff_b, ba.payoff_a);
}

TEST(Ipd, DeterministicForPureStrategiesRegardlessOfRngKey) {
  const IpdEngine engine(1);
  const auto r1 = engine.play(named::tit_for_tat(1), named::all_d(1),
                              rng_for(1));
  const auto r2 = engine.play(named::tit_for_tat(1), named::all_d(1),
                              rng_for(999));
  EXPECT_DOUBLE_EQ(r1.payoff_a, r2.payoff_a);
}

TEST(Ipd, MixedGamesAreReproduciblePerStream) {
  const IpdEngine engine(1);
  const Strategy a = named::generous_tit_for_tat(1, 0.3);
  const Strategy b = named::random_strategy(1, 0.5);
  const auto r1 = engine.play(a, b, rng_for(11));
  const auto r2 = engine.play(a, b, rng_for(11));
  EXPECT_DOUBLE_EQ(r1.payoff_a, r2.payoff_a);
  const auto r3 = engine.play(a, b, rng_for(12));
  EXPECT_NE(r1.payoff_a, r3.payoff_a);  // different stream, different game
}

TEST(Ipd, NoiseBreaksPermanentCooperation) {
  IpdParams params;
  params.noise = 0.05;
  const IpdEngine engine(1, params);
  const auto r =
      engine.play(named::all_c(1), named::all_c(1), rng_for(3));
  EXPECT_LT(r.coop_a + r.coop_b, 400u);  // some moves flipped
  EXPECT_GT(r.coop_a + r.coop_b, 300u);  // but only ~5% of them
}

TEST(Ipd, NoiseIsFatalForTftPairs) {
  // §III-E: an error shifts a TFT pair into (alternating or mutual)
  // defection, so cooperation collapses well below the noise-free level.
  IpdParams params;
  params.rounds = 2000;
  params.noise = 0.02;
  const IpdEngine engine(1, params);
  const auto r = engine.play(named::tit_for_tat(1), named::tit_for_tat(1),
                             rng_for(4));
  EXPECT_LT(r.coop_rate(), 0.9);
}

TEST(Ipd, WslsRecoversFromNoiseBetterThanTft) {
  IpdParams params;
  params.rounds = 4000;
  params.noise = 0.02;
  const IpdEngine engine(1, params);
  const auto wsls = engine.play(named::win_stay_lose_shift(1),
                                named::win_stay_lose_shift(1), rng_for(5));
  const auto tft = engine.play(named::tit_for_tat(1), named::tit_for_tat(1),
                               rng_for(5));
  // The WSLS pair re-coordinates two rounds after an error; TFT echoes it
  // forever (Nowak & Sigmund 1993).
  EXPECT_GT(wsls.payoff_a + wsls.payoff_b, tft.payoff_a + tft.payoff_b);
}

TEST(Ipd, LinearSearchModeGivesIdenticalResults) {
  for (int memory : {1, 2, 3}) {
    const IpdEngine fast(memory, {}, LookupMode::Indexed);
    const IpdEngine slow(memory, {}, LookupMode::LinearSearch);
    util::Xoshiro256 rng(memory);
    for (int g = 0; g < 10; ++g) {
      const auto a = PureStrategy::random(memory, rng);
      const auto b = PureStrategy::random(memory, rng);
      const auto r1 = fast.play(a, b, rng_for(g));
      const auto r2 = slow.play(a, b, rng_for(g));
      ASSERT_DOUBLE_EQ(r1.payoff_a, r2.payoff_a);
      ASSERT_DOUBLE_EQ(r1.payoff_b, r2.payoff_b);
    }
  }
}

TEST(Ipd, RejectsMemoryMismatch) {
  const IpdEngine engine(2);
  EXPECT_THROW(
      (void)engine.play(Strategy(named::all_c(1)), Strategy(named::all_c(2)),
                        rng_for(0)),
      std::invalid_argument);
}

TEST(Ipd, RejectsBadParams) {
  IpdParams zero_rounds;
  zero_rounds.rounds = 0;
  EXPECT_THROW(IpdEngine(1, zero_rounds), std::invalid_argument);
  IpdParams bad_noise;
  bad_noise.noise = 1.5;
  EXPECT_THROW(IpdEngine(1, bad_noise), std::invalid_argument);
}

TEST(Ipd, MemoryZeroStrategiesIgnoreHistory) {
  const IpdEngine engine(0);
  PureStrategy d(0);
  d.set_move(0, Move::Defect);
  const auto r = engine.play(PureStrategy(0), d, rng_for(0));
  EXPECT_DOUBLE_EQ(r.payoff_a, 0.0);
  EXPECT_DOUBLE_EQ(r.payoff_b, 200.0 * 4.0);
}

// Payoff conservation sweep: for the paper's matrix every round pays the
// pair jointly 6 (CC), 4 (CD/DC) or 2 (DD) — so totals are bounded.
class IpdPairSweep : public ::testing::TestWithParam<int> {};

TEST_P(IpdPairSweep, JointPayoffStaysWithinMatrixBounds) {
  const int memory = GetParam();
  const IpdEngine engine(memory);
  util::Xoshiro256 rng(42 + memory);
  for (int g = 0; g < 20; ++g) {
    const auto a = PureStrategy::random(memory, rng);
    const auto b = PureStrategy::random(memory, rng);
    const auto r = engine.play(a, b, rng_for(g));
    const double joint = r.payoff_a + r.payoff_b;
    ASSERT_GE(joint, 200.0 * 2.0);
    ASSERT_LE(joint, 200.0 * 6.0);
    ASSERT_LE(r.coop_a, r.rounds);
    ASSERT_LE(r.coop_b, r.rounds);
  }
}

INSTANTIATE_TEST_SUITE_P(Memory1To6, IpdPairSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace egt::game
