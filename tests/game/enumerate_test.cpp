#include "game/enumerate.hpp"

#include <gtest/gtest.h>

#include <set>

#include "game/markov.hpp"
#include "game/named.hpp"

namespace egt::game {
namespace {

TEST(Enumerate, CountsMatchPaperTableIV) {
  EXPECT_EQ(pure_strategy_count(0), 2u);
  EXPECT_EQ(pure_strategy_count(1), 16u);     // Table III: 16 strategies
  EXPECT_EQ(pure_strategy_count(2), 65536u);  // Table IV row 2
  EXPECT_THROW((void)pure_strategy_count(3), std::invalid_argument);
}

TEST(Enumerate, MemoryOneEnumerationIsCompleteAndDistinct) {
  const auto all = all_pure_strategies(1);
  ASSERT_EQ(all.size(), 16u);
  std::set<std::string> tables;
  for (const auto& s : all) {
    tables.insert(s.to_string());
  }
  EXPECT_EQ(tables.size(), 16u);
}

TEST(Enumerate, NamedStrategiesAppearInTheEnumeration) {
  const auto all = all_pure_strategies(1);
  for (const auto& entry : named::pure_catalog(1)) {
    const bool found =
        std::any_of(all.begin(), all.end(), [&](const PureStrategy& s) {
          return s == entry.strategy.as_pure();
        });
    EXPECT_TRUE(found) << entry.name;
  }
}

TEST(Enumerate, IndexRoundTrip) {
  for (std::uint64_t i = 0; i < 16; ++i) {
    const auto s = pure_strategy_from_index(1, i);
    std::uint64_t back = 0;
    for (State st = 0; st < 4; ++st) {
      back |= static_cast<std::uint64_t>(to_bit(s.move(st))) << st;
    }
    ASSERT_EQ(back, i);
  }
  EXPECT_THROW((void)pure_strategy_from_index(1, 16), std::invalid_argument);
}

TEST(Enumerate, ExhaustiveMemoryOneAnalyticSampledAgreement) {
  // Every one of the 16x16 memory-one pure pairs: the cycle-detection
  // evaluator must equal the round-by-round engine exactly (the exhaustive
  // version of the random sweep in markov_test).
  const auto all = all_pure_strategies(1);
  const IpdEngine engine(1);
  for (const auto& a : all) {
    for (const auto& b : all) {
      const auto exact =
          markov::exact_pure_game(a, b, paper_payoff(), 200);
      const auto sampled = engine.play(a, b, util::StreamRng(0, 0));
      ASSERT_DOUBLE_EQ(exact.payoff_a, sampled.payoff_a)
          << a.to_string() << " vs " << b.to_string();
      ASSERT_EQ(exact.coop_a, sampled.coop_a);
    }
  }
}

TEST(Enumerate, AlldIsTheUniqueDominantOneShotStrategy) {
  // Exhaustive check of the §III-A story at memory-zero: among the two
  // strategies, ALLD weakly dominates in every one-shot matchup.
  const auto all = all_pure_strategies(0);
  ASSERT_EQ(all.size(), 2u);
  const auto& payoff = paper_payoff();
  for (const auto& opp : all) {
    const double d = payoff.payoff(Move::Defect,
                                   opp.move(StateCodec::initial()));
    const double c = payoff.payoff(Move::Cooperate,
                                   opp.move(StateCodec::initial()));
    EXPECT_GT(d, c);
  }
}

}  // namespace
}  // namespace egt::game
