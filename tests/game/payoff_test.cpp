#include "game/payoff.hpp"

#include <gtest/gtest.h>

namespace egt::game {
namespace {

TEST(Payoff, PaperValuesMatchTableI) {
  // f[R,S,T,P] = [3,0,4,1] (paper §III-A / §V-C).
  const PayoffMatrix m = paper_payoff();
  EXPECT_DOUBLE_EQ(m.payoff(Move::Cooperate, Move::Cooperate), 3.0);  // R
  EXPECT_DOUBLE_EQ(m.payoff(Move::Cooperate, Move::Defect), 0.0);     // S
  EXPECT_DOUBLE_EQ(m.payoff(Move::Defect, Move::Cooperate), 4.0);     // T
  EXPECT_DOUBLE_EQ(m.payoff(Move::Defect, Move::Defect), 1.0);        // P
}

TEST(Payoff, PaperGameIsAPrisonersDilemma) {
  EXPECT_TRUE(paper_payoff().is_prisoners_dilemma());
  EXPECT_TRUE(paper_payoff().rewards_mutual_cooperation());
}

TEST(Payoff, AxelrodValues) {
  const PayoffMatrix m = axelrod_payoff();
  EXPECT_DOUBLE_EQ(m.temptation, 5.0);
  EXPECT_TRUE(m.is_prisoners_dilemma());
  // 2R = T + S + 1 > T + S.
  EXPECT_TRUE(m.rewards_mutual_cooperation());
}

TEST(Payoff, DonationGameStructure) {
  const PayoffMatrix m = donation_payoff(3.0, 1.0);
  EXPECT_DOUBLE_EQ(m.reward, 2.0);
  EXPECT_DOUBLE_EQ(m.sucker, -1.0);
  EXPECT_DOUBLE_EQ(m.temptation, 3.0);
  EXPECT_DOUBLE_EQ(m.punishment, 0.0);
  EXPECT_TRUE(m.is_prisoners_dilemma());
}

TEST(Payoff, DonationGameValidatesArguments) {
  EXPECT_THROW(donation_payoff(1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(donation_payoff(1.0, -1.0), std::invalid_argument);
}

TEST(Payoff, SnowdriftIsNotAPrisonersDilemma) {
  const PayoffMatrix m = snowdrift_payoff(4.0, 2.0);
  // In snowdrift S > P: cooperating against a defector beats mutual defection.
  EXPECT_GT(m.sucker, m.punishment);
  EXPECT_FALSE(m.is_prisoners_dilemma());
}

TEST(Payoff, StagHuntIsCoordination) {
  const PayoffMatrix m = stag_hunt_payoff();
  EXPECT_GT(m.reward, m.temptation);  // R > T: coordination, not PD
  EXPECT_FALSE(m.is_prisoners_dilemma());
}

TEST(Payoff, ToStringMentionsAllEntries) {
  const std::string s = paper_payoff().to_string();
  EXPECT_NE(s.find("R=3"), std::string::npos);
  EXPECT_NE(s.find("T=4"), std::string::npos);
}

TEST(Payoff, OppositeMoveHelper) {
  EXPECT_EQ(opposite(Move::Cooperate), Move::Defect);
  EXPECT_EQ(opposite(Move::Defect), Move::Cooperate);
  EXPECT_EQ(to_char(Move::Cooperate), 'C');
  EXPECT_EQ(from_bit(1), Move::Defect);
}

}  // namespace
}  // namespace egt::game
