#include "game/strategy.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace egt::game {
namespace {

TEST(PureStrategy, DefaultsToAllCooperate) {
  const PureStrategy s(2);
  EXPECT_EQ(s.states(), 16u);
  for (State st = 0; st < s.states(); ++st) {
    ASSERT_EQ(s.move(st), Move::Cooperate);
  }
}

TEST(PureStrategy, FromBitsInfersMemory) {
  const PureStrategy s = PureStrategy::from_bits("0110");
  EXPECT_EQ(s.memory(), 1);
  EXPECT_EQ(s.move(0), Move::Cooperate);
  EXPECT_EQ(s.move(1), Move::Defect);
  EXPECT_EQ(s.move(2), Move::Defect);
  EXPECT_EQ(s.move(3), Move::Cooperate);
  EXPECT_EQ(s.to_string(), "0110");
}

TEST(PureStrategy, FromBitsRejectsNonPowerLengths) {
  EXPECT_THROW(PureStrategy::from_bits("01101"), std::invalid_argument);
  EXPECT_THROW(PureStrategy::from_bits(""), std::invalid_argument);
}

TEST(PureStrategy, SetMoveAndEquality) {
  PureStrategy a(1), b(1);
  EXPECT_EQ(a, b);
  a.set_move(2, Move::Defect);
  EXPECT_FALSE(a == b);
  b.set_move(2, Move::Defect);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.hash(), PureStrategy(1).hash());
}

TEST(PureStrategy, RandomIsReproducible) {
  util::Xoshiro256 r1(5), r2(5);
  const auto a = PureStrategy::random(3, r1);
  const auto b = PureStrategy::random(3, r2);
  EXPECT_EQ(a, b);
}

TEST(PureStrategy, MemorySixHas4096States) {
  util::Xoshiro256 rng(1);
  const auto s = PureStrategy::random(6, rng);
  EXPECT_EQ(s.states(), 4096u);
}

TEST(MixedStrategy, ConstantProbabilityConstructor) {
  const MixedStrategy s(1, 0.7);
  for (State st = 0; st < 4; ++st) {
    ASSERT_DOUBLE_EQ(s.coop_prob(st), 0.7);
  }
}

TEST(MixedStrategy, RejectsBadProbabilities) {
  EXPECT_THROW(MixedStrategy(1, 1.5), std::invalid_argument);
  EXPECT_THROW(MixedStrategy::from_probs({0.5, -0.1, 0.5, 0.5}),
               std::invalid_argument);
  MixedStrategy s(1);
  EXPECT_THROW(s.set_coop_prob(0, 2.0), std::invalid_argument);
}

TEST(MixedStrategy, Mem1Helper) {
  const auto s = MixedStrategy::mem1({1.0, 0.25, 0.5, 0.0});
  EXPECT_EQ(s.memory(), 1);
  EXPECT_DOUBLE_EQ(s.coop_prob(1), 0.25);
}

TEST(MixedStrategy, MoveSamplesProbability) {
  const auto s = MixedStrategy::mem1({0.8, 0.8, 0.8, 0.8});
  util::StreamRng rng(1, 2);
  int coop = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (s.move(0, rng) == Move::Cooperate) ++coop;
  }
  EXPECT_NEAR(static_cast<double>(coop) / kN, 0.8, 0.02);
}

TEST(MixedStrategy, DegenerateDetection) {
  EXPECT_TRUE(MixedStrategy::from_probs({1, 0, 0, 1}).is_degenerate());
  EXPECT_FALSE(MixedStrategy::from_probs({1, 0.5, 0, 1}).is_degenerate());
}

TEST(MixedStrategy, FromPureRoundTrip) {
  const PureStrategy p = PureStrategy::from_bits("0101");
  const MixedStrategy m = MixedStrategy::from_pure(p);
  EXPECT_DOUBLE_EQ(m.coop_prob(0), 1.0);
  EXPECT_DOUBLE_EQ(m.coop_prob(1), 0.0);
  EXPECT_TRUE(m.is_degenerate());
}

TEST(MixedStrategy, DistanceIsEuclidean) {
  const auto a = MixedStrategy::from_probs({1, 0, 0, 0});
  const auto b = MixedStrategy::from_probs({0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(a.distance(b), 1.0);
  EXPECT_DOUBLE_EQ(a.distance(a), 0.0);
}

TEST(Strategy, WrapsBothKinds) {
  const Strategy p = PureStrategy::from_bits("0101");
  const Strategy m = MixedStrategy::mem1({0.5, 0.5, 0.5, 0.5});
  EXPECT_TRUE(p.is_pure());
  EXPECT_FALSE(m.is_pure());
  EXPECT_EQ(p.memory(), 1);
  EXPECT_EQ(m.states(), 4u);
  EXPECT_DOUBLE_EQ(p.coop_prob(1), 0.0);
  EXPECT_DOUBLE_EQ(m.coop_prob(1), 0.5);
}

TEST(Strategy, PureAndMixedWithSameTableDifferInHash) {
  const Strategy p = PureStrategy::from_bits("0101");
  const Strategy m = p.to_mixed();
  EXPECT_NE(p.hash(), m.hash());
  EXPECT_FALSE(p == m);
}

TEST(Strategy, SerializeRoundTripsPure) {
  util::Xoshiro256 rng(3);
  for (int memory : {0, 1, 3, 6}) {
    const Strategy s = PureStrategy::random(memory, rng);
    const Strategy back = Strategy::deserialize(s.serialize());
    ASSERT_TRUE(back == s) << "memory=" << memory;
  }
}

TEST(Strategy, SerializeRoundTripsMixed) {
  util::Xoshiro256 rng(4);
  for (int memory : {1, 2}) {
    const Strategy s = MixedStrategy::random(memory, rng);
    const Strategy back = Strategy::deserialize(s.serialize());
    ASSERT_TRUE(back == s) << "memory=" << memory;
  }
}

TEST(Strategy, DeserializeRejectsCorruptPayloads) {
  EXPECT_THROW(Strategy::deserialize({}), std::invalid_argument);
  auto bytes = Strategy(PureStrategy(1)).serialize();
  bytes.pop_back();
  EXPECT_THROW(Strategy::deserialize(bytes), std::invalid_argument);
}

TEST(Strategy, DeserializeFuzzNeverCrashes) {
  // Random byte soup must either produce a valid strategy or throw —
  // never crash or read out of bounds (the payload arrives off the wire).
  util::Xoshiro256 rng(0xf22);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t len = util::uniform_below(rng, 64);
    std::vector<std::byte> bytes(len);
    for (auto& b : bytes) {
      b = static_cast<std::byte>(rng() & 0xff);
    }
    try {
      const Strategy s = Strategy::deserialize(bytes);
      ASSERT_LE(s.memory(), kMaxMemory);
      ++accepted;
    } catch (const std::invalid_argument&) {
      // expected for malformed payloads
    }
  }
  // Mostly garbage; a few short pure payloads can be coincidentally valid.
  EXPECT_LT(accepted, 200);
}

TEST(Strategy, DeserializeFlippedBitsRoundTripOrThrow) {
  util::Xoshiro256 rng(404);
  const Strategy original = MixedStrategy::random(1, rng);
  auto bytes = original.serialize();
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = bytes;
    const auto pos = util::uniform_below(rng, corrupted.size());
    corrupted[pos] ^= static_cast<std::byte>(1u << (rng() & 7));
    try {
      (void)Strategy::deserialize(corrupted);
    } catch (const std::invalid_argument&) {
      // fine: header corruption detected
    }
  }
  // The pristine payload still works after all that.
  EXPECT_TRUE(Strategy::deserialize(bytes) == original);
}

TEST(Strategy, PureSerializationIsCompact) {
  // A memory-six pure strategy is 4096 bits = 512 bytes (+2 header).
  const Strategy s = PureStrategy(6);
  EXPECT_EQ(s.serialize().size(), 2u + 512u);
}

}  // namespace
}  // namespace egt::game
