#include "game/named.hpp"

#include <gtest/gtest.h>

namespace egt::game::named {
namespace {

TEST(Named, AllCAndAllD) {
  const auto c = all_c(2);
  const auto d = all_d(2);
  for (State s = 0; s < c.states(); ++s) {
    ASSERT_EQ(c.move(s), Move::Cooperate);
    ASSERT_EQ(d.move(s), Move::Defect);
  }
}

TEST(Named, TftMemoryOneIsPaperPattern) {
  // States (my, opp): CC=0, CD=1, DC=2, DD=3; TFT copies opp.
  const auto t = tit_for_tat(1);
  EXPECT_EQ(t.move(0), Move::Cooperate);
  EXPECT_EQ(t.move(1), Move::Defect);
  EXPECT_EQ(t.move(2), Move::Cooperate);
  EXPECT_EQ(t.move(3), Move::Defect);
}

TEST(Named, TftLiftsToHigherMemoryConsistently) {
  const StateCodec c(3);
  const auto t = tit_for_tat(3);
  for (State s = 0; s < c.states(); ++s) {
    ASSERT_EQ(t.move(s), c.opp_move(s, 0));
  }
}

TEST(Named, WslsMatchesPaperTableV) {
  // Paper Table V (0 = cooperate): state CC -> 0, CD -> 1, DD -> 0, DC -> 1.
  const auto w = win_stay_lose_shift(1);
  EXPECT_EQ(w.move(0), Move::Cooperate);  // (C,C): won, stay C
  EXPECT_EQ(w.move(1), Move::Defect);     // (C,D): lost, shift to D
  EXPECT_EQ(w.move(3), Move::Cooperate);  // (D,D): lost, shift to C
  EXPECT_EQ(w.move(2), Move::Defect);     // (D,C): won, stay D
}

TEST(Named, WslsBitStringIsStateOrder0110) {
  // In our state order (CC, CD, DC, DD) WSLS reads "0110".
  EXPECT_EQ(win_stay_lose_shift(1).to_string(), "0110");
}

TEST(Named, GrimCooperatesOnlyOnCleanHistory) {
  const auto g = grim(2);
  EXPECT_EQ(g.move(0), Move::Cooperate);
  for (State s = 1; s < g.states(); ++s) {
    ASSERT_EQ(g.move(s), Move::Defect);
  }
}

TEST(Named, Tf2tNeedsTwoDefections) {
  const auto t = tit_for_two_tats(2);
  const StateCodec c(2);
  for (State s = 0; s < c.states(); ++s) {
    const bool two = c.opp_move(s, 0) == Move::Defect &&
                     c.opp_move(s, 1) == Move::Defect;
    ASSERT_EQ(t.move(s), two ? Move::Defect : Move::Cooperate);
  }
}

TEST(Named, Tf2tRejectsMemoryOne) {
  EXPECT_THROW(tit_for_two_tats(1), std::invalid_argument);
}

TEST(Named, GtftGenerosityOnlyAfterDefection) {
  const auto g = generous_tit_for_tat(1, 0.3);
  EXPECT_DOUBLE_EQ(g.coop_prob(0), 1.0);  // opp cooperated
  EXPECT_DOUBLE_EQ(g.coop_prob(1), 0.3);  // opp defected
  EXPECT_DOUBLE_EQ(g.coop_prob(2), 1.0);
  EXPECT_DOUBLE_EQ(g.coop_prob(3), 0.3);
}

TEST(Named, GtftValidatesGenerosity) {
  EXPECT_THROW(generous_tit_for_tat(1, 1.5), std::invalid_argument);
}

TEST(Named, ContriteAcceptsPunishment) {
  const auto c = contrite_tit_for_tat(1);
  EXPECT_EQ(c.move(0), Move::Cooperate);  // (C,C)
  EXPECT_EQ(c.move(1), Move::Defect);     // (C,D): provoked
  EXPECT_EQ(c.move(2), Move::Cooperate);  // (D,C): apologise
  EXPECT_EQ(c.move(3), Move::Cooperate);  // (D,D): accept punishment
}

TEST(Named, FirmButFairForgivesSucker) {
  const auto f = firm_but_fair(1);
  EXPECT_EQ(f.move(0), Move::Cooperate);  // like WSLS
  EXPECT_EQ(f.move(1), Move::Cooperate);  // suckered but keeps cooperating
  EXPECT_EQ(f.move(2), Move::Defect);     // like WSLS
  EXPECT_EQ(f.move(3), Move::Cooperate);  // like WSLS
}

TEST(Named, AlternatorFlipsOwnMove) {
  const auto a = alternator(1);
  EXPECT_EQ(a.move(0), Move::Defect);     // was C -> D
  EXPECT_EQ(a.move(2), Move::Cooperate);  // was D -> C
}

TEST(Named, PureCatalogHasDistinctEntries) {
  const auto cat = pure_catalog(2);
  EXPECT_GE(cat.size(), 8u);
  for (std::size_t i = 0; i < cat.size(); ++i) {
    for (std::size_t j = i + 1; j < cat.size(); ++j) {
      ASSERT_FALSE(cat[i].strategy == cat[j].strategy)
          << cat[i].name << " == " << cat[j].name;
    }
  }
}

TEST(Named, FullCatalogIncludesStochasticEntries) {
  const auto cat = full_catalog(1);
  bool has_gtft = false, has_random = false;
  for (const auto& e : cat) {
    if (e.name == "GTFT") has_gtft = true;
    if (e.name == "RANDOM") has_random = true;
  }
  EXPECT_TRUE(has_gtft);
  EXPECT_TRUE(has_random);
}

TEST(Named, NearestNamedIdentifiesExactMatches) {
  for (const auto& e : pure_catalog(1)) {
    const auto [name, dist] = nearest_named(e.strategy);
    EXPECT_EQ(name, e.name);
    EXPECT_DOUBLE_EQ(dist, 0.0);
  }
}

TEST(Named, NearestNamedFindsCloseNeighbour) {
  // WSLS with slight noise on one state probability.
  const auto probe =
      game::MixedStrategy::from_probs({0.95, 0.02, 0.05, 0.9});
  const auto [name, dist] = nearest_named(game::Strategy(probe));
  EXPECT_EQ(name, "WSLS");
  EXPECT_LT(dist, 0.2);
}

// Parameterised: every pure named strategy lifts to every legal memory
// depth with in-range moves only determined by recent rounds.
class NamedLiftSweep : public ::testing::TestWithParam<int> {};

TEST_P(NamedLiftSweep, LiftedStrategiesDependOnlyOnRecentRounds) {
  const int memory = GetParam();
  const StateCodec c(memory);
  const auto t = tit_for_tat(memory);
  const auto w = win_stay_lose_shift(memory);
  // TFT/WSLS are memory-one rules: two states agreeing on round 0 must get
  // the same move.
  for (State s = 0; s < std::min<State>(c.states(), 1024); ++s) {
    const State recent = s & 3u;
    ASSERT_EQ(t.move(s), t.move(recent));
    ASSERT_EQ(w.move(s), w.move(recent));
  }
}

INSTANTIATE_TEST_SUITE_P(Memory1To6, NamedLiftSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace egt::game::named
