// The m-action analytic engine (game/spec/chain.hpp) against its 2x2
// ancestors: for actions == 2 the joint-outcome chain must reproduce
// markov::expected_game_mem1 / stationary_mem1 exactly (same chain, two
// implementations), and for m >= 3 the solve must satisfy the invariants
// a hand analysis pins down (uniform RPS, pure one-shot play).
#include "game/spec/chain.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "game/markov.hpp"
#include "game/spec/registry.hpp"
#include "game/strategy.hpp"
#include "util/rng.hpp"

namespace egt::game::spec {
namespace {

GameSpec two_action_spec(std::uint32_t rounds, double noise) {
  GameSpec s;
  s.rounds = rounds;
  s.noise = noise;
  return s;
}

TEST(Behavioral, ConstantValidatesItsDistribution) {
  EXPECT_NO_THROW(Behavioral::constant(3, {0.2, 0.3, 0.5}).validate());
  EXPECT_THROW(Behavioral::constant(3, {0.5, 0.5}), std::invalid_argument);
}

TEST(Behavioral, FromStrategyLiftsBinaryAndNWayStrategies) {
  const GameSpec binary = two_action_spec(10, 0.0);
  const Behavioral tft = Behavioral::from_strategy(
      binary, Strategy{MixedStrategy::from_probs({1.0, 0.0, 1.0, 0.0})});
  EXPECT_EQ(tft.actions, 2u);
  EXPECT_EQ(tft.memory, 1);
  EXPECT_EQ(tft.states(), 4u);

  const GameSpec* rps = find_game("rps");
  ASSERT_NE(rps, nullptr);
  const Behavioral nway = Behavioral::from_strategy(
      *rps, Strategy{NWayStrategy::from_probs({0.2, 0.3, 0.5})});
  EXPECT_EQ(nway.actions, 3u);
  EXPECT_EQ(nway.memory, 0);
  EXPECT_DOUBLE_EQ(nway.probs[2], 0.5);
}

// For 2 actions the chain over {CC, CD, DC, DD} is literally the chain
// expected_game_mem1 propagates; totals must agree to rounding error.
TEST(Chain, TwoActionExpectedGameMatchesMarkovMem1) {
  util::Xoshiro256 rng(11);
  for (const double noise : {0.0, 0.05}) {
    const GameSpec spec = two_action_spec(37, noise);
    for (int trial = 0; trial < 8; ++trial) {
      const Strategy a{MixedStrategy::random(1, rng)};
      const Strategy b{MixedStrategy::random(1, rng)};
      const GameResult want = markov::expected_game_mem1(
          a, b, spec.payoff, spec.rounds, spec.noise);
      const GameResult got =
          expected_game(spec, Behavioral::from_strategy(spec, a),
                        Behavioral::from_strategy(spec, b));
      ASSERT_NEAR(got.payoff_a, want.payoff_a, 1e-9) << "noise " << noise;
      ASSERT_NEAR(got.payoff_b, want.payoff_b, 1e-9) << "noise " << noise;
      ASSERT_EQ(got.rounds, want.rounds);
      ASSERT_EQ(got.coop_a, want.coop_a);
      ASSERT_EQ(got.coop_b, want.coop_b);
    }
  }
}

TEST(Chain, TwoActionStationaryMatchesMarkovMem1) {
  util::Xoshiro256 rng(13);
  const GameSpec spec = two_action_spec(50, 0.02);  // ergodic via noise
  for (int trial = 0; trial < 8; ++trial) {
    const Strategy a{MixedStrategy::random(1, rng)};
    const Strategy b{MixedStrategy::random(1, rng)};
    const auto want = markov::stationary_mem1(a, b, spec.payoff, spec.noise);
    const auto got =
        stationary_outcome(spec, Behavioral::from_strategy(spec, a),
                           Behavioral::from_strategy(spec, b));
    ASSERT_NEAR(got.payoff_a, want.payoff_a, 1e-9);
    ASSERT_NEAR(got.payoff_b, want.payoff_b, 1e-9);
    ASSERT_NEAR(got.coop_a, want.coop_a, 1e-9);
    ASSERT_NEAR(got.coop_b, want.coop_b, 1e-9);
  }
}

TEST(Chain, UniformRpsIsZeroSumAndUniformStationary) {
  const GameSpec* rps = find_game("rps");
  ASSERT_NE(rps, nullptr);
  const auto uniform = Behavioral::constant(3, {1.0 / 3, 1.0 / 3, 1.0 / 3});
  const GameResult r = expected_game(*rps, uniform, uniform);
  EXPECT_NEAR(r.payoff_a, 0.0, 1e-12);
  EXPECT_NEAR(r.payoff_b, 0.0, 1e-12);
  const auto pi = stationary_distribution(*rps, uniform, uniform);
  ASSERT_EQ(pi.size(), 9u);
  double sum = 0.0;
  for (const double p : pi) {
    EXPECT_NEAR(p, 1.0 / 9, 1e-12);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Chain, DegenerateStrategiesScoreTheTableEntry) {
  const GameSpec* rps = find_game("rps");
  ASSERT_NE(rps, nullptr);
  const auto rock = Behavioral::constant(3, {1, 0, 0});
  const auto paper = Behavioral::constant(3, {0, 1, 0});
  const GameResult r = expected_game(*rps, rock, paper);
  EXPECT_NEAR(r.payoff_a, -1.0 * rps->rounds, 1e-12);
  EXPECT_NEAR(r.payoff_b, 1.0 * rps->rounds, 1e-12);
}

TEST(Chain, NoiseShiftsTheExpectedActionDistribution) {
  GameSpec rps = *find_game("rps");
  rps.noise = 0.3;
  const auto rock = Behavioral::constant(3, {1, 0, 0});
  // With noise eps, the played distribution is (1-eps) on rock and eps/2
  // on each other action; rock vs rock expected payoff per round follows.
  const double eps = 0.3;
  const std::vector<double> d = {1.0 - eps, eps / 2, eps / 2};
  double want = 0.0;
  for (std::uint32_t a = 0; a < 3; ++a) {
    for (std::uint32_t b = 0; b < 3; ++b) {
      want += d[a] * d[b] * rps.payoff_of(a, b);
    }
  }
  const GameResult r = expected_game(rps, rock, rock);
  EXPECT_NEAR(r.payoff_a, want * rps.rounds, 1e-9);
}

TEST(Chain, PlayOneshotIsDeterministicPerStreamAndExactForPurePairs) {
  const GameSpec* rps = find_game("rps");
  ASSERT_NE(rps, nullptr);
  const Strategy rock{NWayStrategy::pure_action(3, 0)};
  const Strategy scissors{NWayStrategy::pure_action(3, 2)};
  const GameResult r1 =
      play_oneshot(*rps, rock, scissors, util::StreamRng(1, 42));
  const GameResult r2 =
      play_oneshot(*rps, rock, scissors, util::StreamRng(1, 42));
  EXPECT_DOUBLE_EQ(r1.payoff_a, r2.payoff_a);
  // Noise-free pure play: rock beats scissors every round.
  EXPECT_DOUBLE_EQ(r1.payoff_a, 1.0 * rps->rounds);
  EXPECT_DOUBLE_EQ(r1.payoff_b, -1.0 * rps->rounds);
  EXPECT_EQ(r1.rounds, rps->rounds);
}

TEST(Chain, PlayOneshotMatchesExpectedGameInMean) {
  const GameSpec* rps = find_game("rps");
  ASSERT_NE(rps, nullptr);
  const Strategy a{NWayStrategy::from_probs({0.5, 0.3, 0.2})};
  const Strategy b{NWayStrategy::from_probs({0.1, 0.6, 0.3})};
  const GameResult expect = expected_game(
      *rps, Behavioral::from_strategy(*rps, a),
      Behavioral::from_strategy(*rps, b));
  double mean = 0.0;
  const int samples = 4000;
  for (int k = 0; k < samples; ++k) {
    mean += play_oneshot(*rps, a, b, util::StreamRng(7, k)).payoff_a;
  }
  mean /= samples;
  // Monte-Carlo agreement: generous band, but tight enough to catch a
  // payoff table or noise-folding mix-up.
  EXPECT_NEAR(mean, expect.payoff_a, 0.05 * rps->rounds);
}

}  // namespace
}  // namespace egt::game::spec
