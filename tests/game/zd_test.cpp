#include "game/zd.hpp"

#include <gtest/gtest.h>

#include "game/markov.hpp"
#include "game/named.hpp"
#include "util/rng.hpp"

namespace egt::game::zd {
namespace {

const PayoffMatrix kPayoff = paper_payoff();

TEST(Zd, ExtortionateProbabilitiesAreValidUpToMaxPhi) {
  for (double chi : {1.0, 1.5, 2.0, 5.0}) {
    const double phi_max = max_phi_extortionate(kPayoff, chi);
    ASSERT_GT(phi_max, 0.0);
    const auto p = extortionate(kPayoff, chi, phi_max);
    ASSERT_TRUE(p.has_value()) << chi;
    EXPECT_TRUE(p->valid());
    // Above the bound the construction must fail.
    EXPECT_FALSE(extortionate(kPayoff, chi, phi_max * 1.5).has_value());
  }
}

TEST(Zd, ExtortionEnforcesItsLinearRelation) {
  // pi_self - P = chi (pi_opp - P)  <=>  pi_self - chi pi_opp + (chi-1) P = 0.
  for (double chi : {1.5, 2.0, 4.0}) {
    const auto p =
        extortionate(kPayoff, chi, 0.8 * max_phi_extortionate(kPayoff, chi));
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(enforces_linear_relation(
        *p, kPayoff, 1.0, -chi, (chi - 1.0) * kPayoff.punishment))
        << "chi=" << chi;
  }
}

TEST(Zd, ExtortionerAlwaysOutscoresItsVictim) {
  // Against any opponent, the extortioner's surplus over P is chi times
  // the opponent's — so whenever the opponent does better than P, the
  // extortioner does strictly better still.
  const double chi = 3.0;
  const auto p =
      extortionate(kPayoff, chi, 0.5 * max_phi_extortionate(kPayoff, chi));
  ASSERT_TRUE(p.has_value());
  const Strategy ext = to_memory_one(*p);
  util::Xoshiro256 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const Strategy q = MixedStrategy::random(1, rng);
    const auto out = markov::stationary_mem1(ext, q, kPayoff, 0.0);
    EXPECT_GE(out.payoff_a, out.payoff_b - 1e-9);
  }
}

TEST(Zd, ExtortionerExploitsAllc) {
  const double chi = 2.0;
  const auto p =
      extortionate(kPayoff, chi, 0.5 * max_phi_extortionate(kPayoff, chi));
  const Strategy ext = to_memory_one(*p);
  const auto out = markov::stationary_mem1(
      ext, Strategy(named::all_c(1)), kPayoff, 0.0);
  // ALLC earns above P, so the extortioner earns chi-fold above P.
  EXPECT_GT(out.payoff_b, kPayoff.punishment);
  EXPECT_NEAR(out.payoff_a - kPayoff.punishment,
              chi * (out.payoff_b - kPayoff.punishment), 1e-9);
  EXPECT_GT(out.payoff_a, out.payoff_b);
}

TEST(Zd, WslsRefusesToBeExtorted) {
  // WSLS-vs-extortion settles near mutual punishment: the extortioner
  // gains (almost) nothing — consistent with WSLS's evolutionary success.
  const double chi = 3.0;
  const auto p =
      extortionate(kPayoff, chi, 0.5 * max_phi_extortionate(kPayoff, chi));
  const Strategy ext = to_memory_one(*p);
  const auto out = markov::stationary_mem1(
      ext, Strategy(named::win_stay_lose_shift(1)), kPayoff, 0.0);
  EXPECT_LT(out.payoff_a, 2.0);  // far below the R = 3 of cooperation
}

TEST(Zd, GenerousProbabilitiesValidAndRelationHolds) {
  for (double chi : {0.3, 0.5, 0.9}) {
    const auto p = generous(kPayoff, chi, 0.1);
    ASSERT_TRUE(p.has_value()) << chi;
    // pi_opp - R = chi (pi_self - R)  <=>  -chi pi_self + pi_opp + (chi-1) R = 0
    EXPECT_TRUE(enforces_linear_relation(
        *p, kPayoff, -chi, 1.0, (chi - 1.0) * kPayoff.reward))
        << "chi=" << chi;
  }
}

TEST(Zd, GenerousFullyCooperatesWithItself) {
  const auto p = generous(kPayoff, 0.5, 0.1);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->p_cc, 1.0);
  const Strategy g = to_memory_one(*p);
  const auto out = markov::stationary_mem1(g, g, kPayoff, 0.0);
  EXPECT_NEAR(out.payoff_a, kPayoff.reward, 1e-9);
}

TEST(Zd, GenerousNeverOutscoresItsPartner) {
  const auto p = generous(kPayoff, 0.4, 0.08);
  ASSERT_TRUE(p.has_value());
  const Strategy g = to_memory_one(*p);
  util::Xoshiro256 rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    const Strategy q = MixedStrategy::random(1, rng);
    const auto out = markov::stationary_mem1(g, q, kPayoff, 0.0);
    EXPECT_LE(out.payoff_a, out.payoff_b + 1e-9);
  }
}

TEST(Zd, ArgumentValidation) {
  EXPECT_THROW((void)extortionate(kPayoff, 0.5, 0.1), std::invalid_argument);
  EXPECT_THROW((void)extortionate(kPayoff, 2.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)generous(kPayoff, 1.5, 0.1), std::invalid_argument);
  ZdProbs bad;
  bad.p_cc = 1.2;
  EXPECT_THROW((void)to_memory_one(bad), std::invalid_argument);
}

}  // namespace
}  // namespace egt::game::zd
