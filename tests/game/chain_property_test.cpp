// Property test (satellite of the mean-field PR): the analytic stationary
// solve of game::spec must agree with a brute-force power-iteration
// reference built in this test straight from the documented chain
// semantics — A conditions on (my last, their last), B mirrors the state,
// noise folds as p'(a) = (1 - eps) p(a) + eps/(m-1) (1 - p(a)) — across
// randomized m-action specs. Interior (strictly positive) behavioral
// strategies keep every chain ergodic, so both methods must land on the
// same distribution to 1e-10.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "game/spec/chain.hpp"
#include "game/spec/gamespec.hpp"

namespace egt::game::spec {
namespace {

Behavioral random_behavioral(std::uint32_t actions, int memory,
                             std::mt19937_64& rng) {
  Behavioral b;
  b.actions = actions;
  b.memory = memory;
  const std::uint32_t states = b.states();
  b.probs.resize(static_cast<std::size_t>(states) * actions);
  std::uniform_real_distribution<double> u(0.1, 1.0);  // interior: ergodic
  for (std::uint32_t s = 0; s < states; ++s) {
    double total = 0.0;
    for (std::uint32_t a = 0; a < actions; ++a) {
      b.probs[static_cast<std::size_t>(s) * actions + a] = u(rng);
      total += b.probs[static_cast<std::size_t>(s) * actions + a];
    }
    for (std::uint32_t a = 0; a < actions; ++a) {
      b.probs[static_cast<std::size_t>(s) * actions + a] /= total;
    }
  }
  return b;
}

/// Executed-action distribution of one player in joint state (x, y),
/// re-derived from the documented semantics (not from build_chain).
std::vector<double> executed_dist(const Behavioral& s, double noise,
                                  std::uint32_t my_last,
                                  std::uint32_t their_last) {
  const std::uint32_t m = s.actions;
  const std::uint32_t state = s.memory == 0 ? 0 : my_last * m + their_last;
  std::vector<double> d(m);
  for (std::uint32_t a = 0; a < m; ++a) {
    const double p = s.probs[static_cast<std::size_t>(state) * m + a];
    d[a] = noise == 0.0
               ? p
               : (1.0 - noise) * p + (noise / (m - 1)) * (1.0 - p);
  }
  return d;
}

/// Power-iterate pi <- pi T to the stationary distribution of the joint
/// outcome chain (row-major state = A's action * m + B's action).
std::vector<double> power_iteration_stationary(const GameSpec& spec,
                                               const Behavioral& a,
                                               const Behavioral& b) {
  const std::uint32_t m = spec.actions;
  const std::uint32_t n = m * m;
  std::vector<double> T(static_cast<std::size_t>(n) * n, 0.0);
  for (std::uint32_t x = 0; x < m; ++x) {
    for (std::uint32_t y = 0; y < m; ++y) {
      const std::uint32_t s = x * m + y;
      const auto da = executed_dist(a, spec.noise, x, y);
      const auto db = executed_dist(b, spec.noise, y, x);
      for (std::uint32_t u = 0; u < m; ++u) {
        for (std::uint32_t v = 0; v < m; ++v) {
          T[static_cast<std::size_t>(s) * n + u * m + v] = da[u] * db[v];
        }
      }
    }
  }
  std::vector<double> pi(n, 1.0 / n), next(n);
  for (int iter = 0; iter < 200000; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::uint32_t s = 0; s < n; ++s) {
      for (std::uint32_t t = 0; t < n; ++t) {
        next[t] += pi[s] * T[static_cast<std::size_t>(s) * n + t];
      }
    }
    double diff = 0.0, total = 0.0;
    for (std::uint32_t t = 0; t < n; ++t) {
      diff += std::abs(next[t] - pi[t]);
      total += next[t];
    }
    for (std::uint32_t t = 0; t < n; ++t) next[t] /= total;
    pi.swap(next);
    if (diff < 1e-14) break;
  }
  return pi;
}

TEST(ChainProperty, StationarySolveMatchesPowerIterationAcrossRandomSpecs) {
  std::mt19937_64 rng(0x5eed2026u);  // pinned: same cases every run
  std::uniform_int_distribution<int> pick_m(2, 4);
  std::uniform_int_distribution<int> pick_mem(0, 1);
  std::uniform_int_distribution<int> pick_noise(0, 2);

  for (int c = 0; c < 40; ++c) {
    const std::uint32_t m = static_cast<std::uint32_t>(pick_m(rng));
    auto spec = GameSpec::matrix_n(
        "chain_prop", m,
        std::vector<double>(static_cast<std::size_t>(m) * m, 0.0));
    spec.noise = 0.05 * pick_noise(rng);
    const auto a = random_behavioral(m, pick_mem(rng), rng);
    const auto b = random_behavioral(m, pick_mem(rng), rng);

    const auto analytic = stationary_distribution(spec, a, b);
    const auto reference = power_iteration_stationary(spec, a, b);
    ASSERT_EQ(analytic.size(), reference.size()) << "case " << c;

    double sum = 0.0;
    for (std::size_t s = 0; s < analytic.size(); ++s) {
      EXPECT_NEAR(analytic[s], reference[s], 1e-10)
          << "case " << c << " (m " << m << ", noise " << spec.noise
          << ") state " << s;
      sum += analytic[s];
    }
    EXPECT_NEAR(sum, 1.0, 1e-10) << "case " << c;
  }
}

TEST(ChainProperty, MemoryOneMixtureAgreesWithItsOwnMirror) {
  // Symmetric sanity rider: identical strategies on a symmetric spec give
  // a stationary distribution symmetric under (u, v) -> (v, u).
  std::mt19937_64 rng(0xabc12345u);
  for (const std::uint32_t m : {2u, 3u}) {
    auto spec = GameSpec::matrix_n(
        "chain_prop_sym", m,
        std::vector<double>(static_cast<std::size_t>(m) * m, 0.0));
    spec.noise = 0.02;
    const auto s = random_behavioral(m, 1, rng);
    const auto pi = stationary_distribution(spec, s, s);
    for (std::uint32_t u = 0; u < m; ++u) {
      for (std::uint32_t v = 0; v < m; ++v) {
        EXPECT_NEAR(pi[u * m + v], pi[v * m + u], 1e-10)
            << "m " << m << " (" << u << "," << v << ")";
      }
    }
  }
}

}  // namespace
}  // namespace egt::game::spec
