#include "game/state.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace egt::game {
namespace {

TEST(StateCodec, StateCountsMatchPaperTableIV) {
  // 4^n states for memory-n (paper §III-D).
  EXPECT_EQ(num_states(0), 1u);
  EXPECT_EQ(num_states(1), 4u);
  EXPECT_EQ(num_states(2), 16u);
  EXPECT_EQ(num_states(3), 64u);
  EXPECT_EQ(num_states(6), 4096u);
}

TEST(StateCodec, RejectsOutOfRangeMemory) {
  EXPECT_THROW(StateCodec(-1), std::invalid_argument);
  EXPECT_THROW(StateCodec(7), std::invalid_argument);
  EXPECT_NO_THROW(StateCodec(6));
}

TEST(StateCodec, InitialStateIsAllCooperate) {
  EXPECT_EQ(StateCodec::initial(), 0u);
}

TEST(StateCodec, PushMemoryOne) {
  const StateCodec c(1);
  // state = 2*my + opp
  EXPECT_EQ(c.push(0, Move::Cooperate, Move::Cooperate), 0u);
  EXPECT_EQ(c.push(0, Move::Cooperate, Move::Defect), 1u);
  EXPECT_EQ(c.push(0, Move::Defect, Move::Cooperate), 2u);
  EXPECT_EQ(c.push(0, Move::Defect, Move::Defect), 3u);
  // memory-one forgets everything older than one round
  EXPECT_EQ(c.push(3, Move::Cooperate, Move::Cooperate), 0u);
}

TEST(StateCodec, PushMemoryTwoKeepsOneOldRound) {
  const StateCodec c(2);
  State s = StateCodec::initial();
  s = c.push(s, Move::Defect, Move::Cooperate);  // round 1: (D, C)
  EXPECT_EQ(s, 2u);
  s = c.push(s, Move::Cooperate, Move::Defect);  // round 2: (C, D)
  // most recent round in the low bits: (C,D)=1, older (D,C)=2 << 2.
  EXPECT_EQ(s, (2u << 2) | 1u);
  s = c.push(s, Move::Defect, Move::Defect);  // (D,D)=3; (C,D) shifts up
  EXPECT_EQ(s, (1u << 2) | 3u);
}

TEST(StateCodec, MoveAccessors) {
  const StateCodec c(3);
  State s = StateCodec::initial();
  s = c.push(s, Move::Defect, Move::Cooperate);   // k=2 after more pushes
  s = c.push(s, Move::Cooperate, Move::Defect);   // k=1
  s = c.push(s, Move::Defect, Move::Defect);      // k=0 (most recent)
  EXPECT_EQ(c.my_move(s, 0), Move::Defect);
  EXPECT_EQ(c.opp_move(s, 0), Move::Defect);
  EXPECT_EQ(c.my_move(s, 1), Move::Cooperate);
  EXPECT_EQ(c.opp_move(s, 1), Move::Defect);
  EXPECT_EQ(c.my_move(s, 2), Move::Defect);
  EXPECT_EQ(c.opp_move(s, 2), Move::Cooperate);
}

TEST(StateCodec, SwapPerspectiveIsAnInvolution) {
  for (int memory = 1; memory <= 4; ++memory) {
    const StateCodec c(memory);
    for (State s = 0; s < c.states(); ++s) {
      ASSERT_EQ(c.swap_perspective(c.swap_perspective(s)), s);
    }
  }
}

TEST(StateCodec, SwapPerspectiveSwapsRoles) {
  const StateCodec c(2);
  State mine = StateCodec::initial();
  State theirs = StateCodec::initial();
  mine = c.push(mine, Move::Defect, Move::Cooperate);
  theirs = c.push(theirs, Move::Cooperate, Move::Defect);
  EXPECT_EQ(c.swap_perspective(mine), theirs);
  mine = c.push(mine, Move::Cooperate, Move::Defect);
  theirs = c.push(theirs, Move::Defect, Move::Cooperate);
  EXPECT_EQ(c.swap_perspective(mine), theirs);
}

TEST(StateCodec, EncodeMatchesPushSequence) {
  const StateCodec c(2);
  // History vectors: index 0 = most recent round.
  const State s = c.encode({Move::Defect, Move::Cooperate},
                           {Move::Cooperate, Move::Defect});
  State t = StateCodec::initial();
  t = c.push(t, Move::Cooperate, Move::Defect);  // older round
  t = c.push(t, Move::Defect, Move::Cooperate);  // most recent
  EXPECT_EQ(s, t);
}

TEST(StateCodec, EncodeValidatesLengths) {
  const StateCodec c(2);
  EXPECT_THROW((void)c.encode({Move::Cooperate}, {Move::Cooperate}),
               std::invalid_argument);
}

TEST(StateCodec, MemoryZeroHasOneState) {
  const StateCodec c(0);
  EXPECT_EQ(c.states(), 1u);
  EXPECT_EQ(c.push(0, Move::Defect, Move::Defect), 0u);
}

// Property sweep: push keeps states within range for all memory depths.
class StateCodecSweep : public ::testing::TestWithParam<int> {};

TEST_P(StateCodecSweep, PushStaysInRange) {
  const StateCodec c(GetParam());
  State s = StateCodec::initial();
  util::SplitMix64 rng(99);
  for (int r = 0; r < 1000; ++r) {
    const Move a = from_bit(static_cast<int>(rng() & 1));
    const Move b = from_bit(static_cast<int>(rng() & 1));
    s = c.push(s, a, b);
    ASSERT_LT(s, c.states());
    if (c.memory() >= 1) {
      // Memory-zero keeps no history; otherwise the newest round is
      // readable back.
      ASSERT_EQ(c.my_move(s, 0), a);
      ASSERT_EQ(c.opp_move(s, 0), b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMemories, StateCodecSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

TEST(LinearStateTable, FindStateIsIdentityOnValidViews) {
  for (int memory : {1, 2, 3}) {
    const LinearStateTable t(memory);
    for (State v = 0; v < t.states(); ++v) {
      ASSERT_EQ(t.find_state(v), v);
    }
  }
}

TEST(LinearStateTable, MatchesPaperMemoryOneEnumeration) {
  const LinearStateTable t(1);
  EXPECT_EQ(t.states(), 4u);  // paper Table II: 2^2 = 4 states
}

}  // namespace
}  // namespace egt::game
