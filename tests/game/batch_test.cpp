#include "game/batch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "game/markov.hpp"
#include "game/named.hpp"
#include "game/simd.hpp"
#include "game/state.hpp"
#include "util/rng.hpp"

namespace egt::game::batch {
namespace {

const PayoffMatrix kPayoff = paper_payoff();

double rel_err(double got, double want) {
  const double scale = std::max(1.0, std::fabs(want));
  return std::fabs(got - want) / scale;
}

Mem1Batch random_mixed_batch(std::size_t n, double eps,
                             std::vector<Strategy>& a_out,
                             std::vector<Strategy>& b_out,
                             util::Xoshiro256& rng) {
  Mem1Batch batch;
  for (std::size_t k = 0; k < n; ++k) {
    a_out.emplace_back(MixedStrategy::random(1, rng));
    b_out.emplace_back(MixedStrategy::random(1, rng));
    batch.push_pair(a_out.back(), b_out.back(), eps);
  }
  return batch;
}

// Every batch size around the 4-lane group width — 1..9 covers full
// groups, bare remainders, and the empty-remainder case — must agree with
// the markov reference per pair to 1e-12 relative, under the active
// kernel (AVX2 where compiled+supported) and the forced-scalar one.
TEST(Mem1BatchKernel, RemainderLaneSizesMatchMarkovReference) {
  util::Xoshiro256 rng(2024);
  for (const double eps : {0.0, 0.05}) {
    for (std::size_t n = 1; n <= 9; ++n) {
      std::vector<Strategy> as, bs;
      const Mem1Batch batch = random_mixed_batch(n, eps, as, bs, rng);
      std::vector<BatchTotals> got(n);
      for (const bool force : {false, true}) {
        simd::set_force_scalar(force);
        expected_totals_mem1(batch, kPayoff, 200, got);
        for (std::size_t k = 0; k < n; ++k) {
          const GameResult want =
              markov::expected_game_mem1(as[k], bs[k], kPayoff, 200, eps);
          EXPECT_LT(rel_err(got[k].payoff_a, want.payoff_a), 1e-12)
              << "n=" << n << " k=" << k << " force_scalar=" << force;
          EXPECT_LT(rel_err(got[k].payoff_b, want.payoff_b), 1e-12)
              << "n=" << n << " k=" << k << " force_scalar=" << force;
        }
      }
      simd::set_force_scalar(false);
    }
  }
}

// The scalar fallback replicates markov::finite_totals_mem1
// operation-for-operation: payoffs must be bit-identical, not just close.
TEST(Mem1BatchKernel, ScalarKernelBitIdenticalToMarkov) {
  util::Xoshiro256 rng(7);
  std::vector<Strategy> as, bs;
  const Mem1Batch batch = random_mixed_batch(17, 0.01, as, bs, rng);
  std::vector<BatchTotals> got(batch.size());
  expected_totals_mem1_scalar(batch, kPayoff, 200, got.data());
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const GameResult want =
        markov::expected_game_mem1(as[k], bs[k], kPayoff, 200, 0.01);
    EXPECT_EQ(got[k].payoff_a, want.payoff_a) << "k=" << k;
    EXPECT_EQ(got[k].payoff_b, want.payoff_b) << "k=" << k;
  }
}

// Lane arithmetic is strictly vertical: a pair's result must not depend on
// its lane position or on the batch size. A batch of one must equal the
// same pair inside a batch of nine, bitwise, under the active kernel.
TEST(Mem1BatchKernel, LanePositionAndBatchSizeIndependent) {
  util::Xoshiro256 rng(99);
  std::vector<Strategy> as, bs;
  const Mem1Batch big = random_mixed_batch(9, 0.02, as, bs, rng);
  std::vector<BatchTotals> batched(9);
  expected_totals_mem1(big, kPayoff, 200, batched);
  for (std::size_t k = 0; k < 9; ++k) {
    Mem1Batch one;
    one.push_pair(as[k], bs[k], 0.02);
    std::vector<BatchTotals> solo(1);
    expected_totals_mem1(one, kPayoff, 200, solo);
    EXPECT_EQ(solo[0].payoff_a, batched[k].payoff_a) << "k=" << k;
    EXPECT_EQ(solo[0].payoff_b, batched[k].payoff_b) << "k=" << k;
    EXPECT_EQ(solo[0].coop_a, batched[k].coop_a) << "k=" << k;
    EXPECT_EQ(solo[0].coop_b, batched[k].coop_b) << "k=" << k;
  }
}

// AVX2 and scalar kernels must agree to 1e-12 relative (when the AVX2 TU
// is compiled in and the CPU supports it; trivially passes otherwise).
TEST(Mem1BatchKernel, Avx2AgreesWithScalarReference) {
  if (!simd::compiled_with_avx2() || !simd::cpu_supports_avx2()) {
    GTEST_SKIP() << "AVX2 kernel unavailable on this build/CPU";
  }
  util::Xoshiro256 rng(123);
  std::vector<Strategy> as, bs;
  const Mem1Batch batch = random_mixed_batch(33, 0.1, as, bs, rng);
  std::vector<BatchTotals> avx(batch.size()), sca(batch.size());
  expected_totals_mem1_avx2(batch, kPayoff, 200, avx.data());
  expected_totals_mem1_scalar(batch, kPayoff, 200, sca.data());
  for (std::size_t k = 0; k < batch.size(); ++k) {
    EXPECT_LT(rel_err(avx[k].payoff_a, sca[k].payoff_a), 1e-12) << "k=" << k;
    EXPECT_LT(rel_err(avx[k].payoff_b, sca[k].payoff_b), 1e-12) << "k=" << k;
    EXPECT_LT(rel_err(avx[k].coop_a, sca[k].coop_a), 1e-12) << "k=" << k;
    EXPECT_LT(rel_err(avx[k].coop_b, sca[k].coop_b), 1e-12) << "k=" << k;
  }
}

// The zero-allocation walker is a drop-in for markov::exact_pure_game:
// bitwise-identical results across memory depths and round counts,
// including rounds shorter than the transient.
TEST(PureWalker, ExactPureGameFastBitIdenticalToMarkov) {
  util::Xoshiro256 rng(5);
  for (const int memory : {0, 1, 2, 3, 4}) {
    for (const std::uint32_t rounds : {1u, 2u, 7u, 200u, 100000u}) {
      for (int rep = 0; rep < 8; ++rep) {
        const PureStrategy a = PureStrategy::random(memory, rng);
        const PureStrategy b = PureStrategy::random(memory, rng);
        const GameResult want = markov::exact_pure_game(a, b, kPayoff, rounds);
        const GameResult got = exact_pure_game_fast(a, b, kPayoff, rounds);
        ASSERT_EQ(got.payoff_a, want.payoff_a)
            << "memory=" << memory << " rounds=" << rounds;
        ASSERT_EQ(got.payoff_b, want.payoff_b);
        ASSERT_EQ(got.coop_a, want.coop_a);
        ASSERT_EQ(got.coop_b, want.coop_b);
        ASSERT_EQ(got.rounds, want.rounds);
      }
    }
  }
}

// run_pure_game must replicate the sequential round loop bit-for-bit. The
// LinearSearch engine still runs the legacy loop (no fast path), so it is
// the executable reference for the Indexed fast path.
TEST(PureWalker, RunPureGameMatchesLegacyRoundLoop) {
  util::Xoshiro256 rng(11);
  // Non-integral payoffs force the walker to replay every round.
  const PayoffMatrix fractional{2.5, -0.25, 4.125, 0.75};
  for (const PayoffMatrix& payoff : {kPayoff, fractional}) {
    const IpdParams params{payoff, 200, 0.0};
    for (const int memory : {1, 2, 3}) {
      const IpdEngine indexed(memory, params, LookupMode::Indexed);
      const IpdEngine linear(memory, params, LookupMode::LinearSearch);
      for (int rep = 0; rep < 16; ++rep) {
        const PureStrategy a = PureStrategy::random(memory, rng);
        const PureStrategy b = PureStrategy::random(memory, rng);
        const GameResult fast = indexed.play(a, b, util::StreamRng(0, 0));
        const GameResult loop = linear.play(a, b, util::StreamRng(0, 0));
        ASSERT_EQ(fast.payoff_a, loop.payoff_a) << "memory=" << memory;
        ASSERT_EQ(fast.payoff_b, loop.payoff_b);
        ASSERT_EQ(fast.coop_a, loop.coop_a);
        ASSERT_EQ(fast.coop_b, loop.coop_b);
      }
    }
  }
}

TEST(PureWalker, IntegerExactPayoffGate) {
  EXPECT_TRUE(integer_exact_payoff(kPayoff, 200));
  EXPECT_TRUE(integer_exact_payoff(PayoffMatrix{5, -1, 8, 0}, 1000000));
  EXPECT_FALSE(integer_exact_payoff(PayoffMatrix{2.5, 0, 4, 1}, 200));
  // Integral but too large: partial sums would leave the exact range.
  EXPECT_FALSE(integer_exact_payoff(PayoffMatrix{1e15, 0, 4, 1}, 1u << 20));
}

// Noisy games must keep the stochastic engine path (the walker consumes no
// RNG and would change trajectories): same seed same result, and the fast
// path only engages at noise == 0.
TEST(PureWalker, NoisyGamesKeepLegacyEnginePath) {
  const IpdParams noisy{kPayoff, 200, 0.1};
  const IpdEngine engine(2, noisy);
  util::Xoshiro256 rng(3);
  const PureStrategy a = PureStrategy::random(2, rng);
  const PureStrategy b = PureStrategy::random(2, rng);
  const GameResult r1 = engine.play(a, b, util::StreamRng(42, 7));
  const GameResult r2 = engine.play(a, b, util::StreamRng(42, 7));
  EXPECT_EQ(r1.payoff_a, r2.payoff_a);
  const GameResult other = engine.play(a, b, util::StreamRng(42, 8));
  // Different stream, (almost surely) different noise realization.
  EXPECT_EQ(r1.rounds, other.rounds);
}

}  // namespace
}  // namespace egt::game::batch
