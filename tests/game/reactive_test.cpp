#include "game/reactive.hpp"

#include <gtest/gtest.h>

#include "game/markov.hpp"
#include "util/rng.hpp"

namespace egt::game::reactive {
namespace {

const PayoffMatrix kPayoff = paper_payoff();

TEST(Reactive, Validity) {
  EXPECT_TRUE(is_valid({1.0, 0.5, 0.0}));
  EXPECT_FALSE(is_valid({1.0, 1.5, 0.0}));
  EXPECT_FALSE(is_valid({-0.1, 0.5, 0.0}));
}

TEST(Reactive, ToMemoryOneIgnoresOwnMove) {
  const auto m = to_memory_one({1.0, 0.8, 0.3});
  EXPECT_DOUBLE_EQ(m.coop_prob(0), 0.8);  // (C,C): opp cooperated
  EXPECT_DOUBLE_EQ(m.coop_prob(2), 0.8);  // (D,C): same
  EXPECT_DOUBLE_EQ(m.coop_prob(1), 0.3);  // (C,D): opp defected
  EXPECT_DOUBLE_EQ(m.coop_prob(3), 0.3);  // (D,D): same
}

TEST(Reactive, AllCAndAllDFixedPoints) {
  const auto cc = stationary_cooperation(all_c(), all_c());
  EXPECT_DOUBLE_EQ(cc.c1, 1.0);
  EXPECT_DOUBLE_EQ(cc.c2, 1.0);
  const auto dd = stationary_cooperation(all_d(), all_d());
  EXPECT_DOUBLE_EQ(dd.c1, 0.0);
  EXPECT_DOUBLE_EQ(dd.c2, 0.0);
  EXPECT_DOUBLE_EQ(stationary_payoff(all_c(), all_c(), kPayoff), 3.0);
  EXPECT_DOUBLE_EQ(stationary_payoff(all_d(), all_d(), kPayoff), 1.0);
}

TEST(Reactive, ExploitationPair) {
  const auto c = stationary_cooperation(all_d(), all_c());
  EXPECT_DOUBLE_EQ(c.c1, 0.0);
  EXPECT_DOUBLE_EQ(c.c2, 1.0);
  EXPECT_DOUBLE_EQ(stationary_payoff(all_d(), all_c(), kPayoff), 4.0);
  EXPECT_DOUBLE_EQ(stationary_payoff(all_c(), all_d(), kPayoff), 0.0);
}

TEST(Reactive, TftVersusTftIsDegenerate) {
  // Two deterministic echoes: the closed form's denominator vanishes.
  EXPECT_THROW((void)stationary_cooperation(tft(), tft()),
               std::invalid_argument);
}

TEST(Reactive, GtftOptimalGenerosityIsOneThirdForPaperPayoffs) {
  // min(1 - (4-3)/(3-0), (3-1)/(4-1)) = min(2/3, 2/3) = 2/3?  No:
  // 1 - 1/3 = 2/3 and 2/3 — the paper payoffs give 2/3 for both terms.
  EXPECT_NEAR(gtft_optimal_generosity(paper_payoff()), 2.0 / 3.0, 1e-12);
  // Axelrod's [3,0,5,1]: min(1 - 2/3, 2/4) = 1/3 — the familiar GTFT 1/3.
  EXPECT_NEAR(gtft_optimal_generosity(axelrod_payoff()), 1.0 / 3.0, 1e-12);
}

TEST(Reactive, ClosedFormMatchesMarkovStationary) {
  // The closed form must agree with the general 4-state chain analysis.
  util::Xoshiro256 rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    const ReactiveStrategy a{1.0, 0.05 + 0.9 * util::uniform01(rng),
                             0.05 + 0.9 * util::uniform01(rng)};
    const ReactiveStrategy b{1.0, 0.05 + 0.9 * util::uniform01(rng),
                             0.05 + 0.9 * util::uniform01(rng)};
    const auto closed = stationary_cooperation(a, b);
    const auto chain = markov::stationary_mem1(
        Strategy(to_memory_one(a)), Strategy(to_memory_one(b)), kPayoff, 0.0);
    ASSERT_NEAR(closed.c1, chain.coop_a, 1e-9);
    ASSERT_NEAR(closed.c2, chain.coop_b, 1e-9);
    ASSERT_NEAR(stationary_payoff(a, b, kPayoff), chain.payoff_a, 1e-9);
  }
}

TEST(Reactive, GtftForgivenessSustainsCooperationAgainstItself) {
  const auto g = gtft(kPayoff);
  const auto c = stationary_cooperation(g, g);
  EXPECT_DOUBLE_EQ(c.c1, 1.0);  // p = 1 makes full cooperation absorbing
  EXPECT_DOUBLE_EQ(stationary_payoff(g, g, kPayoff), 3.0);
}

TEST(Reactive, GenerosityTradesExploitationForStability) {
  // Against ALLD, generosity is costly: GTFT earns less than TFT would.
  const auto g = gtft(kPayoff);
  const double vs_alld = stationary_payoff(g, all_d(), kPayoff);
  EXPECT_LT(vs_alld, 1.0);  // pays the sucker cost q* of the time
  EXPECT_GT(vs_alld, 0.0);
}

}  // namespace
}  // namespace egt::game::reactive
