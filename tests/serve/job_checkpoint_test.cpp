// The preemption/resume unit: a job checkpointed mid-run and resumed
// through the Engine block-restore path must finish bit-identical to an
// undisturbed run — strategy table, fitness doubles, AND the accumulated
// engine.* counters (the property plain core checkpoints cannot give,
// since their restore pays a fresh initialization pass).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/engine.hpp"
#include "core/trace.hpp"
#include "obs/metrics.hpp"
#include "serve/job_checkpoint.hpp"

namespace egt::serve {
namespace {

core::SimConfig small_config(core::FitnessMode mode) {
  core::SimConfig cfg;
  cfg.ssets = 10;
  cfg.memory = 1;
  cfg.generations = 30;
  cfg.pc_rate = 0.4;
  cfg.mutation_rate = 0.2;
  cfg.seed = 20260808;
  cfg.fitness_mode = mode;
  return cfg;
}

EngineCounters counters_of(const obs::MetricsRegistry& reg) {
  const obs::MetricsSnapshot s = reg.snapshot();
  EngineCounters c;
  c.generations = s.counter_value("engine.generations");
  c.pc_events = s.counter_value("engine.pc_events");
  c.adoptions = s.counter_value("engine.adoptions");
  c.moran_events = s.counter_value("engine.moran_events");
  c.mutations = s.counter_value("engine.mutations");
  c.pairs_evaluated = s.counter_value("engine.pairs_evaluated");
  c.games_played = s.counter_value("engine.games_played");
  return c;
}

class JobCheckpointModes
    : public ::testing::TestWithParam<core::FitnessMode> {};

TEST_P(JobCheckpointModes, ResumeIsBitIdenticalIncludingCounters) {
  const core::SimConfig cfg = small_config(GetParam());

  // Oracle: one undisturbed run.
  obs::MetricsRegistry oracle_reg;
  core::Engine oracle(cfg, &oracle_reg);
  oracle.run(cfg.generations);
  const EngineCounters want_counters = counters_of(oracle_reg);

  // Interrupted run: stop mid-way, capture, encode/decode, resume.
  obs::MetricsRegistry first_reg;
  core::Engine first(cfg, &first_reg);
  const std::uint64_t cut = cfg.generations / 2;
  while (first.generation() < cut) first.step();
  const JobCheckpoint captured = capture_job_checkpoint(
      first, counters_of(first_reg), /*attempts=*/1, /*preemptions=*/1);
  const std::vector<std::byte> blob = encode_job_checkpoint(captured);

  JobCheckpoint decoded = decode_job_checkpoint(blob);
  EXPECT_EQ(decoded.attempts, 1u);
  EXPECT_EQ(decoded.preemptions, 1u);
  const EngineCounters base = decoded.counters;
  obs::MetricsRegistry resumed_reg;
  core::Engine resumed =
      resume_job_engine(cfg, std::move(decoded), &resumed_reg);
  EXPECT_EQ(resumed.generation(), cut);
  while (resumed.generation() < cfg.generations) resumed.step();

  EXPECT_EQ(resumed.population().table_hash(),
            oracle.population().table_hash());
  const auto got_fit = resumed.population().fitness();
  const auto want_fit = oracle.population().fitness();
  ASSERT_EQ(got_fit.size(), want_fit.size());
  EXPECT_EQ(std::memcmp(got_fit.data(), want_fit.data(),
                        got_fit.size() * sizeof(double)),
            0);
  EXPECT_EQ(core::hash_fitness(got_fit), core::hash_fitness(want_fit));

  // The headline property: base (saved) + resumed growth == undisturbed.
  const EngineCounters total = counters_add(base, counters_of(resumed_reg));
  EXPECT_TRUE(counters_equal(total, want_counters))
      << "pairs " << total.pairs_evaluated << " vs "
      << want_counters.pairs_evaluated << ", games " << total.games_played
      << " vs " << want_counters.games_played;
}

INSTANTIATE_TEST_SUITE_P(AllFitnessModes, JobCheckpointModes,
                         ::testing::Values(core::FitnessMode::Sampled,
                                           core::FitnessMode::SampledFrozen,
                                           core::FitnessMode::Analytic));

TEST(JobCheckpoint, DamageIsRejectedNotMisread) {
  const core::SimConfig cfg = small_config(core::FitnessMode::Analytic);
  obs::MetricsRegistry reg;
  core::Engine engine(cfg, &reg);
  while (engine.generation() < 5) engine.step();
  std::vector<std::byte> blob = encode_job_checkpoint(
      capture_job_checkpoint(engine, counters_of(reg), 1, 0));

  // Magic damage.
  std::vector<std::byte> bad = blob;
  bad[0] ^= std::byte{0xff};
  EXPECT_THROW(decode_job_checkpoint(bad), core::CheckpointError);
  // Truncation.
  std::vector<std::byte> cut(blob.begin(), blob.begin() + 40);
  EXPECT_THROW(decode_job_checkpoint(cut), core::CheckpointError);
  // Trailing garbage.
  std::vector<std::byte> extra = blob;
  extra.push_back(std::byte{0x42});
  EXPECT_THROW(decode_job_checkpoint(extra), core::CheckpointError);
}

TEST(JobCheckpoint, ResumeValidatesTheConfigFingerprint) {
  const core::SimConfig cfg = small_config(core::FitnessMode::Sampled);
  obs::MetricsRegistry reg;
  core::Engine engine(cfg, &reg);
  while (engine.generation() < 5) engine.step();
  JobCheckpoint ckpt =
      capture_job_checkpoint(engine, counters_of(reg), 1, 0);
  core::SimConfig other = cfg;
  other.seed += 1;
  EXPECT_THROW(resume_job_engine(other, std::move(ckpt), nullptr),
               core::CheckpointError);
}

}  // namespace
}  // namespace egt::serve
