// Journal recovery property tests (the egt.jobs/v1 crash contract):
// whatever a crash or bit rot does to the file, replay never loses a
// record acknowledged before the damage, never invents a record, and
// never reports a completed job it cannot prove (CRC-intact) — the two
// scheduler invariants "no acknowledged job lost" and "no completed job
// run twice" reduce to exactly these.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "serve/journal.hpp"

namespace egt::serve {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("egt_journal_test_" + tag + "_" +
               std::to_string(
                   ::testing::UnitTest::GetInstance()->random_seed()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string wal() const { return (path_ / "jobs.wal").string(); }

 private:
  fs::path path_;
};

JournalRecord submitted(std::uint64_t id, const std::string& tenant) {
  JournalRecord rec;
  rec.type = JournalRecord::Type::Submitted;
  rec.job_id = id;
  rec.tenant = tenant;
  rec.spec_json = "{\"schema\":\"egt.job/v1\",\"tenant\":\"" + tenant + "\"}";
  return rec;
}

JournalRecord completed(std::uint64_t id) {
  JournalRecord rec;
  rec.type = JournalRecord::Type::Completed;
  rec.job_id = id;
  rec.result.generations = 100 + id;
  rec.result.table_hash = 0xdeadbeef00ull + id;
  rec.result.fitness_hash = 0xfeed0000ull + id;
  rec.result.fitness = {1.5, -2.25, 3.125 + static_cast<double>(id)};
  rec.result.counters.generations = 100 + id;
  rec.result.counters.adoptions = 7;
  rec.result.counters.pairs_evaluated = 12345;
  rec.result.counters.games_played = 777;
  rec.result.attempts = 2;
  rec.result.preemptions = 1;
  return rec;
}

JournalRecord failed(std::uint64_t id) {
  JournalRecord rec;
  rec.type = JournalRecord::Type::Failed;
  rec.job_id = id;
  rec.reason = "deadline expired";
  return rec;
}

bool records_equal(const JournalRecord& a, const JournalRecord& b) {
  return a.type == b.type && a.job_id == b.job_id && a.tenant == b.tenant &&
         a.spec_json == b.spec_json && a.reason == b.reason &&
         a.result.generations == b.result.generations &&
         a.result.table_hash == b.result.table_hash &&
         a.result.fitness_hash == b.result.fitness_hash &&
         a.result.fitness == b.result.fitness &&
         counters_equal(a.result.counters, b.result.counters) &&
         a.result.attempts == b.result.attempts &&
         a.result.preemptions == b.result.preemptions;
}

std::vector<JournalRecord> sample_records() {
  std::vector<JournalRecord> recs;
  recs.push_back(submitted(1, "alice"));
  recs.push_back(submitted(2, "bob"));
  recs.push_back(completed(1));
  recs.push_back(failed(2));
  JournalRecord cancel;
  cancel.type = JournalRecord::Type::Cancelled;
  cancel.job_id = 3;
  recs.push_back(submitted(3, "carol"));
  recs.push_back(cancel);
  return recs;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(JournalRecord, EveryTypeRoundTrips) {
  for (const JournalRecord& rec : sample_records()) {
    const JournalRecord back = decode_record(encode_record(rec));
    EXPECT_TRUE(records_equal(rec, back));
  }
}

TEST(JobJournal, AppendThenReplayReturnsEverythingInOrder) {
  TempDir dir("append");
  const auto recs = sample_records();
  {
    JobJournal journal(dir.wal());
    for (const auto& rec : recs) journal.append(rec);
  }
  const auto replay = JobJournal::replay(dir.wal());
  EXPECT_FALSE(replay.missing);
  EXPECT_FALSE(replay.truncated_tail);
  EXPECT_EQ(replay.corrupt_skipped, 0u);
  ASSERT_EQ(replay.records.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_TRUE(records_equal(recs[i], replay.records[i])) << "record " << i;
  }
}

TEST(JobJournal, ReopeningAppendsAfterExistingRecords) {
  TempDir dir("reopen");
  {
    JobJournal journal(dir.wal());
    journal.append(submitted(1, "alice"));
  }
  {
    JobJournal journal(dir.wal());
    journal.append(completed(1));
  }
  const auto replay = JobJournal::replay(dir.wal());
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[1].type, JournalRecord::Type::Completed);
}

TEST(JobJournal, MissingFileIsEmptyNotAnError) {
  TempDir dir("missing");
  const auto replay = JobJournal::replay(dir.wal());
  EXPECT_TRUE(replay.missing);
  EXPECT_TRUE(replay.records.empty());
}

// The crash-mid-append property: truncate the file at EVERY possible
// length. The replay must recover exactly the records whose final byte
// made it to disk — a strict prefix, in order, with nothing invented.
TEST(JobJournal, TruncationAtEveryLengthYieldsAnIntactPrefix) {
  TempDir dir("truncate");
  const auto recs = sample_records();
  {
    JobJournal journal(dir.wal());
    for (const auto& rec : recs) journal.append(rec);
  }
  const std::vector<char> full = read_file(dir.wal());

  // Record boundaries: header, then cumulative framed lengths.
  std::vector<std::size_t> boundaries{kJournalHeaderBytes};
  for (const auto& rec : recs) {
    boundaries.push_back(boundaries.back() + frame_record(rec).size());
  }
  ASSERT_EQ(boundaries.back(), full.size());

  for (std::size_t len = 0; len <= full.size(); ++len) {
    write_file(dir.wal(), std::vector<char>(full.begin(),
                                            full.begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    len)));
    const auto replay = JobJournal::replay(dir.wal());
    // How many records end at or before this length?
    std::size_t expect = 0;
    while (expect + 1 < boundaries.size() && boundaries[expect + 1] <= len) {
      ++expect;
    }
    ASSERT_EQ(replay.records.size(), expect) << "length " << len;
    for (std::size_t i = 0; i < expect; ++i) {
      EXPECT_TRUE(records_equal(recs[i], replay.records[i]))
          << "length " << len << " record " << i;
    }
    const bool cut_mid_record = len != boundaries.back() &&
                                len != boundaries[expect] &&
                                len > kJournalHeaderBytes;
    if (cut_mid_record) {
      EXPECT_TRUE(replay.truncated_tail) << "length " << len;
    }
  }
}

// The bit-rot property: flip every single byte of the file in turn. The
// replay must never crash, never return a record that was not appended,
// and must keep every record whose bytes were untouched outside the
// damaged one (resync-on-magic): at most two records may be lost per flip
// (the damaged record, plus its successor when the flip forges a fake
// frame whose length swallows it).
TEST(JobJournal, BitFlipAtEveryPositionNeverInventsRecords) {
  TempDir dir("bitflip");
  const auto recs = sample_records();
  {
    JobJournal journal(dir.wal());
    for (const auto& rec : recs) journal.append(rec);
  }
  const std::vector<char> full = read_file(dir.wal());

  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    std::vector<char> damaged = full;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x40);
    write_file(dir.wal(), damaged);
    const auto replay = JobJournal::replay(dir.wal());
    // Every recovered record must be one of the originals, in order
    // (subsequence check) — CRC + decode validation forbid inventions.
    std::size_t cursor = 0;
    for (const auto& got : replay.records) {
      while (cursor < recs.size() && !records_equal(recs[cursor], got)) {
        ++cursor;
      }
      ASSERT_LT(cursor, recs.size())
          << "flip at " << pos << " produced a record never appended";
      ++cursor;
    }
    if (pos < kJournalHeaderBytes) {
      // A damaged header makes the file a non-journal: nothing recovered,
      // but loudly (corrupt_skipped), never a misparse.
      EXPECT_TRUE(replay.records.empty());
      EXPECT_GT(replay.corrupt_skipped, 0u);
      continue;
    }
    EXPECT_GE(replay.records.size() + 2, recs.size()) << "flip at " << pos;
    if (replay.records.size() < recs.size()) {
      EXPECT_TRUE(replay.corrupt_skipped > 0 || replay.truncated_tail)
          << "flip at " << pos << " lost records silently";
    }
  }
}

TEST(JobJournal, OversizedLengthFieldIsDamageNotAnAllocation) {
  TempDir dir("oversize");
  {
    JobJournal journal(dir.wal());
    journal.append(submitted(1, "alice"));
    journal.append(completed(1));
  }
  // Forge a frame announcing a ludicrous payload length after record 1.
  std::vector<char> bytes = read_file(dir.wal());
  const std::size_t rec1_end =
      kJournalHeaderBytes + frame_record(submitted(1, "alice")).size();
  const std::uint32_t magic = kRecordMagic;
  const std::uint32_t huge = kMaxRecordBytes + 1;
  std::vector<char> forged(bytes.begin(),
                           bytes.begin() + static_cast<std::ptrdiff_t>(rec1_end));
  forged.insert(forged.end(), reinterpret_cast<const char*>(&magic),
                reinterpret_cast<const char*>(&magic) + 4);
  forged.insert(forged.end(), reinterpret_cast<const char*>(&huge),
                reinterpret_cast<const char*>(&huge) + 4);
  forged.insert(forged.end(), bytes.begin() + static_cast<std::ptrdiff_t>(rec1_end),
                bytes.end());
  write_file(dir.wal(), forged);
  const auto replay = JobJournal::replay(dir.wal());
  ASSERT_EQ(replay.records.size(), 2u);  // resynced past the forgery
  EXPECT_GT(replay.corrupt_skipped, 0u);
}

TEST(JobJournal, ForeignFileRecoversNothing) {
  TempDir dir("foreign");
  write_file(dir.wal(), {'n', 'o', 't', ' ', 'a', ' ', 'w', 'a', 'l', '!',
                         '!', '!', '!', '!'});
  const auto replay = JobJournal::replay(dir.wal());
  EXPECT_TRUE(replay.records.empty());
  EXPECT_GT(replay.corrupt_skipped, 0u);
}

TEST(JobJournal, CompactionRewritesExactlyTheGivenRecords) {
  TempDir dir("compact");
  {
    JobJournal journal(dir.wal());
    for (const auto& rec : sample_records()) journal.append(rec);
  }
  std::vector<JournalRecord> keep{submitted(1, "alice"), completed(1)};
  JobJournal::compact(dir.wal(), keep);
  const auto replay = JobJournal::replay(dir.wal());
  EXPECT_EQ(replay.corrupt_skipped, 0u);
  ASSERT_EQ(replay.records.size(), keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    EXPECT_TRUE(records_equal(keep[i], replay.records[i]));
  }
  // And the compacted file accepts further appends.
  {
    JobJournal journal(dir.wal());
    journal.append(failed(1));
  }
  EXPECT_EQ(JobJournal::replay(dir.wal()).records.size(), 3u);
}

}  // namespace
}  // namespace egt::serve
