// The chaos soak as a regression test: for a handful of fixed seeds, run
// the full seeded schedule — worker kills, deadline expiries, preemption
// slices, a torn journal tail, and a hard daemon stop mid-flight — and
// require every completed job to be bit-identical to an undisturbed
// serial run, with no acknowledged job lost and no completed job re-run.
// Wider sweeps live in tools/egtd_soak (CI runs them nightly-style).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "serve/chaos.hpp"

namespace egt::serve {
namespace {

namespace fs = std::filesystem;

class ServeChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ServeChaos, SeededScheduleSurvivesBitIdentical) {
  const std::uint64_t seed = GetParam();
  const fs::path dir =
      fs::temp_directory_path() /
      ("egt_serve_chaos_test_" + std::to_string(seed) + "_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);
  const ServeChaosOutcome out = run_serve_schedule(seed, dir.string());
  EXPECT_TRUE(out.ok) << "seed " << seed << ": " << out.detail;
  EXPECT_GT(out.completed, 0u) << "seed " << seed;
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, ServeChaos,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(ServeChaosSchedule, IsAPureFunctionOfTheSeed) {
  const ServeChaosSchedule a = make_serve_schedule(17);
  const ServeChaosSchedule b = make_serve_schedule(17);
  EXPECT_EQ(a.summary, b.summary);
  EXPECT_EQ(a.specs, b.specs);
  EXPECT_EQ(a.stop_after_completed, b.stop_after_completed);
  EXPECT_EQ(a.tear_journal_tail, b.tear_journal_tail);
  const ServeChaosSchedule c = make_serve_schedule(18);
  EXPECT_NE(a.summary, c.summary);
}

}  // namespace
}  // namespace egt::serve
