// Per-job metrics isolation (satellite S3): two jobs running concurrently
// on the shared worker pool must each report counters identical to a solo
// serial run — nothing bleeds between jobs through a shared registry, and
// BlockFitness's fitness.* instruments land in the registry the job was
// given, not a global one.
#include <gtest/gtest.h>

#include <string>

#include "core/engine.hpp"
#include "obs/metrics.hpp"
#include "serve/jobspec.hpp"
#include "serve/scheduler.hpp"

namespace egt::serve {
namespace {

core::SimConfig tiny_config(std::uint64_t seed, core::FitnessMode mode) {
  core::SimConfig cfg;
  cfg.ssets = 8;
  cfg.memory = 1;
  cfg.generations = 15;
  cfg.pc_rate = 0.4;
  cfg.mutation_rate = 0.2;
  cfg.seed = seed;
  cfg.fitness_mode = mode;
  return cfg;
}

EngineCounters serial_counters(const core::SimConfig& cfg) {
  obs::MetricsRegistry reg;
  core::Engine engine(cfg, &reg);
  engine.run(cfg.generations);
  const obs::MetricsSnapshot s = reg.snapshot();
  EngineCounters c;
  c.generations = s.counter_value("engine.generations");
  c.pc_events = s.counter_value("engine.pc_events");
  c.adoptions = s.counter_value("engine.adoptions");
  c.moran_events = s.counter_value("engine.moran_events");
  c.mutations = s.counter_value("engine.mutations");
  c.pairs_evaluated = s.counter_value("engine.pairs_evaluated");
  c.games_played = s.counter_value("engine.games_played");
  return c;
}

TEST(MetricsIsolation, ConcurrentJobsReportSoloRunCounters) {
  // Deliberately different workloads so cross-talk cannot cancel out:
  // different seeds, sizes and fitness modes.
  const core::SimConfig cfg_a = tiny_config(101, core::FitnessMode::Sampled);
  core::SimConfig cfg_b = tiny_config(202, core::FitnessMode::Analytic);
  cfg_b.ssets = 12;
  cfg_b.generations = 22;

  JobSpec spec_a;
  spec_a.tenant = "alice";
  spec_a.config = cfg_a;
  JobSpec spec_b;
  spec_b.tenant = "bob";
  spec_b.config = cfg_b;

  SchedulerOptions opts;
  opts.workers = 2;  // genuinely concurrent
  Scheduler sched(opts);
  sched.start();
  ASSERT_TRUE(sched.submit(job_spec_to_json(spec_a)).accepted);
  ASSERT_TRUE(sched.submit(job_spec_to_json(spec_b)).accepted);
  sched.drain();
  ASSERT_EQ(sched.state(1), JobState::Completed);
  ASSERT_EQ(sched.state(2), JobState::Completed);

  EXPECT_TRUE(counters_equal(sched.result(1)->counters,
                             serial_counters(cfg_a)))
      << "job 1 counters polluted by the concurrent job";
  EXPECT_TRUE(counters_equal(sched.result(2)->counters,
                             serial_counters(cfg_b)))
      << "job 2 counters polluted by the concurrent job";
  sched.shutdown();
}

TEST(MetricsIsolation, BlockFitnessInstrumentsLandInThePassedRegistry) {
  // Analytic mode with dedup exercises the fitness.* counters; they must
  // appear in the per-job registry handed to the Engine.
  core::SimConfig cfg = tiny_config(303, core::FitnessMode::Analytic);
  ASSERT_TRUE(cfg.dedup);
  obs::MetricsRegistry reg;
  core::Engine engine(cfg, &reg);
  engine.run(cfg.generations);
  const obs::MetricsSnapshot s = reg.snapshot();
  EXPECT_GT(s.counter_value("fitness.cache_inserts"), 0u);
  // And a fresh registry starts at zero — no process-global accumulation.
  obs::MetricsRegistry fresh;
  EXPECT_EQ(fresh.snapshot().counter_value("fitness.cache_inserts"), 0u);
}

}  // namespace
}  // namespace egt::serve
