// Scheduler semantics: admission control and load shedding, fair-share
// dispatch, watchdog/kill retries with bounded attempts, checkpoint-based
// preemption exactness, and journal-backed restart (no acknowledged job
// lost, no completed job run twice).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "obs/metrics.hpp"
#include "serve/jobspec.hpp"
#include "serve/journal.hpp"
#include "serve/scheduler.hpp"

namespace egt::serve {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("egt_sched_test_" + tag + "_" +
               std::to_string(
                   ::testing::UnitTest::GetInstance()->random_seed()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::string spec_json(const std::string& tenant, std::uint64_t seed,
                      std::uint64_t generations = 20) {
  JobSpec spec;
  spec.tenant = tenant;
  spec.config.ssets = 8;
  spec.config.memory = 1;
  spec.config.generations = generations;
  spec.config.pc_rate = 0.4;
  spec.config.mutation_rate = 0.2;
  spec.config.seed = seed;
  spec.config.fitness_mode = core::FitnessMode::Sampled;
  return job_spec_to_json(spec);
}

JobResult serial_oracle(const std::string& spec_json_text) {
  const JobSpec spec = parse_job_spec(spec_json_text);
  obs::MetricsRegistry reg;
  core::Engine engine(spec.config, &reg);
  engine.run(spec.config.generations);
  JobResult res;
  res.generations = engine.generation();
  res.table_hash = engine.population().table_hash();
  const auto fit = engine.population().fitness();
  res.fitness.assign(fit.begin(), fit.end());
  const obs::MetricsSnapshot s = reg.snapshot();
  res.counters.generations = s.counter_value("engine.generations");
  res.counters.pc_events = s.counter_value("engine.pc_events");
  res.counters.adoptions = s.counter_value("engine.adoptions");
  res.counters.moran_events = s.counter_value("engine.moran_events");
  res.counters.mutations = s.counter_value("engine.mutations");
  res.counters.pairs_evaluated = s.counter_value("engine.pairs_evaluated");
  res.counters.games_played = s.counter_value("engine.games_played");
  return res;
}

void expect_matches_oracle(const JobResult& got, const std::string& spec) {
  const JobResult want = serial_oracle(spec);
  EXPECT_EQ(got.table_hash, want.table_hash);
  ASSERT_EQ(got.fitness.size(), want.fitness.size());
  EXPECT_EQ(std::memcmp(got.fitness.data(), want.fitness.data(),
                        got.fitness.size() * sizeof(double)),
            0);
  EXPECT_TRUE(counters_equal(got.counters, want.counters))
      << got.counters.pairs_evaluated << " vs "
      << want.counters.pairs_evaluated;
}

/// Collects events under its own lock (the sink contract forbids calling
/// back into the scheduler).
struct EventLog {
  std::mutex mu;
  std::vector<JobEvent> events;
  void operator()(const JobEvent& ev) {
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(ev);
  }
  std::vector<JobEvent> kind(JobEvent::Kind k) {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<JobEvent> out;
    for (const auto& ev : events) {
      if (ev.kind == k) out.push_back(ev);
    }
    return out;
  }
};

TEST(Scheduler, CompletesAJobBitIdenticalToSerial) {
  SchedulerOptions opts;  // ephemeral: no data dir
  Scheduler sched(opts);
  sched.start();
  const std::string spec = spec_json("alice", 42);
  const SubmitOutcome out = sched.submit(spec);
  ASSERT_TRUE(out.accepted);
  sched.drain();
  ASSERT_EQ(sched.state(out.job_id), JobState::Completed);
  expect_matches_oracle(*sched.result(out.job_id), spec);
  sched.shutdown();
}

TEST(Scheduler, InvalidSpecsAreRejectedWithTheReason) {
  Scheduler sched(SchedulerOptions{});
  EXPECT_FALSE(sched.submit("this is not json").accepted);
  const SubmitOutcome bad_game =
      sched.submit("{\"game\": \"no_such_game\"}");
  EXPECT_FALSE(bad_game.accepted);
  EXPECT_NE(bad_game.rejected.find("invalid"), std::string::npos);
  const SubmitOutcome bad_schema =
      sched.submit("{\"schema\": \"egt.other/v9\"}");
  EXPECT_FALSE(bad_schema.accepted);
}

TEST(Scheduler, AdmissionBoundLoadShedsBeforeJournaling) {
  TempDir dir("admission");
  SchedulerOptions opts;
  opts.queue_capacity = 2;
  opts.data_dir = dir.str();
  {
    Scheduler sched(opts);  // not started: jobs stay queued
    EXPECT_TRUE(sched.submit(spec_json("a", 1)).accepted);
    EXPECT_TRUE(sched.submit(spec_json("a", 2)).accepted);
    const SubmitOutcome shed = sched.submit(spec_json("a", 3));
    EXPECT_FALSE(shed.accepted);
    EXPECT_EQ(shed.rejected, "capacity");
  }
  // The shed job left no replay debt: only the two accepted Submitted
  // records are journaled.
  const auto replay = JobJournal::replay(dir.str() + "/jobs.wal");
  EXPECT_EQ(replay.records.size(), 2u);
}

TEST(Scheduler, KilledAttemptsRetryAndStayBitIdentical) {
  SchedulerOptions opts;
  opts.backoff_base_seconds = 0.001;
  Scheduler sched(opts);
  EventLog log;
  sched.set_event_sink(std::ref(log));
  // Kill the first dispatch of job 1 at generation 5, once.
  std::mutex mu;
  bool fired = false;
  sched.set_fault_hook([&](std::uint64_t id, std::uint64_t gen) {
    std::lock_guard<std::mutex> lock(mu);
    if (id == 1 && gen == 5 && !fired) {
      fired = true;
      return Scheduler::FaultAction::Kill;
    }
    return Scheduler::FaultAction::None;
  });
  sched.start();
  const std::string spec = spec_json("alice", 7);
  ASSERT_TRUE(sched.submit(spec).accepted);
  sched.drain();
  ASSERT_EQ(sched.state(1), JobState::Completed);
  const JobResult res = *sched.result(1);
  EXPECT_EQ(res.attempts, 2u);  // the kill cost one dispatch
  expect_matches_oracle(res, spec);
  EXPECT_EQ(log.kind(JobEvent::Kind::Retrying).size(), 1u);
  sched.shutdown();
}

TEST(Scheduler, AttemptsExhaustedTurnsTheJobFailedLoudly) {
  SchedulerOptions opts;
  opts.max_attempts = 3;
  opts.backoff_base_seconds = 0.001;
  Scheduler sched(opts);
  EventLog log;
  sched.set_event_sink(std::ref(log));
  sched.set_fault_hook([](std::uint64_t, std::uint64_t) {
    return Scheduler::FaultAction::Expire;  // every attempt dies
  });
  sched.start();
  ASSERT_TRUE(sched.submit(spec_json("alice", 9)).accepted);
  sched.drain();
  ASSERT_EQ(sched.state(1), JobState::Failed);
  EXPECT_FALSE(sched.result(1).has_value());
  const auto failed = log.kind(JobEvent::Kind::Failed);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_NE(failed[0].detail.find("deadline"), std::string::npos);
  // Exactly max_attempts dispatches, two of them retries.
  EXPECT_EQ(log.kind(JobEvent::Kind::Started).size(), 3u);
  EXPECT_EQ(log.kind(JobEvent::Kind::Retrying).size(), 2u);
  sched.shutdown();
}

TEST(Scheduler, PreemptionIsExactAndFairAcrossTenants) {
  TempDir dir("preempt");
  SchedulerOptions opts;
  opts.workers = 1;
  opts.slice_generations = 4;
  opts.data_dir = dir.str();
  Scheduler sched(opts);
  EventLog log;
  sched.set_event_sink(std::ref(log));
  // Submit before start so dispatch order is pure fair-share.
  const std::string a1 = spec_json("alice", 11, 24);
  const std::string a2 = spec_json("alice", 12, 24);
  const std::string b1 = spec_json("bob", 13, 24);
  ASSERT_TRUE(sched.submit(a1).accepted);   // job 1
  ASSERT_TRUE(sched.submit(a2).accepted);   // job 2
  ASSERT_TRUE(sched.submit(b1).accepted);   // job 3
  sched.start();
  sched.drain();
  for (std::uint64_t id = 1; id <= 3; ++id) {
    ASSERT_EQ(sched.state(id), JobState::Completed) << "job " << id;
  }
  // Preempted-and-resumed jobs finish bit-identical to undisturbed runs.
  expect_matches_oracle(*sched.result(1), a1);
  expect_matches_oracle(*sched.result(2), a2);
  expect_matches_oracle(*sched.result(3), b1);
  EXPECT_FALSE(log.kind(JobEvent::Kind::Preempted).empty());
  // Fair share: the single worker starts alice's first job, but bob (zero
  // generations served) must be dispatched before alice's second.
  const auto started = log.kind(JobEvent::Kind::Started);
  ASSERT_GE(started.size(), 2u);
  EXPECT_EQ(started[0].job_id, 1u);
  EXPECT_EQ(started[1].job_id, 3u);
  sched.shutdown();
}

TEST(Scheduler, CancelQueuedJobIsTerminalAndJournaled) {
  TempDir dir("cancel");
  SchedulerOptions opts;
  opts.data_dir = dir.str();
  {
    Scheduler sched(opts);  // not started: job 1 stays queued
    ASSERT_TRUE(sched.submit(spec_json("alice", 21)).accepted);
    EXPECT_TRUE(sched.cancel(1));
    EXPECT_EQ(sched.state(1), JobState::Cancelled);
    EXPECT_FALSE(sched.cancel(1));  // already terminal
    EXPECT_FALSE(sched.cancel(99));
  }
  Scheduler restarted(opts);
  restarted.recover();
  EXPECT_EQ(restarted.state(1), JobState::Cancelled);
}

TEST(Scheduler, RestartReplaysResultsWithoutRerunning) {
  TempDir dir("restart");
  SchedulerOptions opts;
  opts.data_dir = dir.str();
  const std::string spec = spec_json("alice", 33);
  JobResult first_result;
  {
    Scheduler sched(opts);
    sched.start();
    ASSERT_TRUE(sched.submit(spec).accepted);
    sched.drain();
    first_result = *sched.result(1);
    sched.shutdown();
  }
  Scheduler sched(opts);
  EventLog log;
  sched.set_event_sink(std::ref(log));
  const auto rep = sched.recover();
  EXPECT_EQ(rep.completed, 1u);
  EXPECT_EQ(rep.requeued, 0u);
  sched.start();
  sched.drain();
  sched.shutdown();
  // Never dispatched again; the journal-replayed result is bit-identical.
  EXPECT_TRUE(log.kind(JobEvent::Kind::Started).empty());
  ASSERT_EQ(sched.state(1), JobState::Completed);
  const JobResult replayed = *sched.result(1);
  EXPECT_EQ(replayed.table_hash, first_result.table_hash);
  EXPECT_EQ(std::memcmp(replayed.fitness.data(), first_result.fitness.data(),
                        replayed.fitness.size() * sizeof(double)),
            0);
  EXPECT_TRUE(counters_equal(replayed.counters, first_result.counters));
  expect_matches_oracle(replayed, spec);
}

TEST(Scheduler, GracefulShutdownParksUnfinishedWorkForTheNextRun) {
  TempDir dir("graceful");
  SchedulerOptions opts;
  opts.data_dir = dir.str();
  opts.workers = 1;
  const std::string spec = spec_json("alice", 55, 4000);
  {
    Scheduler sched(opts);
    sched.start();
    ASSERT_TRUE(sched.submit(spec).accepted);
    // Shut down as soon as the job is underway; the worker checkpoints at
    // its next generation boundary and parks the job.
    while (sched.state(1) == JobState::Queued) {
    }
    sched.shutdown();
    EXPECT_NE(sched.state(1), JobState::Completed);
  }
  Scheduler sched(opts);
  const auto rep = sched.recover();
  EXPECT_EQ(rep.requeued, 1u);
  sched.start();
  sched.drain();
  sched.shutdown();
  ASSERT_EQ(sched.state(1), JobState::Completed);
  expect_matches_oracle(*sched.result(1), spec);
}

}  // namespace
}  // namespace egt::serve
