#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "core/engine.hpp"
#include "game/spec/registry.hpp"

namespace egt::core {
namespace {

SimConfig config(FitnessMode mode) {
  SimConfig cfg;
  cfg.ssets = 16;
  cfg.memory = 1;
  cfg.generations = 120;
  cfg.pc_rate = 0.4;
  cfg.mutation_rate = 0.2;
  cfg.seed = 808;
  cfg.fitness_mode = mode;
  return cfg;
}

void expect_same_trajectory(FitnessMode mode) {
  const auto cfg = config(mode);
  Engine uninterrupted(cfg);
  uninterrupted.run(120);

  Engine first_half(cfg);
  first_half.run(60);
  const auto blob = save_checkpoint(first_half);
  Engine resumed = restore_checkpoint(cfg, blob);
  EXPECT_EQ(resumed.generation(), 60u);
  resumed.run(60);

  EXPECT_EQ(resumed.population().table_hash(),
            uninterrupted.population().table_hash());
  for (pop::SSetId i = 0; i < cfg.ssets; ++i) {
    ASSERT_DOUBLE_EQ(resumed.population().fitness(i),
                     uninterrupted.population().fitness(i))
        << i;
  }
}

TEST(Checkpoint, ResumeIsBitExactForAnalyticMode) {
  expect_same_trajectory(FitnessMode::Analytic);
}

TEST(Checkpoint, ResumeIsBitExactForSampledMode) {
  expect_same_trajectory(FitnessMode::Sampled);
}

TEST(Checkpoint, ResumeWorksForMixedStrategies) {
  auto cfg = config(FitnessMode::Analytic);
  cfg.space = pop::StrategySpace::Mixed;
  cfg.game.noise = 0.05;
  Engine whole(cfg);
  whole.run(100);
  Engine half(cfg);
  half.run(50);
  Engine resumed = restore_checkpoint(cfg, save_checkpoint(half));
  resumed.run(50);
  EXPECT_EQ(resumed.population().table_hash(), whole.population().table_hash());
}

TEST(Checkpoint, ResumeWorksForNWayGames) {
  // N-way strategies serialize with their own kind byte (wire v3); a
  // resumed RPS run must replay the uninterrupted trajectory exactly.
  auto cfg = config(FitnessMode::Analytic);
  cfg.memory = 0;
  cfg.game = *game::find_game("rps");
  cfg.space = pop::StrategySpace::Mixed;
  Engine whole(cfg);
  whole.run(100);
  Engine half(cfg);
  half.run(50);
  Engine resumed = restore_checkpoint(cfg, save_checkpoint(half));
  resumed.run(50);
  EXPECT_EQ(resumed.population().table_hash(), whole.population().table_hash());
}

TEST(Checkpoint, ResumeWorksForPublicGoodsGames) {
  auto cfg = config(FitnessMode::Analytic);
  cfg.memory = 0;
  cfg.game = game::GameSpec::public_goods("pgg", 3.0, 1.0, /*k=*/4);
  Engine whole(cfg);
  whole.run(100);
  Engine half(cfg);
  half.run(50);
  Engine resumed = restore_checkpoint(cfg, save_checkpoint(half));
  resumed.run(50);
  EXPECT_EQ(resumed.population().table_hash(), whole.population().table_hash());
}

TEST(Checkpoint, RejectsDifferentConfig) {
  const auto cfg = config(FitnessMode::Analytic);
  Engine engine(cfg);
  engine.run(10);
  const auto blob = save_checkpoint(engine);
  auto other = cfg;
  other.beta = 2.0;
  EXPECT_THROW((void)restore_checkpoint(other, blob), CheckpointError);
  other = cfg;
  other.seed = 1;
  EXPECT_THROW((void)restore_checkpoint(other, blob), CheckpointError);
}

TEST(Checkpoint, RejectsCorruptBlobs) {
  const auto cfg = config(FitnessMode::Analytic);
  Engine engine(cfg);
  engine.run(5);
  auto blob = save_checkpoint(engine);
  auto truncated = blob;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW((void)restore_checkpoint(cfg, truncated), CheckpointError);
  auto garbage = blob;
  garbage[0] = std::byte{0xff};
  EXPECT_THROW((void)restore_checkpoint(cfg, garbage), CheckpointError);
  auto trailing = blob;
  trailing.push_back(std::byte{0});
  EXPECT_THROW((void)restore_checkpoint(cfg, trailing), CheckpointError);
}

TEST(Checkpoint, RejectsTruncationAtEveryLength) {
  // The ASan/UBSan canary: no truncation point may read out of bounds or
  // raise anything but the typed decode error.
  auto cfg = config(FitnessMode::Analytic);
  cfg.ssets = 6;
  cfg.generations = 10;
  Engine engine(cfg);
  engine.run(3);
  const auto blob = save_checkpoint(engine);
  for (std::size_t len = 0; len < blob.size(); ++len) {
    std::vector<std::byte> cut(blob.begin(),
                               blob.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)restore_checkpoint(cfg, cut), CheckpointError)
        << "truncated to " << len << " of " << blob.size() << " bytes";
  }
}

TEST(Checkpoint, RejectsUnsupportedVersionWithClearMessage) {
  const auto cfg = config(FitnessMode::Analytic);
  Engine engine(cfg);
  engine.run(5);
  auto blob = save_checkpoint(engine);
  const std::uint32_t bogus = kCheckpointVersion + 7;
  std::memcpy(blob.data() + 8, &bogus, sizeof bogus);  // after the u64 magic
  try {
    (void)restore_checkpoint(cfg, blob);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version"), std::string::npos) << what;
  }
}

TEST(Checkpoint, CorruptStrategyLengthDoesNotOverAllocate) {
  // A hostile strategy length field must fail bounds-first, not attempt a
  // multi-gigabyte allocation.
  const auto cfg = config(FitnessMode::Analytic);
  Engine engine(cfg);
  engine.run(5);
  auto blob = save_checkpoint(engine);
  const std::uint32_t huge = 0x7fffffff;
  // The first strategy's length prefix sits right after the fixed header:
  // magic + version + fingerprint + generation + nature rng + planned +
  // population size.
  const std::size_t header = 8 + 4 + 8 + 8 + 4 * 8 + 8 + 4;
  std::memcpy(blob.data() + header, &huge, sizeof huge);
  EXPECT_THROW((void)restore_checkpoint(cfg, blob), CheckpointError);
}

TEST(Checkpoint, ResumeWorksOnStructuredPopulations) {
  auto cfg = config(FitnessMode::Analytic);
  cfg.ssets = 18;
  cfg.interaction.kind = InteractionSpec::Kind::Ring;
  cfg.interaction.ring_k = 2;
  Engine whole(cfg);
  whole.run(100);
  Engine half(cfg);
  half.run(50);
  Engine resumed = restore_checkpoint(cfg, save_checkpoint(half));
  resumed.run(50);
  EXPECT_EQ(resumed.population().table_hash(),
            whole.population().table_hash());
}

TEST(Checkpoint, ResumeWorksUnderMoranRule) {
  auto cfg = config(FitnessMode::Analytic);
  cfg.update_rule = pop::UpdateRule::Moran;
  Engine whole(cfg);
  whole.run(100);
  Engine half(cfg);
  half.run(50);
  Engine resumed = restore_checkpoint(cfg, save_checkpoint(half));
  resumed.run(50);
  EXPECT_EQ(resumed.population().table_hash(),
            whole.population().table_hash());
}

TEST(Checkpoint, FileRoundTrip) {
  const auto cfg = config(FitnessMode::Analytic);
  Engine engine(cfg);
  engine.run(40);
  const std::string path = ::testing::TempDir() + "egt_ckpt.bin";
  write_checkpoint_file(engine, path);
  Engine restored = read_checkpoint_file(cfg, path);
  EXPECT_EQ(restored.generation(), 40u);
  EXPECT_EQ(restored.population().table_hash(),
            engine.population().table_hash());
  std::remove(path.c_str());
}

TEST(Checkpoint, FingerprintSensitivity) {
  auto cfg = config(FitnessMode::Analytic);
  const auto base = config_fingerprint(cfg);
  cfg.pc_rate += 0.01;
  EXPECT_NE(config_fingerprint(cfg), base);
  cfg = config(FitnessMode::Analytic);
  cfg.memory = 2;
  EXPECT_NE(config_fingerprint(cfg), base);
  cfg = config(FitnessMode::Analytic);
  cfg.game.payoff.temptation = 5.0;
  EXPECT_NE(config_fingerprint(cfg), base);
  // The fitness *mode* is an implementation choice, not dynamics: for
  // deterministic games trajectories agree across modes, so the
  // fingerprint deliberately excludes it.
  EXPECT_EQ(config_fingerprint(config(FitnessMode::Sampled)),
            config_fingerprint(config(FitnessMode::Analytic)));
  // Structure and update rule ARE dynamics.
  cfg = config(FitnessMode::Analytic);
  cfg.interaction.kind = InteractionSpec::Kind::Ring;
  cfg.interaction.ring_k = 2;
  EXPECT_NE(config_fingerprint(cfg), base);
  cfg = config(FitnessMode::Analytic);
  cfg.update_rule = pop::UpdateRule::Moran;
  EXPECT_NE(config_fingerprint(cfg), base);
}

}  // namespace
}  // namespace egt::core
