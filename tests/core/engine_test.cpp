#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "game/named.hpp"
#include "pop/stats.hpp"

namespace egt::core {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.ssets = 12;
  cfg.memory = 1;
  cfg.generations = 50;
  cfg.seed = 11;
  cfg.fitness_mode = FitnessMode::Analytic;  // fast for tests
  return cfg;
}

TEST(Engine, InitialPopulationIsSeedDeterministic) {
  const auto a = make_initial_population(small_config());
  const auto b = make_initial_population(small_config());
  EXPECT_EQ(a.table_hash(), b.table_hash());
  auto cfg = small_config();
  cfg.seed = 12;
  const auto c = make_initial_population(cfg);
  EXPECT_NE(a.table_hash(), c.table_hash());
}

TEST(Engine, RunAdvancesGenerations) {
  Engine engine(small_config());
  EXPECT_EQ(engine.generation(), 0u);
  engine.run(10);
  EXPECT_EQ(engine.generation(), 10u);
  engine.run_all();
  EXPECT_EQ(engine.generation(), 60u);
}

TEST(Engine, IdenticalConfigsGiveIdenticalTrajectories) {
  Engine a(small_config()), b(small_config());
  a.run(50);
  b.run(50);
  EXPECT_EQ(a.population().table_hash(), b.population().table_hash());
  for (pop::SSetId i = 0; i < a.population().size(); ++i) {
    ASSERT_DOUBLE_EQ(a.population().fitness(i), b.population().fitness(i));
  }
}

TEST(Engine, StepRecordsEvents) {
  auto cfg = small_config();
  cfg.pc_rate = 1.0;
  cfg.mutation_rate = 1.0;
  Engine engine(cfg);
  engine.step();
  const auto& rec = engine.last_record();
  EXPECT_EQ(rec.generation, 0u);
  ASSERT_TRUE(rec.pc.has_value());
  EXPECT_NE(rec.pc->teacher, rec.pc->learner);
  ASSERT_TRUE(rec.mutation.has_value());
}

TEST(Engine, AdoptionCopiesTeacherStrategy) {
  auto cfg = small_config();
  cfg.pc_rate = 1.0;
  cfg.mutation_rate = 0.0;
  cfg.beta = 1000.0;  // near-deterministic: always adopt when better
  Engine engine(cfg);
  for (int g = 0; g < 20; ++g) {
    engine.step();
    const auto& rec = engine.last_record();
    ASSERT_TRUE(rec.pc.has_value());
    if (rec.pc->adopted) {
      EXPECT_TRUE(engine.population().strategy(rec.pc->learner) ==
                  engine.population().strategy(rec.pc->teacher));
    }
  }
}

TEST(Engine, MutationInsertsFreshStrategy) {
  auto cfg = small_config();
  cfg.pc_rate = 0.0;
  cfg.mutation_rate = 1.0;
  Engine engine(cfg);
  const auto before = engine.population().table_hash();
  int changes = 0;
  for (int g = 0; g < 10; ++g) {
    engine.step();
    ASSERT_TRUE(engine.last_record().mutation.has_value());
  }
  EXPECT_NE(engine.population().table_hash(), before);
  (void)changes;
}

TEST(Engine, ZeroRatesFreezeTheStrategyTable) {
  auto cfg = small_config();
  cfg.pc_rate = 0.0;
  cfg.mutation_rate = 0.0;
  Engine engine(cfg);
  const auto before = engine.population().table_hash();
  engine.run(30);
  EXPECT_EQ(engine.population().table_hash(), before);
}

TEST(Engine, FitnessIsPublishedToThePopulation) {
  Engine engine(small_config());
  engine.step();
  bool any_nonzero = false;
  for (pop::SSetId i = 0; i < engine.population().size(); ++i) {
    if (engine.population().fitness(i) != 0.0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(Engine, SampledAndFrozenAgreeForPureNoiselessRuns) {
  // With deterministic games the frozen cache is exact, so whole
  // trajectories must coincide with the re-playing engine.
  auto cfg = small_config();
  cfg.generations = 40;
  cfg.fitness_mode = FitnessMode::Sampled;
  Engine sampled(cfg);
  cfg.fitness_mode = FitnessMode::SampledFrozen;
  Engine frozen(cfg);
  cfg.fitness_mode = FitnessMode::Analytic;
  Engine analytic(cfg);
  sampled.run(40);
  frozen.run(40);
  analytic.run(40);
  EXPECT_EQ(sampled.population().table_hash(), frozen.population().table_hash());
  EXPECT_EQ(sampled.population().table_hash(),
            analytic.population().table_hash());
  for (pop::SSetId i = 0; i < sampled.population().size(); ++i) {
    ASSERT_DOUBLE_EQ(sampled.population().fitness(i),
                     frozen.population().fitness(i));
    ASSERT_NEAR(sampled.population().fitness(i),
                analytic.population().fitness(i), 1e-9);
  }
}

TEST(Engine, FrozenCacheDoesFarLessWorkThanSampled) {
  auto cfg = small_config();
  cfg.generations = 30;
  cfg.fitness_mode = FitnessMode::Sampled;
  Engine sampled(cfg);
  sampled.run_all();
  cfg.fitness_mode = FitnessMode::SampledFrozen;
  Engine frozen(cfg);
  frozen.run_all();
  EXPECT_LT(frozen.pairs_evaluated(), sampled.pairs_evaluated() / 2);
}

TEST(Engine, HighBetaSelectsForFitness) {
  // Seed the population with ALLD everywhere except one WSLS SSet: under
  // strong selection and no mutation, WSLS-vs-ALLD fitness decides spread.
  auto cfg = small_config();
  cfg.pc_rate = 1.0;
  cfg.mutation_rate = 0.0;
  cfg.beta = 50.0;
  cfg.generations = 400;
  Engine engine(cfg);
  // Steer the population by hand through mutation-like assignment.
  // (Engine owns its population; we emulate by running a config whose
  // random init already contains both strategy kinds.)
  engine.run_all();
  // Under pure imitation dynamics the population must lose diversity.
  EXPECT_LE(pop::distinct_strategies(engine.population()), 12u);
  EXPECT_GE(pop::dominant_fraction(engine.population()), 0.25);
}

TEST(Engine, AgentTierThreadsProduceIdenticalTrajectories) {
  // The paper's second parallel tier: concurrent agent game play inside a
  // strategy group. Must be bit-identical to the serial path.
  for (const auto mode : {FitnessMode::Sampled, FitnessMode::Analytic}) {
    auto cfg = small_config();
    cfg.generations = 25;
    cfg.fitness_mode = mode;
    cfg.agent_threads = 0;
    Engine serial(cfg);
    serial.run_all();
    cfg.agent_threads = 3;
    Engine threaded(cfg);
    threaded.run_all();
    ASSERT_EQ(serial.population().table_hash(),
              threaded.population().table_hash());
    for (pop::SSetId i = 0; i < cfg.ssets; ++i) {
      ASSERT_DOUBLE_EQ(serial.population().fitness(i),
                       threaded.population().fitness(i));
    }
  }
}

TEST(Engine, LocalMutationKernelRunsEndToEnd) {
  auto cfg = small_config();
  cfg.space = pop::StrategySpace::Pure;
  cfg.mutation_kernel = pop::MutationKernel::PureBitFlip;
  cfg.mutation_bits = 1;
  cfg.mutation_rate = 1.0;
  cfg.pc_rate = 0.0;
  Engine engine(cfg);
  const auto initial_hash = engine.population().table_hash();
  engine.run(20);
  EXPECT_NE(engine.population().table_hash(), initial_hash);
}

TEST(Engine, InvalidConfigRejectedAtConstruction) {
  auto cfg = small_config();
  cfg.memory = -1;
  EXPECT_THROW(Engine{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace egt::core
