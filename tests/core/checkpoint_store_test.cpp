// The crash-consistency layer under every checkpoint: CRC-32 footers,
// write-temp+rename commits, `.tmp` orphan sweeping, retention pruning and
// the newest-intact fallback. Filesystem tests run in a per-test temp
// directory and clean up after themselves.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint_store.hpp"
#include "core/wire.hpp"
#include "util/rng.hpp"

namespace egt::core {
namespace {

namespace fs = std::filesystem;

std::vector<std::byte> payload_of(const std::string& text) {
  std::vector<std::byte> out;
  for (char c : text) out.push_back(static_cast<std::byte>(c));
  return out;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("egt_ckpt_test_" + tag + "_" +
               std::to_string(::testing::UnitTest::GetInstance()->random_seed()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

TEST(CrcFooter, RoundTripsPayload) {
  auto blob = payload_of("the quick brown fox");
  const auto original = blob;
  append_crc_footer(blob);
  EXPECT_EQ(blob.size(), original.size() + kCrcFooterBytes);
  EXPECT_EQ(checked_payload(blob), original);
}

TEST(CrcFooter, EmptyPayloadRoundTrips) {
  std::vector<std::byte> blob;
  append_crc_footer(blob);
  EXPECT_EQ(blob.size(), kCrcFooterBytes);
  EXPECT_TRUE(checked_payload(blob).empty());
}

TEST(CrcFooter, DetectsTruncationAtEveryLength) {
  auto blob = payload_of("checkpoint body");
  append_crc_footer(blob);
  for (std::size_t len = 0; len < blob.size(); ++len) {
    std::vector<std::byte> cut(blob.begin(),
                               blob.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)checked_payload(cut), CheckpointError)
        << "torn write of " << len << " of " << blob.size() << " bytes";
  }
}

TEST(CrcFooter, DetectsEveryBitFlip) {
  auto blob = payload_of("bits");
  append_crc_footer(blob);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = blob;
      flipped[i] ^= std::byte{static_cast<unsigned char>(1u << bit)};
      EXPECT_THROW((void)checked_payload(flipped), CheckpointError)
          << "flip of bit " << bit << " in byte " << i << " went undetected";
    }
  }
}

TEST(AtomicWrite, WritesAndLeavesNoTemp) {
  TempDir tmp("atomic");
  const auto path = (tmp.path() / "blob.bin").string();
  const auto blob = payload_of("content");
  atomic_write_file(path, blob);
  EXPECT_EQ(read_file_bytes(path), blob);
  EXPECT_FALSE(fs::exists(path + ".tmp"))
      << "temp file must be renamed away on success";
}

TEST(AtomicWrite, ThrowsOnUnwritableDirectory) {
  TempDir tmp("unwritable");
  const auto path = (tmp.path() / "no_such_subdir" / "blob.bin").string();
  EXPECT_THROW(atomic_write_file(path, payload_of("x")), std::runtime_error);
}

TEST(SweepTmpFiles, RemovesOnlyOrphans) {
  TempDir tmp("sweep");
  std::ofstream(tmp.path() / "checkpoint_g4.bin") << "committed";
  std::ofstream(tmp.path() / "checkpoint_g8.bin.tmp") << "orphan";
  std::ofstream(tmp.path() / "other.tmp") << "orphan too";
  EXPECT_EQ(sweep_tmp_files(tmp.str()), 2u);
  EXPECT_TRUE(fs::exists(tmp.path() / "checkpoint_g4.bin"));
  EXPECT_FALSE(fs::exists(tmp.path() / "checkpoint_g8.bin.tmp"));
  EXPECT_FALSE(fs::exists(tmp.path() / "other.tmp"));
  EXPECT_EQ(sweep_tmp_files((tmp.path() / "missing").string()), 0u)
      << "a missing directory sweeps nothing";
}

TEST(CheckpointDir, CommitLoadRoundTrip) {
  TempDir tmp("roundtrip");
  CheckpointDir dir(tmp.str());
  dir.commit(12, payload_of("generation twelve"));
  EXPECT_TRUE(fs::exists(tmp.path() / CheckpointDir::file_name(12)));
  const auto loaded = dir.newest_intact();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 12u);
  EXPECT_EQ(loaded->payload, payload_of("generation twelve"));
}

TEST(CheckpointDir, ConstructionSweepsTmpOrphans) {
  TempDir tmp("ctor_sweep");
  std::ofstream(tmp.path() / "checkpoint_g3.bin.tmp") << "crashed mid-commit";
  CheckpointDir dir(tmp.str());
  EXPECT_FALSE(fs::exists(tmp.path() / "checkpoint_g3.bin.tmp"));
}

TEST(CheckpointDir, PrunesToRetention) {
  TempDir tmp("retention");
  CheckpointDir dir(tmp.str(), /*keep=*/2);
  for (std::uint64_t gen : {4u, 8u, 12u, 16u}) {
    dir.commit(gen, payload_of("g" + std::to_string(gen)));
  }
  EXPECT_EQ(dir.generations(), (std::vector<std::uint64_t>{12, 16}));
  EXPECT_FALSE(fs::exists(tmp.path() / CheckpointDir::file_name(4)));
  EXPECT_FALSE(fs::exists(tmp.path() / CheckpointDir::file_name(8)));
}

TEST(CheckpointDir, FallsBackPastCorruptNewest) {
  TempDir tmp("fallback");
  CheckpointDir dir(tmp.str());
  dir.commit(4, payload_of("old but intact"));
  dir.commit(8, payload_of("newest"));
  // Tear the newest file the way a crashed non-atomic writer would.
  const auto newest = tmp.path() / CheckpointDir::file_name(8);
  const auto size = fs::file_size(newest);
  fs::resize_file(newest, size / 2);

  int corrupt_calls = 0;
  std::uint64_t corrupt_gen = 0;
  const auto loaded = dir.newest_intact(
      [&](std::uint64_t gen, const std::string& why) {
        ++corrupt_calls;
        corrupt_gen = gen;
        EXPECT_FALSE(why.empty());
      });
  ASSERT_TRUE(loaded.has_value()) << "torn newest must degrade, not fail";
  EXPECT_EQ(loaded->generation, 4u);
  EXPECT_EQ(loaded->payload, payload_of("old but intact"));
  EXPECT_EQ(corrupt_calls, 1);
  EXPECT_EQ(corrupt_gen, 8u);
}

TEST(CheckpointDir, DetectsBitFlippedCheckpoint) {
  TempDir tmp("bitflip");
  CheckpointDir dir(tmp.str());
  dir.commit(4, payload_of("only copy"));
  // Flip one payload bit on disk.
  const auto path = (tmp.path() / CheckpointDir::file_name(4)).string();
  auto bytes = read_file_bytes(path);
  bytes[0] ^= std::byte{0x01};
  atomic_write_file(path, bytes);
  int corrupt_calls = 0;
  const auto loaded = dir.newest_intact(
      [&](std::uint64_t, const std::string&) { ++corrupt_calls; });
  EXPECT_FALSE(loaded.has_value());
  EXPECT_EQ(corrupt_calls, 1);
}

TEST(CheckpointDir, NewestIntactOnEmptyOrMissingDirectory) {
  TempDir tmp("empty");
  CheckpointDir dir(tmp.str());
  EXPECT_FALSE(dir.newest_intact().has_value());
  CheckpointDir missing((tmp.path() / "never_created").string());
  EXPECT_FALSE(missing.newest_intact().has_value());
  EXPECT_TRUE(missing.generations().empty());
}

TEST(CheckpointDir, RejectsZeroRetention) {
  TempDir tmp("keep0");
  EXPECT_THROW(CheckpointDir(tmp.str(), /*keep=*/0), std::exception);
}

// -- property tests: corruption at seeded *random* positions ------------------
// The exhaustive tests above cover every offset of one small blob; these
// sweep random payload sizes with random truncation points and bit
// positions, the shapes a torn parallel-filesystem write actually takes.

std::vector<std::byte> random_payload(util::SplitMix64& rng,
                                      std::size_t max_len) {
  std::vector<std::byte> payload(util::uniform_below(rng, max_len + 1));
  for (auto& b : payload) {
    b = static_cast<std::byte>(util::uniform_below(rng, 256));
  }
  return payload;
}

void corrupt_file(const std::string& path, util::SplitMix64& rng) {
  auto bytes = read_file_bytes(path);
  ASSERT_FALSE(bytes.empty());
  if (util::uniform_below(rng, 2) == 0) {
    // Torn write: keep a strictly shorter random prefix.
    bytes.resize(util::uniform_below(rng, bytes.size()));
  } else {
    // Bit rot: flip one random bit somewhere in the file.
    const auto byte_at = util::uniform_below(rng, bytes.size());
    const auto bit = util::uniform_below(rng, 8);
    bytes[byte_at] ^= std::byte{static_cast<unsigned char>(1u << bit)};
  }
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointDirProperty, RandomCorruptionIsNeverServedAsIntact) {
  TempDir tmp("prop_corrupt");
  util::SplitMix64 rng(0x5eedc0de);
  for (int iteration = 0; iteration < 200; ++iteration) {
    CheckpointDir dir(tmp.str(), /*keep=*/1);
    const auto gen = static_cast<std::uint64_t>(iteration + 1);
    const auto payload = random_payload(rng, 256);
    dir.commit(gen, payload);

    // Pristine round-trip first: the committed blob must come back intact.
    const auto loaded = dir.newest_intact();
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->generation, gen);
    ASSERT_EQ(loaded->payload, payload);

    corrupt_file((tmp.path() / CheckpointDir::file_name(gen)).string(), rng);
    int corrupt_reports = 0;
    const auto after = dir.newest_intact(
        [&](std::uint64_t, const std::string&) { ++corrupt_reports; });
    ASSERT_FALSE(after.has_value())
        << "iteration " << iteration << ": corrupted blob passed the CRC";
    ASSERT_EQ(corrupt_reports, 1);
    fs::remove(tmp.path() / CheckpointDir::file_name(gen));
  }
}

TEST(CheckpointDirProperty, RandomCorruptionFallsBackToOlderIntact) {
  TempDir tmp("prop_fallback");
  util::SplitMix64 rng(0xfa11bac5);
  for (int iteration = 0; iteration < 100; ++iteration) {
    CheckpointDir dir(tmp.str(), /*keep=*/2);
    const auto old_gen = static_cast<std::uint64_t>(2 * iteration + 1);
    const auto new_gen = old_gen + 1;
    const auto old_payload = random_payload(rng, 256);
    dir.commit(old_gen, old_payload);
    dir.commit(new_gen, random_payload(rng, 256));

    corrupt_file((tmp.path() / CheckpointDir::file_name(new_gen)).string(),
                 rng);
    const auto loaded = dir.newest_intact();
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->generation, old_gen)
        << "iteration " << iteration
        << ": fallback skipped the intact older generation";
    ASSERT_EQ(loaded->payload, old_payload);
    fs::remove(tmp.path() / CheckpointDir::file_name(old_gen));
    fs::remove(tmp.path() / CheckpointDir::file_name(new_gen));
  }
}

}  // namespace
}  // namespace egt::core
