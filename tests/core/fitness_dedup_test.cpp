// Strategy-interned dedup and SSet-row tier: bit-identity against brute
// force is the whole contract, so every comparison here is exact (==), not
// approximate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "core/fitness.hpp"
#include "game/named.hpp"
#include "pop/population.hpp"
#include "util/rng.hpp"

namespace egt::core {
namespace {

SimConfig analytic_config(pop::SSetId ssets, int memory) {
  SimConfig cfg;
  cfg.ssets = ssets;
  cfg.memory = memory;
  cfg.seed = 99;
  cfg.fitness_mode = FitnessMode::Analytic;
  return cfg;
}

pop::Population random_population(const SimConfig& cfg, bool mixed,
                                  std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return mixed ? pop::Population::random_mixed(cfg.ssets, cfg.memory, rng)
               : pop::Population::random_pure(cfg.ssets, cfg.memory, rng);
}

/// Exact (bitwise) equality of two fitness blocks.
void expect_blocks_identical(const BlockFitness& a, const BlockFitness& b) {
  ASSERT_EQ(a.block().size(), b.block().size());
  for (std::size_t i = 0; i < a.block().size(); ++i) {
    ASSERT_EQ(a.block()[i], b.block()[i]) << "row " << i;
  }
  ASSERT_EQ(a.payoff_matrix().size(), b.payoff_matrix().size());
  for (std::size_t i = 0; i < a.payoff_matrix().size(); ++i) {
    ASSERT_EQ(a.payoff_matrix()[i], b.payoff_matrix()[i]) << "cell " << i;
  }
}

/// Replay the same randomized adoption/mutation sequence through a dedup
/// block and a brute-force block and demand bitwise agreement throughout.
void run_property_sequence(int memory, bool mixed) {
  SimConfig dedup_cfg = analytic_config(24, memory);
  SimConfig brute_cfg = dedup_cfg;
  brute_cfg.dedup = false;

  auto pop = random_population(dedup_cfg, mixed, 1000 + memory);
  // Seed some duplicates so dedup has classes to merge from the start.
  for (pop::SSetId i = 0; i < pop.size(); i += 3) {
    pop.set_strategy(i, pop.strategy(0));
  }

  BlockFitness with(dedup_cfg, 0, dedup_cfg.ssets);
  BlockFitness without(brute_cfg, 0, brute_cfg.ssets);
  ASSERT_TRUE(with.dedup_active());
  ASSERT_FALSE(without.dedup_active());
  with.initialize(pop);
  without.initialize(pop);
  expect_blocks_identical(with, without);
  // Same logical pair count; never more games than brute force.
  ASSERT_EQ(with.pairs_evaluated(), without.pairs_evaluated());
  ASSERT_LE(with.games_played(), without.games_played());

  util::Xoshiro256 rng(77 + memory);
  for (std::uint64_t gen = 1; gen <= 40; ++gen) {
    with.begin_generation(pop, gen);
    without.begin_generation(pop, gen);
    const pop::SSetId target =
        static_cast<pop::SSetId>(util::uniform_below(rng, pop.size()));
    if (util::uniform_below(rng, 2) == 0) {
      // Adoption: copy another SSet's strategy (drives convergence).
      const pop::SSetId teacher =
          static_cast<pop::SSetId>(util::uniform_below(rng, pop.size()));
      pop.set_strategy(target, pop.strategy(teacher));
    } else {
      // Mutation: fresh random strategy (drives divergence).
      pop.set_strategy(target, random_population(dedup_cfg, mixed,
                                                 5000 + gen)
                                   .strategy(target));
    }
    with.strategy_changed(target, pop, gen);
    without.strategy_changed(target, pop, gen);
    expect_blocks_identical(with, without);
    ASSERT_EQ(with.pairs_evaluated(), without.pairs_evaluated());
  }
}

TEST(FitnessDedup, PropertyPureMemory1) { run_property_sequence(1, false); }
TEST(FitnessDedup, PropertyPureMemory2) { run_property_sequence(2, false); }
TEST(FitnessDedup, PropertyPureMemory3) { run_property_sequence(3, false); }
TEST(FitnessDedup, PropertyMixedMemory1) { run_property_sequence(1, true); }
TEST(FitnessDedup, PropertyMixedMemory2) { run_property_sequence(2, true); }
TEST(FitnessDedup, PropertyMixedMemory3) { run_property_sequence(3, true); }

TEST(FitnessDedup, ConvergedPopulationPlaysTenXFewerGames) {
  // The ISSUE acceptance scenario: 256 SSets collapsed onto <= 8 unique
  // strategies. Dedup must reproduce brute-force fitness bit-for-bit while
  // playing at least 10x fewer games.
  SimConfig dedup_cfg = analytic_config(256, 1);
  SimConfig brute_cfg = dedup_cfg;
  brute_cfg.dedup = false;

  std::vector<game::Strategy> reps;
  reps.push_back(game::named::all_c(1));
  reps.push_back(game::named::all_d(1));
  reps.push_back(game::named::tit_for_tat(1));
  reps.push_back(game::named::win_stay_lose_shift(1));
  util::Xoshiro256 rng(31);
  while (reps.size() < 8) {
    reps.push_back(
        pop::Population::random_pure(1, 1, rng).strategy(0));
  }
  std::vector<game::Strategy> table;
  table.reserve(256);
  for (pop::SSetId i = 0; i < 256; ++i) table.push_back(reps[i % 8]);
  const pop::Population pop(std::move(table));
  ASSERT_LE(pop.class_count(), 8u);

  BlockFitness with(dedup_cfg, 0, dedup_cfg.ssets);
  BlockFitness without(brute_cfg, 0, brute_cfg.ssets);
  with.initialize(pop);
  without.initialize(pop);
  expect_blocks_identical(with, without);
  ASSERT_EQ(with.pairs_evaluated(), without.pairs_evaluated());
  ASSERT_GT(without.games_played(), 0u);
  ASSERT_GE(without.games_played(), 10 * with.games_played())
      << "dedup played " << with.games_played() << " of "
      << without.games_played() << " brute-force games";
}

TEST(FitnessDedup, SampledModeNeverDedups) {
  SimConfig cfg = analytic_config(8, 1);
  cfg.fitness_mode = FitnessMode::Sampled;
  BlockFitness fit(cfg, 0, cfg.ssets);
  EXPECT_FALSE(fit.dedup_active());
  const auto pop = random_population(cfg, false, 3);
  fit.initialize(pop);
  // Every logical pair is an actual game.
  EXPECT_EQ(fit.games_played(), fit.pairs_evaluated());
}

TEST(FitnessDedup, StochasticMemory2PairsAreNotCached) {
  // Mixed memory-2 strategies miss both exact methods, so their payoff is
  // (gen_key, i, j)-keyed — dedup must leave them alone. Bit-identity with
  // brute force (checked via the property tests) plus games == pairs here
  // pins that down.
  SimConfig cfg = analytic_config(6, 2);
  const auto pop = random_population(cfg, true, 17);
  BlockFitness fit(cfg, 0, cfg.ssets);
  ASSERT_TRUE(fit.dedup_active());
  fit.initialize(pop);
  EXPECT_EQ(fit.games_played(), fit.pairs_evaluated());
}

TEST(FitnessDedup, SsetThreadsBitIdenticalToSerial) {
  for (const unsigned threads : {1u, 2u, 5u}) {
    SimConfig par_cfg = analytic_config(48, 1);
    par_cfg.sset_threads = threads;
    SimConfig ser_cfg = par_cfg;
    ser_cfg.sset_threads = 0;

    auto pop = random_population(par_cfg, true, 400);
    for (pop::SSetId i = 0; i < pop.size(); i += 2) {
      pop.set_strategy(i, pop.strategy(1));
    }
    BlockFitness par(par_cfg, 0, par_cfg.ssets);
    BlockFitness ser(ser_cfg, 0, ser_cfg.ssets);
    par.initialize(pop);
    ser.initialize(pop);
    expect_blocks_identical(par, ser);
    ASSERT_EQ(par.pairs_evaluated(), ser.pairs_evaluated());
    ASSERT_EQ(par.games_played(), ser.games_played());
  }
}

TEST(FitnessDedup, SsetThreadsBitIdenticalForSampledReplay) {
  SimConfig par_cfg = analytic_config(32, 1);
  par_cfg.fitness_mode = FitnessMode::Sampled;
  par_cfg.space = pop::StrategySpace::Mixed;
  par_cfg.sset_threads = 3;
  SimConfig ser_cfg = par_cfg;
  ser_cfg.sset_threads = 0;

  const auto pop = random_population(par_cfg, true, 88);
  BlockFitness par(par_cfg, 0, par_cfg.ssets);
  BlockFitness ser(ser_cfg, 0, ser_cfg.ssets);
  par.initialize(pop);
  ser.initialize(pop);
  for (std::uint64_t gen = 1; gen < 5; ++gen) {
    par.begin_generation(pop, gen);
    ser.begin_generation(pop, gen);
    expect_blocks_identical(par, ser);
  }
}

TEST(FitnessDedup, RestoreStateRoundTripsCache) {
  SimConfig cfg = analytic_config(16, 1);
  auto pop = random_population(cfg, false, 12);
  for (pop::SSetId i = 0; i < pop.size(); i += 2) {
    pop.set_strategy(i, pop.strategy(0));
  }
  BlockFitness source(cfg, 0, cfg.ssets);
  source.initialize(pop);
  const auto cache = source.dedup_cache();
  ASSERT_FALSE(cache.empty());
  // Exported cache is sorted — deterministic checkpoint bytes.
  ASSERT_TRUE(std::is_sorted(cache.begin(), cache.end(),
                             [](const BlockFitness::DedupEntry& x,
                                const BlockFitness::DedupEntry& y) {
                               return x.a != y.a ? x.a < y.a : x.b < y.b;
                             }));

  BlockFitness restored(cfg, 0, cfg.ssets);
  restored.restore_state(
      std::vector<double>(source.block().begin(), source.block().end()),
      std::vector<double>(source.payoff_matrix().begin(),
                          source.payoff_matrix().end()),
      cache);
  expect_blocks_identical(restored, source);
  // The restored block answers a strategy change without replaying the
  // class games the cache already holds: a change to an existing class
  // costs zero fresh games.
  const std::uint64_t games_before = restored.games_played();
  pop.set_strategy(3, pop.strategy(0));
  restored.strategy_changed(3, pop, 7);
  source.strategy_changed(3, pop, 7);
  expect_blocks_identical(restored, source);
  EXPECT_EQ(restored.games_played(), games_before);
}

TEST(FitnessDedup, SerialEngineTrajectoryUnchangedByDedup) {
  // Whole-engine bit-identity: generations of PC/Moran/mutation dynamics
  // produce the same population with and without dedup.
  SimConfig cfg = analytic_config(32, 1);
  cfg.generations = 80;
  cfg.pc_rate = 0.4;
  cfg.mutation_rate = 0.05;
  SimConfig brute = cfg;
  brute.dedup = false;

  Engine a(cfg);
  Engine b(brute);
  a.run(cfg.generations);
  b.run(cfg.generations);
  EXPECT_EQ(a.population().table_hash(), b.population().table_hash());
  for (pop::SSetId i = 0; i < cfg.ssets; ++i) {
    ASSERT_EQ(a.population().fitness(i), b.population().fitness(i)) << i;
  }
  EXPECT_EQ(a.pairs_evaluated(), b.pairs_evaluated());
  EXPECT_LE(a.games_played(), b.games_played());
}

TEST(FitnessDedup, SerialEngineTrajectoryUnchangedBySsetThreads) {
  SimConfig cfg = analytic_config(32, 1);
  cfg.generations = 60;
  cfg.pc_rate = 0.4;
  cfg.mutation_rate = 0.05;
  SimConfig threaded = cfg;
  threaded.sset_threads = 4;

  Engine a(cfg);
  Engine b(threaded);
  a.run(cfg.generations);
  b.run(cfg.generations);
  EXPECT_EQ(a.population().table_hash(), b.population().table_hash());
  for (pop::SSetId i = 0; i < cfg.ssets; ++i) {
    ASSERT_EQ(a.population().fitness(i), b.population().fitness(i)) << i;
  }
  EXPECT_EQ(a.games_played(), b.games_played());
}

}  // namespace
}  // namespace egt::core
