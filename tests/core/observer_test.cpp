#include "core/observer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "core/engine.hpp"
#include "game/named.hpp"

namespace egt::core {
namespace {

SimConfig config() {
  SimConfig cfg;
  cfg.ssets = 8;
  cfg.memory = 1;
  cfg.generations = 20;
  cfg.fitness_mode = FitnessMode::Analytic;
  cfg.seed = 3;
  return cfg;
}

TEST(CallbackObserver, SeesEveryGeneration) {
  Engine engine(config());
  std::vector<std::uint64_t> gens;
  CallbackObserver obs([&](const pop::Population&, const GenerationRecord& r) {
    gens.push_back(r.generation);
  });
  engine.run(20, &obs);
  ASSERT_EQ(gens.size(), 20u);
  EXPECT_EQ(gens.front(), 0u);
  EXPECT_EQ(gens.back(), 19u);
}

TEST(TimeSeriesRecorder, SamplesAtInterval) {
  Engine engine(config());
  TimeSeriesRecorder rec(5);
  engine.run(20, &rec);
  ASSERT_EQ(rec.samples().size(), 4u);  // generations 0, 5, 10, 15
  EXPECT_EQ(rec.samples()[1].generation, 5u);
  for (const auto& s : rec.samples()) {
    EXPECT_GE(s.dominant_fraction, 1.0 / 8.0);
    EXPECT_LE(s.dominant_fraction, 1.0);
    EXPECT_GE(s.mean_coop_probability, 0.0);
    EXPECT_LE(s.mean_coop_probability, 1.0);
    EXPECT_GE(s.distinct, 1u);
  }
}

TEST(TimeSeriesRecorder, WritesCsv) {
  Engine engine(config());
  TimeSeriesRecorder rec(10);
  engine.run(20, &rec);
  const std::string path = ::testing::TempDir() + "egt_series.csv";
  rec.write_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("generation"), std::string::npos);
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 2);
  std::remove(path.c_str());
}

TEST(TimeSeriesRecorder, TracksReferenceStrategyShare) {
  auto cfg = config();
  cfg.pc_rate = 0.0;
  cfg.mutation_rate = 0.0;  // frozen population: share is constant
  Engine engine(cfg);
  // Count how many initial SSets are exactly ALLD, then verify the
  // recorder reports that share every sample.
  const game::Strategy alld = game::named::all_d(1);
  double expected = 0.0;
  for (pop::SSetId i = 0; i < engine.population().size(); ++i) {
    if (engine.population().strategy(i) == alld) expected += 1.0;
  }
  expected /= engine.population().size();

  TimeSeriesRecorder rec(5, alld, 1e-9);
  engine.run(20, &rec);
  ASSERT_FALSE(rec.samples().empty());
  for (const auto& s : rec.samples()) {
    ASSERT_DOUBLE_EQ(s.tracked_fraction, expected);
  }
}

TEST(TimeSeriesRecorder, CsvIncludesTrackedColumn) {
  Engine engine(config());
  TimeSeriesRecorder rec(10, game::named::win_stay_lose_shift(1), 0.5);
  engine.run(20, &rec);
  const std::string path = ::testing::TempDir() + "egt_series_tracked.csv";
  rec.write_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("tracked_fraction"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SnapshotRecorder, CapturesRequestedGenerations) {
  Engine engine(config());
  SnapshotRecorder rec({0, 10});
  engine.run(20, &rec);
  ASSERT_EQ(rec.snapshots().size(), 2u);
  EXPECT_EQ(rec.snapshots()[0].first, 0u);
  EXPECT_EQ(rec.snapshots()[1].first, 10u);
  EXPECT_EQ(rec.snapshots()[0].second.size(), 8u);
}

TEST(MultiObserver, FansOut) {
  Engine engine(config());
  int calls_a = 0, calls_b = 0;
  CallbackObserver a([&](const pop::Population&, const GenerationRecord&) {
    ++calls_a;
  });
  CallbackObserver b([&](const pop::Population&, const GenerationRecord&) {
    ++calls_b;
  });
  MultiObserver multi;
  multi.add(a);
  multi.add(b);
  engine.run(5, &multi);
  EXPECT_EQ(calls_a, 5);
  EXPECT_EQ(calls_b, 5);
}

TEST(MultiObserver, OwnsObserversAddedByUniquePtr) {
  Engine engine(config());
  int calls = 0;
  MultiObserver multi;
  // The unique_ptr is moved in; MultiObserver keeps the observer alive.
  Observer& ref = multi.add(std::make_unique<CallbackObserver>(
      [&](const pop::Population&, const GenerationRecord&) { ++calls; }));
  (void)ref;
  EXPECT_EQ(multi.size(), 1u);
  engine.run(5, &multi);
  EXPECT_EQ(calls, 5);
}

TEST(MultiObserver, MixesOwnedAndBorrowedChildren) {
  Engine engine(config());
  int borrowed_calls = 0, owned_calls = 0;
  CallbackObserver borrowed(
      [&](const pop::Population&, const GenerationRecord&) {
        ++borrowed_calls;
      });
  MultiObserver multi;
  multi.add(borrowed);
  multi.add(std::make_unique<CallbackObserver>(
      [&](const pop::Population&, const GenerationRecord&) {
        ++owned_calls;
      }));
  EXPECT_EQ(multi.size(), 2u);
  engine.run(3, &multi);
  EXPECT_EQ(borrowed_calls, 3);
  EXPECT_EQ(owned_calls, 3);
}

TEST(MultiObserver, RejectsNullObserver) {
  MultiObserver multi;
  EXPECT_THROW(multi.add(std::unique_ptr<Observer>{}), std::invalid_argument);
  EXPECT_EQ(multi.size(), 0u);
}

TEST(MultiObserver, RejectsDuplicateObserver) {
  CallbackObserver obs(
      [](const pop::Population&, const GenerationRecord&) {});
  MultiObserver multi;
  multi.add(obs);
  EXPECT_THROW(multi.add(obs), std::invalid_argument);
  EXPECT_EQ(multi.size(), 1u);
}

}  // namespace
}  // namespace egt::core
