#include "core/fitness.hpp"

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "game/named.hpp"

namespace egt::core {
namespace {

SimConfig tiny_config() {
  SimConfig cfg;
  cfg.ssets = 8;
  cfg.memory = 1;
  cfg.seed = 5;
  return cfg;
}

pop::Population known_population() {
  // ALLC, ALLD, TFT, WSLS repeated twice: hand-checkable payoffs.
  std::vector<game::Strategy> ss;
  for (int rep = 0; rep < 2; ++rep) {
    ss.emplace_back(game::named::all_c(1));
    ss.emplace_back(game::named::all_d(1));
    ss.emplace_back(game::named::tit_for_tat(1));
    ss.emplace_back(game::named::win_stay_lose_shift(1));
  }
  return pop::Population(std::move(ss));
}

TEST(PairEvaluator, SampledMatchesIpdEngineDirectly) {
  const SimConfig cfg = tiny_config();
  const PairEvaluator eval(cfg);
  const auto pop = known_population();
  // ALLD (1) vs ALLC (0): temptation every round.
  EXPECT_DOUBLE_EQ(eval.payoff(pop, 1, 0, 0), 800.0);
  EXPECT_DOUBLE_EQ(eval.payoff(pop, 0, 1, 0), 0.0);
}

TEST(PairEvaluator, AnalyticAgreesWithSampledForPureNoiseFree) {
  SimConfig cfg = tiny_config();
  const PairEvaluator sampled(cfg);
  cfg.fitness_mode = FitnessMode::Analytic;
  const PairEvaluator analytic(cfg);
  const auto pop = known_population();
  for (pop::SSetId i = 0; i < pop.size(); ++i) {
    for (pop::SSetId j = 0; j < pop.size(); ++j) {
      if (i == j) continue;
      ASSERT_DOUBLE_EQ(sampled.payoff(pop, i, j, 0),
                       analytic.payoff(pop, i, j, 0))
          << i << " vs " << j;
    }
  }
}

TEST(PairEvaluator, GenerationKeyChangesSampledStochasticGames) {
  SimConfig cfg = tiny_config();
  cfg.space = pop::StrategySpace::Mixed;
  const PairEvaluator eval(cfg);
  util::Xoshiro256 rng(2);
  auto pop = pop::Population::random_mixed(4, 1, rng);
  const double g0 = eval.payoff(pop, 0, 1, 0);
  const double g0_again = eval.payoff(pop, 0, 1, 0);
  const double g1 = eval.payoff(pop, 0, 1, 1);
  EXPECT_DOUBLE_EQ(g0, g0_again);
  EXPECT_NE(g0, g1);
}

TEST(BlockFitness, FullBlockMatchesManualSums) {
  SimConfig cfg = tiny_config();
  cfg.fitness_scale = FitnessScale::Total;
  BlockFitness fit(cfg, 0, cfg.ssets);
  const auto pop = known_population();
  fit.initialize(pop);
  const PairEvaluator eval(cfg);
  for (pop::SSetId i = 0; i < cfg.ssets; ++i) {
    double sum = 0.0;
    for (pop::SSetId j = 0; j < cfg.ssets; ++j) {
      if (j != i) sum += eval.payoff(pop, i, j, 0);
    }
    ASSERT_DOUBLE_EQ(fit.fitness(i), sum) << i;
  }
}

TEST(BlockFitness, PerRoundAverageScaleIsWithinPayoffBounds) {
  SimConfig cfg = tiny_config();
  cfg.fitness_scale = FitnessScale::PerRoundAverage;
  BlockFitness fit(cfg, 0, cfg.ssets);
  const auto pop = known_population();
  fit.initialize(pop);
  for (pop::SSetId i = 0; i < cfg.ssets; ++i) {
    ASSERT_GE(fit.fitness(i), cfg.game.payoff.sucker);
    ASSERT_LE(fit.fitness(i), cfg.game.payoff.temptation);
  }
}

TEST(BlockFitness, PartialBlocksAgreeWithFullEvaluation) {
  const SimConfig cfg = tiny_config();
  const auto pop = known_population();
  BlockFitness full(cfg, 0, cfg.ssets);
  full.initialize(pop);
  for (pop::SSetId b = 0; b < cfg.ssets; b += 3) {
    const pop::SSetId e = std::min<pop::SSetId>(b + 3, cfg.ssets);
    BlockFitness part(cfg, b, e);
    part.initialize(pop);
    for (pop::SSetId i = b; i < e; ++i) {
      ASSERT_DOUBLE_EQ(part.fitness(i), full.fitness(i));
    }
  }
}

TEST(BlockFitness, CachedModeUpdatesIncrementallyOnChange) {
  SimConfig cfg = tiny_config();
  cfg.fitness_mode = FitnessMode::Analytic;
  auto pop = known_population();

  BlockFitness cached(cfg, 0, cfg.ssets);
  cached.initialize(pop);

  // Change SSet 1 from ALLD to WSLS and update incrementally.
  pop.set_strategy(1, game::named::win_stay_lose_shift(1));
  cached.strategy_changed(1, pop, /*generation=*/3);

  // A fresh evaluation of the new population must agree exactly.
  BlockFitness fresh(cfg, 0, cfg.ssets);
  fresh.initialize(pop);
  for (pop::SSetId i = 0; i < cfg.ssets; ++i) {
    ASSERT_NEAR(cached.fitness(i), fresh.fitness(i), 1e-9) << i;
  }
}

TEST(BlockFitness, CachedModeSkipsWorkAcrossQuietGenerations) {
  SimConfig cfg = tiny_config();
  cfg.fitness_mode = FitnessMode::SampledFrozen;
  const auto pop = known_population();
  BlockFitness fit(cfg, 0, cfg.ssets);
  fit.initialize(pop);
  const auto pairs_after_init = fit.pairs_evaluated();
  for (std::uint64_t g = 0; g < 10; ++g) {
    fit.begin_generation(pop, g);
  }
  EXPECT_EQ(fit.pairs_evaluated(), pairs_after_init);
}

TEST(BlockFitness, SampledModeReplaysEveryGeneration) {
  SimConfig cfg = tiny_config();
  cfg.fitness_mode = FitnessMode::Sampled;
  const auto pop = known_population();
  BlockFitness fit(cfg, 0, cfg.ssets);
  fit.initialize(pop);
  const auto before = fit.pairs_evaluated();
  fit.begin_generation(pop, 1);
  EXPECT_EQ(fit.pairs_evaluated() - before,
            static_cast<std::uint64_t>(cfg.ssets) * (cfg.ssets - 1));
}

TEST(BlockFitness, QueriesOutsideBlockThrow) {
  const SimConfig cfg = tiny_config();
  BlockFitness fit(cfg, 2, 5);
  EXPECT_THROW((void)fit.fitness(1), std::invalid_argument);
  EXPECT_THROW((void)fit.fitness(5), std::invalid_argument);
}

}  // namespace
}  // namespace egt::core
