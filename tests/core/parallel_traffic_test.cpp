// Communication-behaviour tests of the parallel engine: *what* is sent, not
// just that results match.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/parallel_engine.hpp"

namespace egt::core {
namespace {

SimConfig quiet_config() {
  SimConfig cfg;
  cfg.ssets = 16;
  cfg.memory = 1;
  cfg.generations = 50;
  cfg.pc_rate = 0.0;  // no events at all
  cfg.mutation_rate = 0.0;
  cfg.seed = 7;
  cfg.fitness_mode = FitnessMode::Analytic;
  return cfg;
}

TEST(ParallelTraffic, PaperBcastPaysPerGenerationEvenWhenQuiet) {
  auto cfg = quiet_config();
  cfg.comm_pattern = CommPattern::PaperBcast;
  const auto res = run_parallel(cfg, 4);
  // One plan broadcast per generation (3 tree messages on 4 ranks) plus
  // the final fitness gather — so at least generations * (ranks - 1) ...
  // the precise floor: 50 generations of bcast reach 3 receivers each.
  EXPECT_GE(res.traffic.messages, 50u * 3u);
}

TEST(ParallelTraffic, PaperBcastSplitsBroadcastFromPointToPoint) {
  auto cfg = quiet_config();
  cfg.comm_pattern = CommPattern::PaperBcast;
  const auto res = run_parallel(cfg, 4);
  // The per-generation plan travels over the broadcast tree; the only p2p
  // traffic in a quiet run is the final fitness gather (3 block messages).
  EXPECT_GE(res.traffic.bcast_messages, 50u * 3u);
  EXPECT_EQ(res.traffic.p2p_messages, 3u);
  // The two classes partition the historical totals exactly.
  EXPECT_EQ(res.traffic.bcast_messages + res.traffic.p2p_messages,
            res.traffic.messages);
  EXPECT_EQ(res.traffic.bcast_bytes + res.traffic.p2p_bytes,
            res.traffic.bytes);
}

TEST(ParallelTraffic, PerRankTrafficSumsToTotals) {
  auto cfg = quiet_config();
  cfg.pc_rate = 0.5;
  cfg.mutation_rate = 0.2;
  cfg.comm_pattern = CommPattern::PaperBcast;
  const auto res = run_parallel(cfg, 4);
  ASSERT_EQ(res.traffic.per_rank.size(), 4u);
  std::uint64_t msgs = 0, bytes = 0;
  for (const auto& r : res.traffic.per_rank) {
    msgs += r.messages();
    bytes += r.bytes();
  }
  EXPECT_EQ(msgs, res.traffic.messages);
  EXPECT_EQ(bytes, res.traffic.bytes);
  // Rank 0 originates every plan broadcast, so it must carry bcast traffic.
  EXPECT_GT(res.traffic.per_rank[0].bcast_messages, 0u);
}

TEST(ParallelTraffic, ReplicatedNatureIsSilentOnQuietGenerations) {
  auto cfg = quiet_config();
  cfg.comm_pattern = CommPattern::ReplicatedNature;
  const auto res = run_parallel(cfg, 4);
  // Only the final fitness gather communicates: 3 block messages.
  EXPECT_EQ(res.traffic.messages, 3u);
  // ...and a gather is point-to-point: no broadcast-tree traffic at all.
  EXPECT_EQ(res.traffic.bcast_messages, 0u);
  EXPECT_EQ(res.traffic.p2p_messages, 3u);
}

TEST(ParallelTraffic, SingleRankRunsSendAlmostNothing) {
  auto cfg = quiet_config();
  cfg.pc_rate = 0.5;
  cfg.mutation_rate = 0.2;
  const auto res = run_parallel(cfg, 1);
  EXPECT_EQ(res.traffic.messages, 0u);  // bcast/gather degenerate on 1 rank
}

TEST(ParallelTraffic, MutationPayloadScalesWithMemoryDepth) {
  auto cfg = quiet_config();
  cfg.mutation_rate = 1.0;  // strategy payload every generation
  cfg.comm_pattern = CommPattern::PaperBcast;
  cfg.memory = 1;
  const auto small = run_parallel(cfg, 4);
  cfg.memory = 6;  // 512-byte pure strategies
  const auto big = run_parallel(cfg, 4);
  EXPECT_GT(big.traffic.bytes, small.traffic.bytes + 50u * 3u * 400u);
}

TEST(ParallelTraffic, FitnessReturnsOnlyWhenPcFires) {
  // With pc_rate 1 and ReplicatedNature, every generation runs a
  // 2-element allreduce; traffic must scale with generations.
  auto cfg = quiet_config();
  cfg.pc_rate = 1.0;
  cfg.comm_pattern = CommPattern::ReplicatedNature;
  cfg.generations = 10;
  const auto ten = run_parallel(cfg, 4);
  cfg.generations = 40;
  const auto forty = run_parallel(cfg, 4);
  EXPECT_GT(forty.traffic.messages, 3u * ten.traffic.messages);
}

}  // namespace
}  // namespace egt::core
