// SIMD/SoA batch fitness path (DESIGN.md §12): routing rules, kernel
// equivalence at the fitness tier, and the scalar fallback for pairs the
// batch kernel must not touch.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/fitness.hpp"
#include "game/simd.hpp"
#include "game/spec/registry.hpp"
#include "pop/population.hpp"
#include "util/rng.hpp"

namespace egt::core {
namespace {

SimConfig analytic_config(pop::SSetId ssets, int memory) {
  SimConfig cfg;
  cfg.ssets = ssets;
  cfg.memory = memory;
  cfg.seed = 4242;
  cfg.fitness_mode = FitnessMode::Analytic;
  cfg.dedup = false;  // exercise the row-batch path; tests opt back in
  return cfg;
}

struct ForceScalarGuard {
  explicit ForceScalarGuard(bool on) { game::simd::set_force_scalar(on); }
  ~ForceScalarGuard() { game::simd::set_force_scalar(false); }
};

TEST(PairRoute, ClassifiesEveryDispatchCase) {
  util::Xoshiro256 rng(1);
  const game::Strategy pure1{game::PureStrategy::random(1, rng)};
  const game::Strategy mixed1{game::MixedStrategy::random(1, rng)};

  SimConfig cfg = analytic_config(8, 1);
  PairEvaluator eval(cfg);
  EXPECT_EQ(eval.route(pure1, pure1), PairEvaluator::Route::PureExact);
  EXPECT_EQ(eval.route(pure1, mixed1), PairEvaluator::Route::Mem1Markov);
  EXPECT_EQ(eval.route(mixed1, mixed1), PairEvaluator::Route::Mem1Markov);

  // Execution noise kills the deterministic walker but not the chain.
  cfg.game.noise = 0.05;
  PairEvaluator noisy(cfg);
  EXPECT_EQ(noisy.route(pure1, pure1), PairEvaluator::Route::Mem1Markov);

  // Stochastic memory >= 2 has no closed form: stream play.
  SimConfig deep = analytic_config(8, 2);
  const game::Strategy mixed2{game::MixedStrategy::random(2, rng)};
  const game::Strategy pure2{game::PureStrategy::random(2, rng)};
  PairEvaluator deep_eval(deep);
  EXPECT_EQ(deep_eval.route(mixed2, mixed2),
            PairEvaluator::Route::SampledStream);
  EXPECT_EQ(deep_eval.route(pure2, pure2), PairEvaluator::Route::PureExact);

  // Sampled mode never has a strategy-pure pair.
  SimConfig sampled = analytic_config(8, 1);
  sampled.fitness_mode = FitnessMode::Sampled;
  PairEvaluator sampled_eval(sampled);
  EXPECT_EQ(sampled_eval.route(pure1, pure1),
            PairEvaluator::Route::SampledStream);

  // m-action specs bypass the 2x2 kernels entirely.
  SimConfig nway = analytic_config(8, 0);
  nway.memory = 0;
  nway.game = *game::find_game("rps");
  ASSERT_TRUE(game::spec::requires_spec_chain(nway.game));
  util::Xoshiro256 nrng(2);
  const game::Strategy rps{game::NWayStrategy::random(3, nrng)};
  PairEvaluator nway_eval(nway);
  EXPECT_EQ(nway_eval.route(rps, rps), PairEvaluator::Route::NWaySpec);
}

// The whole fitness tier — row batch, dedup prefill batch, batch-of-one
// cache misses — must agree with the active kernel to the cross-kernel
// tolerance when forced scalar, and bitwise with itself across dedup and
// thread-count settings (one kernel per process).
TEST(BatchFitness, ForcedScalarAgreesWithActiveKernelTo1em12) {
  const SimConfig cfg = analytic_config(24, 1);
  util::Xoshiro256 rng(55);
  const auto pop = pop::Population::random_mixed(cfg.ssets, 1, rng);

  std::vector<double> active, scalar;
  {
    BlockFitness block(cfg, 0, cfg.ssets);
    block.initialize(pop);
    active.assign(block.block().begin(), block.block().end());
  }
  {
    ForceScalarGuard guard(true);
    BlockFitness block(cfg, 0, cfg.ssets);
    block.initialize(pop);
    scalar.assign(block.block().begin(), block.block().end());
  }
  ASSERT_EQ(active.size(), scalar.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    const double tol = 1e-12 * std::max(1.0, std::fabs(scalar[i]));
    EXPECT_NEAR(active[i], scalar[i], tol) << "row " << i;
  }
}

TEST(BatchFitness, DedupAndRowBatchBitIdentical) {
  SimConfig brute = analytic_config(20, 1);
  SimConfig dedup = brute;
  dedup.dedup = true;
  util::Xoshiro256 rng(7);
  auto pop = pop::Population::random_mixed(brute.ssets, 1, rng);
  for (pop::SSetId i = 0; i < pop.size(); i += 2) {
    pop.set_strategy(i, pop.strategy(1));  // give dedup real classes
  }

  BlockFitness a(brute, 0, brute.ssets);
  BlockFitness b(dedup, 0, dedup.ssets);
  a.initialize(pop);
  b.initialize(pop);
  ASSERT_EQ(a.block().size(), b.block().size());
  for (std::size_t i = 0; i < a.block().size(); ++i) {
    EXPECT_EQ(a.block()[i], b.block()[i]) << "row " << i;
  }
  EXPECT_EQ(a.pairs_evaluated(), b.pairs_evaluated());
  EXPECT_LT(b.games_played(), a.games_played());
}

// Mixed memory-2 pairs have no closed form: the row batch must leave them
// on the per-pair stream path, and results must match the brute-force
// evaluator pair by pair.
TEST(BatchFitness, StochasticMemory2FallsBackToStreamPlay) {
  const SimConfig cfg = analytic_config(10, 2);
  util::Xoshiro256 rng(13);
  const auto pop = pop::Population::random_mixed(cfg.ssets, 2, rng);

  BlockFitness block(cfg, 0, cfg.ssets);
  block.initialize(pop);
  const PairEvaluator eval(cfg);
  for (pop::SSetId i = 0; i < cfg.ssets; ++i) {
    double sum = 0.0;
    for (pop::SSetId j = 0; j < cfg.ssets; ++j) {
      if (j == i) continue;
      sum += eval.payoff(pop, i, j, 0);
    }
    const double scale = 1.0 / ((cfg.ssets - 1.0) * cfg.game.rounds);
    EXPECT_EQ(block.fitness(i), sum * scale) << "row " << i;
  }
}

// m-action populations route through the spec chain: flipping the kernel
// switch must not move a single bit.
TEST(BatchFitness, NWaySpecBypassUnaffectedByKernelSwitch) {
  SimConfig cfg = analytic_config(12, 0);
  cfg.memory = 0;
  cfg.game = *game::find_game("rps");
  util::Xoshiro256 rng(21);
  const auto pop = pop::Population::random_nway(cfg.ssets, 3, false, rng);

  std::vector<double> active, scalar;
  {
    BlockFitness block(cfg, 0, cfg.ssets);
    block.initialize(pop);
    active.assign(block.block().begin(), block.block().end());
  }
  {
    ForceScalarGuard guard(true);
    BlockFitness block(cfg, 0, cfg.ssets);
    block.initialize(pop);
    scalar.assign(block.block().begin(), block.block().end());
  }
  ASSERT_EQ(active.size(), scalar.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    EXPECT_EQ(active[i], scalar[i]) << "row " << i;
  }
}

// Pure populations at zero noise take the PureExact walker everywhere —
// also kernel-switch invariant (the walker has no SIMD variant).
TEST(BatchFitness, PureExactPathKernelSwitchInvariant) {
  const SimConfig cfg = analytic_config(16, 2);
  util::Xoshiro256 rng(31);
  const auto pop = pop::Population::random_pure(cfg.ssets, 2, rng);

  std::vector<double> active, scalar;
  {
    BlockFitness block(cfg, 0, cfg.ssets);
    block.initialize(pop);
    active.assign(block.block().begin(), block.block().end());
  }
  {
    ForceScalarGuard guard(true);
    BlockFitness block(cfg, 0, cfg.ssets);
    block.initialize(pop);
    scalar.assign(block.block().begin(), block.block().end());
  }
  for (std::size_t i = 0; i < active.size(); ++i) {
    EXPECT_EQ(active[i], scalar[i]) << "row " << i;
  }
}

}  // namespace
}  // namespace egt::core
