// Public-goods group play inside BlockFitness (DESIGN.md §10): the three
// grouping modes (global pool, well-mixed k-windows, structured
// neighbourhood groups) against hand-computed payoffs, the sampled /
// analytic agreement for pure strategies, and the incremental
// strategy_changed path against a from-scratch evaluation.
#include "core/fitness.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/config.hpp"
#include "game/named.hpp"
#include "pop/graph.hpp"

namespace egt::core {
namespace {

// r = 3, cost = 1: every contributed unit comes back tripled and split.
SimConfig pgg_config(pop::SSetId ssets, std::uint32_t rounds,
                     std::uint32_t k = 0) {
  SimConfig cfg;
  cfg.ssets = ssets;
  cfg.memory = 0;
  cfg.seed = 21;
  cfg.game = game::GameSpec::public_goods("pgg", 3.0, 1.0, k, rounds);
  cfg.fitness_mode = FitnessMode::Analytic;
  cfg.fitness_scale = FitnessScale::Total;
  return cfg;
}

// C, C, D, D — contributions rounds, rounds, 0, 0.
pop::Population half_coop_population() {
  std::vector<game::Strategy> ss;
  ss.emplace_back(game::named::all_c(0));
  ss.emplace_back(game::named::all_c(0));
  ss.emplace_back(game::named::all_d(0));
  ss.emplace_back(game::named::all_d(0));
  return pop::Population(std::move(ss));
}

// C, D, C, D — the alternating ring used by the window/structured checks.
pop::Population alternating_population() {
  std::vector<game::Strategy> ss;
  ss.emplace_back(game::named::all_c(0));
  ss.emplace_back(game::named::all_d(0));
  ss.emplace_back(game::named::all_c(0));
  ss.emplace_back(game::named::all_d(0));
  return pop::Population(std::move(ss));
}

// Global pool (pgg_k == 0, well-mixed): pool = 2R of a possible 4R, each
// member receives r*pool/n = 1.5R; contributors paid R in, so 0.5R vs
// 1.5R. Free riding dominates pointwise, yet the pool rewards r > 1.
TEST(PggFitness, GlobalPoolMatchesHandComputation) {
  const std::uint32_t rounds = 8;
  const SimConfig cfg = pgg_config(4, rounds);
  BlockFitness fit(cfg, 0, cfg.ssets);
  fit.initialize(half_coop_population());
  const double R = rounds;
  EXPECT_DOUBLE_EQ(fit.fitness(0), 0.5 * R);
  EXPECT_DOUBLE_EQ(fit.fitness(1), 0.5 * R);
  EXPECT_DOUBLE_EQ(fit.fitness(2), 1.5 * R);
  EXPECT_DOUBLE_EQ(fit.fitness(3), 1.5 * R);
}

// Well-mixed k-windows, k = 2, n = 4, C D C D, one round: every window
// holds exactly one C and one D, so each group pays out r*1/2 = 1.5 per
// member. A cooperator sits in 2 windows and paid 2: 2*1.5 - 2 = 1. A
// defector collects the same shares free: 2*1.5 = 3.
TEST(PggFitness, RingWindowsMatchHandComputation) {
  const SimConfig cfg = pgg_config(4, /*rounds=*/1, /*k=*/2);
  BlockFitness fit(cfg, 0, cfg.ssets);
  fit.initialize(alternating_population());
  EXPECT_DOUBLE_EQ(fit.fitness(0), 1.0);
  EXPECT_DOUBLE_EQ(fit.fitness(1), 3.0);
  EXPECT_DOUBLE_EQ(fit.fitness(2), 1.0);
  EXPECT_DOUBLE_EQ(fit.fitness(3), 3.0);
}

// Structured ring (1 neighbour per side): groups are {t} ∪ N(t), size 3.
// On C D C D the cooperator's own group pools 1, its neighbours' pool 2
// each, shares are pool*r/3 = pool; totals 0 + 1 + 1 = 2 for C and
// 2 + 1 + 1 = 4 for D.
TEST(PggFitness, StructuredNeighbourhoodGroupsMatchHandComputation) {
  SimConfig cfg = pgg_config(4, /*rounds=*/1);
  cfg.interaction.kind = InteractionSpec::Kind::Ring;
  cfg.interaction.ring_k = 1;
  const auto graph = std::make_shared<const pop::InteractionGraph>(
      make_interaction_graph(cfg));
  BlockFitness fit(cfg, 0, cfg.ssets, graph);
  fit.initialize(alternating_population());
  EXPECT_DOUBLE_EQ(fit.fitness(0), 2.0);
  EXPECT_DOUBLE_EQ(fit.fitness(1), 4.0);
  EXPECT_DOUBLE_EQ(fit.fitness(2), 2.0);
  EXPECT_DOUBLE_EQ(fit.fitness(3), 4.0);
}

// PerRoundAverage divides by groups * rounds; with one global group the
// scale is 1 / rounds exactly.
TEST(PggFitness, PerRoundAverageScalesByGroupsTimesRounds) {
  const std::uint32_t rounds = 8;
  SimConfig cfg = pgg_config(4, rounds);
  cfg.fitness_scale = FitnessScale::PerRoundAverage;
  BlockFitness fit(cfg, 0, cfg.ssets);
  fit.initialize(half_coop_population());
  EXPECT_DOUBLE_EQ(fit.fitness(0), 0.5);
  EXPECT_DOUBLE_EQ(fit.fitness(2), 1.5);
}

// Pure contributions are deterministic bernoulli(1.0) / bernoulli(0.0)
// draws, so the sampled engine must land on the analytic values exactly.
TEST(PggFitness, SampledEqualsAnalyticForPureStrategies) {
  SimConfig cfg = pgg_config(4, /*rounds=*/16, /*k=*/2);
  BlockFitness analytic(cfg, 0, cfg.ssets);
  analytic.initialize(alternating_population());
  cfg.fitness_mode = FitnessMode::Sampled;
  BlockFitness sampled(cfg, 0, cfg.ssets);
  sampled.initialize(alternating_population());
  sampled.begin_generation(alternating_population(), 3);
  for (pop::SSetId i = 0; i < cfg.ssets; ++i) {
    EXPECT_DOUBLE_EQ(sampled.fitness(i), analytic.fitness(i)) << i;
  }
}

// A strategy change must refresh every owned row (PGG payoffs are group
// sums, not pairwise entries) — the incremental path has to agree with a
// from-scratch block on the mutated population.
TEST(PggFitness, StrategyChangedMatchesFreshEvaluation) {
  const SimConfig cfg = pgg_config(4, /*rounds=*/8, /*k=*/2);
  auto pop = alternating_population();
  BlockFitness incremental(cfg, 0, cfg.ssets);
  incremental.initialize(pop);
  pop.set_strategy(1, game::Strategy{game::named::all_c(0)});
  incremental.strategy_changed(1, pop, /*generation=*/5);
  BlockFitness fresh(cfg, 0, cfg.ssets);
  fresh.initialize(pop);
  for (pop::SSetId i = 0; i < cfg.ssets; ++i) {
    EXPECT_DOUBLE_EQ(incremental.fitness(i), fresh.fitness(i)) << i;
  }
}

}  // namespace
}  // namespace egt::core
