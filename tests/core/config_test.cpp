#include "core/config.hpp"

#include <gtest/gtest.h>

#include "game/spec/registry.hpp"

namespace egt::core {
namespace {

TEST(SimConfig, DefaultsAreValidAndPaperLike) {
  SimConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.game.rounds, 200u);  // paper §V-C
  EXPECT_DOUBLE_EQ(cfg.pc_rate, 0.1);
  EXPECT_DOUBLE_EQ(cfg.mutation_rate, 0.05);
  EXPECT_TRUE(cfg.game.payoff.is_prisoners_dilemma());
}

TEST(SimConfig, ValidateCatchesBadValues) {
  SimConfig cfg;
  cfg.memory = 7;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.ssets = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.pc_rate = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.game.noise = 2.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.fitness_mode = FitnessMode::Analytic;
  cfg.ssets = 20000;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SimConfig, ValidateEnforcesGameConstraints) {
  // N-way, one-shot and public-goods games are memory-0 by construction.
  SimConfig cfg;
  cfg.game = *game::find_game("rps");
  cfg.memory = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.memory = 0;
  EXPECT_NO_THROW(cfg.validate());
  // N-way mutation is limited to the simplex-aware kernels.
  cfg.mutation_kernel = pop::MutationKernel::MixedGaussian;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.mutation_kernel = pop::MutationKernel::PureBitFlip;
  EXPECT_NO_THROW(cfg.validate());
  // PGG group sizes: pgg_k can't exceed the population, and structured
  // populations take their groups from the graph instead.
  cfg = SimConfig();
  cfg.memory = 0;
  cfg.ssets = 8;
  cfg.game = game::GameSpec::public_goods("pgg", 3.0, 1.0, /*k=*/4);
  EXPECT_NO_THROW(cfg.validate());
  cfg.game.pgg_k = 9;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.game.pgg_k = 4;
  cfg.interaction.kind = InteractionSpec::Kind::Ring;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.game.pgg_k = 0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(SimConfig, NatureConfigMirrorsFields) {
  SimConfig cfg;
  cfg.ssets = 99;
  cfg.memory = 3;
  cfg.pc_rate = 0.2;
  cfg.mutation_rate = 0.01;
  cfg.beta = 2.5;
  cfg.require_teacher_better = true;
  cfg.space = pop::StrategySpace::Mixed;
  cfg.seed = 4242;
  const auto nc = cfg.nature_config();
  EXPECT_EQ(nc.ssets, 99u);
  EXPECT_EQ(nc.memory, 3);
  EXPECT_DOUBLE_EQ(nc.pc_rate, 0.2);
  EXPECT_DOUBLE_EQ(nc.mutation_rate, 0.01);
  EXPECT_DOUBLE_EQ(nc.beta, 2.5);
  EXPECT_TRUE(nc.require_teacher_better);
  EXPECT_EQ(nc.space, pop::StrategySpace::Mixed);
  EXPECT_EQ(nc.seed, 4242u);
}

TEST(SimConfig, SummaryMentionsKeyParameters) {
  SimConfig cfg;
  cfg.memory = 4;
  cfg.ssets = 77;
  const std::string s = cfg.summary();
  EXPECT_NE(s.find("memory-4"), std::string::npos);
  EXPECT_NE(s.find("77 SSets"), std::string::npos);
}

}  // namespace
}  // namespace egt::core
