#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace egt::util {
namespace {

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> out;
  for (auto& a : args) out.push_back(a.data());
  return out;
}

TEST(Cli, DefaultsSurviveEmptyParse) {
  Cli cli("prog", "test");
  auto x = cli.opt<int>("x", 5, "an int");
  auto s = cli.opt<std::string>("s", "hello", "a string");
  std::vector<std::string> args{"prog"};
  auto argv = argv_of(args);
  cli.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*x, 5);
  EXPECT_EQ(*s, "hello");
}

TEST(Cli, ParsesSeparateAndEqualsForms) {
  Cli cli("prog", "test");
  auto x = cli.opt<int>("x", 0, "an int");
  auto y = cli.opt<double>("y", 0.0, "a double");
  std::vector<std::string> args{"prog", "--x", "7", "--y=2.5"};
  auto argv = argv_of(args);
  cli.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*x, 7);
  EXPECT_DOUBLE_EQ(*y, 2.5);
}

TEST(Cli, ScientificNotationForIntegerOptions) {
  Cli cli("prog", "test");
  auto g = cli.opt<std::int64_t>("gens", 0, "generations");
  std::vector<std::string> args{"prog", "--gens", "1e6"};
  auto argv = argv_of(args);
  cli.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(*g, 1000000);
}

TEST(Cli, FlagsDefaultFalseAndSet) {
  Cli cli("prog", "test");
  auto f = cli.flag("fast", "go fast");
  {
    std::vector<std::string> args{"prog"};
    auto argv = argv_of(args);
    cli.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_FALSE(*f);
  }
  {
    std::vector<std::string> args{"prog", "--fast"};
    auto argv = argv_of(args);
    cli.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_TRUE(*f);
  }
}

TEST(Cli, UsageMentionsOptionsAndDefaults) {
  Cli cli("prog", "does things");
  (void)cli.opt<int>("count", 3, "how many");
  const std::string u = cli.usage();
  EXPECT_NE(u.find("--count"), std::string::npos);
  EXPECT_NE(u.find("how many"), std::string::npos);
  EXPECT_NE(u.find("3"), std::string::npos);
}

TEST(CliDeath, UnknownOptionExits) {
  Cli cli("prog", "test");
  std::vector<std::string> args{"prog", "--nope", "1"};
  auto argv = argv_of(args);
  EXPECT_EXIT(cli.parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(2), "unknown option");
}

TEST(CliDeath, BadValueExits) {
  Cli cli("prog", "test");
  (void)cli.opt<int>("x", 0, "an int");
  std::vector<std::string> args{"prog", "--x", "abc"};
  auto argv = argv_of(args);
  EXPECT_EXIT(cli.parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(2), "bad value");
}

}  // namespace
}  // namespace egt::util
