#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace egt::util {
namespace {

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(1.25));
}

TEST(Stats, MeanOfEmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW((void)mean(xs), std::invalid_argument);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({7}), 7.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3, -1, 2};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 3.0);
}

TEST(Stats, EntropyUniformAndDegenerate) {
  const std::vector<std::size_t> uniform{10, 10, 10, 10};
  EXPECT_NEAR(entropy_from_counts(uniform), std::log(4.0), 1e-12);
  const std::vector<std::size_t> degenerate{40, 0, 0, 0};
  EXPECT_DOUBLE_EQ(entropy_from_counts(degenerate), 0.0);
  const std::vector<std::size_t> empty{0, 0};
  EXPECT_DOUBLE_EQ(entropy_from_counts(empty), 0.0);
}

TEST(RunningStats, MatchesBatchFormulas) {
  RunningStats rs;
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace egt::util
