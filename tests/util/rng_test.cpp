#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <vector>

namespace egt::util {
namespace {

TEST(Mix64, IsDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Mix64, IsBijectiveOnSamples) {
  // mix64 is a bijection (0 maps to 0 — callers offset their seeds);
  // distinct inputs must stay distinct.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t a = mix64(0x1234567890abcdefULL);
  const std::uint64_t b = mix64(0x1234567890abcdeeULL);
  const int flipped = std::popcount(a ^ b);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(SplitMix64, ProducesKnownDistinctValues) {
  SplitMix64 a(1), b(1), c(2);
  const auto va = a();
  EXPECT_EQ(va, b());
  EXPECT_NE(va, c());
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Xoshiro256, ReproducibleForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Xoshiro256, LongJumpDecorrelates) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.long_jump();
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(StreamRng, DrawDependsOnlyOnSeedKeyCounter) {
  StreamRng a(9, 100);
  StreamRng b(9, 100);
  // Interleave unrelated draws elsewhere; stream values must match draw by
  // draw regardless.
  StreamRng noise(1, 2);
  (void)noise();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(StreamRng, DifferentKeysAreIndependent) {
  StreamRng a(9, 100), b(9, 101);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(StreamRng, CounterCountsDraws) {
  StreamRng r(1, 1);
  EXPECT_EQ(r.counter(), 0u);
  (void)r();
  (void)r();
  EXPECT_EQ(r.counter(), 2u);
}

TEST(StreamKey, SensitiveToEachComponent) {
  const auto base = stream_key(1, 2, 3);
  EXPECT_NE(base, stream_key(2, 2, 3));
  EXPECT_NE(base, stream_key(1, 3, 3));
  EXPECT_NE(base, stream_key(1, 2, 4));
}

TEST(StreamKey, OrderMatters) {
  EXPECT_NE(stream_key(1, 2), stream_key(2, 1));
}

TEST(ToUnitDouble, RangeIsHalfOpen) {
  EXPECT_GE(to_unit_double(0), 0.0);
  EXPECT_LT(to_unit_double(~0ULL), 1.0);
}

TEST(Uniform01, WithinRangeAndRoughlyUniform) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = uniform01(rng);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(UniformBelow, NeverReachesBound) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(uniform_below(rng, 7), 7u);
  }
}

TEST(UniformBelow, CoversAllValues) {
  Xoshiro256 rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(uniform_below(rng, 5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(UniformBelow, IsUnbiased) {
  Xoshiro256 rng(11);
  std::vector<int> counts(3, 0);
  constexpr int kN = 90000;
  for (int i = 0; i < kN; ++i) {
    ++counts[uniform_below(rng, 3)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 1.0 / 3.0, 0.01);
  }
}

TEST(Bernoulli, EdgeProbabilities) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(bernoulli(rng, 0.0));
    EXPECT_TRUE(bernoulli(rng, 1.0));
  }
}

TEST(Bernoulli, MatchesProbability) {
  Xoshiro256 rng(6);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (bernoulli(rng, 0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

}  // namespace
}  // namespace egt::util
