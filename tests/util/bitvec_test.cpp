#include "util/bitvec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace egt::util {
namespace {

TEST(BitVec, StartsAllZero) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_FALSE(v.get(i));
  }
}

TEST(BitVec, SetGetFlip) {
  BitVec v(70);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(69, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(69));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.flip(0);
  EXPECT_FALSE(v.get(0));
  v.flip(1);
  EXPECT_TRUE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVec, FromStringRoundTrips) {
  const std::string bits = "0110100101";
  const BitVec v = BitVec::from_string(bits);
  EXPECT_EQ(v.to_string(), bits);
  EXPECT_EQ(v.popcount(), 5u);
}

TEST(BitVec, FromStringRejectsGarbage) {
  EXPECT_THROW(BitVec::from_string("01x0"), std::invalid_argument);
}

TEST(BitVec, SetAllRespectsTail) {
  BitVec v(67);
  v.set_all();
  EXPECT_EQ(v.popcount(), 67u);
  v.clear_all();
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, HammingDistance) {
  const BitVec a = BitVec::from_string("0011");
  const BitVec b = BitVec::from_string("0101");
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(BitVec, HammingDistanceRequiresEqualSizes) {
  const BitVec a(4);
  const BitVec b(5);
  EXPECT_THROW((void)a.hamming_distance(b), std::invalid_argument);
}

TEST(BitVec, EqualityIsContentBased) {
  BitVec a(100), b(100);
  EXPECT_EQ(a, b);
  a.set(55, true);
  EXPECT_FALSE(a == b);
  b.set(55, true);
  EXPECT_EQ(a, b);
}

TEST(BitVec, HashDiffersForDifferentContent) {
  BitVec a(4096), b(4096);
  b.set(4095, true);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(BitVec, HashDiffersForDifferentSizes) {
  EXPECT_NE(BitVec(64).hash(), BitVec(65).hash());
}

TEST(BitVec, RandomizeMasksTail) {
  BitVec v(67);
  Xoshiro256 rng(1);
  v.randomize(rng);
  // The tail (bits 67..127 of the backing words) must stay clear, so the
  // popcount can never exceed the logical size.
  EXPECT_LE(v.popcount(), 67u);
  // and to_string round-trips exactly 67 chars.
  EXPECT_EQ(v.to_string().size(), 67u);
}

TEST(BitVec, RandomizeIsRoughlyBalanced) {
  BitVec v(4096);
  Xoshiro256 rng(2);
  v.randomize(rng);
  EXPECT_GT(v.popcount(), 1800u);
  EXPECT_LT(v.popcount(), 2300u);
}

TEST(BitVec, MemorySixStrategySize) {
  // 4^6 = 4096 bits = the paper's memory-six pure strategy.
  BitVec v(4096);
  EXPECT_EQ(v.words().size(), 64u);
}

}  // namespace
}  // namespace egt::util
