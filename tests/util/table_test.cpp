#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace egt::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "x"});
  t.add_row({std::string("a"), std::string("1")});
  t.add_row({std::string("longer"), std::string("22")});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Every line has the same length (alignment).
  std::istringstream lines(out);
  std::string line;
  std::getline(lines, line);
  const auto w = line.size();
  while (std::getline(lines, line)) {
    EXPECT_LE(line.size(), w + 1);
  }
}

TEST(TextTable, NumericRowHelper) {
  TextTable t({"label", "v1", "v2"});
  t.add_row("r", {1.0, 2.5});
  EXPECT_EQ(t.rows(), 1u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("2.5"), std::string::npos);
}

TEST(TextTable, RejectsWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only")}), std::invalid_argument);
}

}  // namespace
}  // namespace egt::util
