#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

namespace egt::util {
namespace {

std::string compact(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  body(w);
  return os.str();
}

TEST(Json, EmptyObjectAndArray) {
  EXPECT_EQ(compact([](JsonWriter& w) { w.begin_object().end_object(); }),
            "{}");
  EXPECT_EQ(compact([](JsonWriter& w) { w.begin_array().end_array(); }),
            "[]");
}

TEST(Json, ScalarFields) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_object()
        .field("name", "egtsim")
        .field("ssets", 64)
        .field("rate", 0.5)
        .field("ok", true)
        .key("nothing")
        .null()
        .end_object();
  });
  EXPECT_EQ(out,
            "{\"name\":\"egtsim\",\"ssets\":64,\"rate\":0.5,\"ok\":true,"
            "\"nothing\":null}");
}

TEST(Json, NestedContainers) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_object().key("xs").begin_array();
    w.value(1).value(2);
    w.begin_object().field("deep", false).end_object();
    w.end_array().end_object();
  });
  EXPECT_EQ(out, "{\"xs\":[1,2,{\"deep\":false}]}");
}

TEST(Json, PrettyPrintingIndents) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object().field("a", 1).end_object();
  EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::escape("say \"hi\"\n"), "say \\\"hi\\\"\\n");
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(compact([](JsonWriter& w) {
              w.begin_array()
                  .value(std::numeric_limits<double>::infinity())
                  .value(std::nan(""))
                  .end_array();
            }),
            "[null,null]");
}

TEST(Json, CompletionTracking) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  EXPECT_FALSE(w.complete());
  w.end_object();
  EXPECT_TRUE(w.complete());
}

TEST(Json, MisuseIsRejected) {
  {
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.begin_object();
    EXPECT_THROW(w.value(1), std::invalid_argument);  // member without key
  }
  {
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::invalid_argument);  // key inside array
  }
  {
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.begin_object().key("k");
    EXPECT_THROW(w.key("again"), std::invalid_argument);  // two keys
  }
  {
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.begin_object().end_object();
    EXPECT_THROW(w.begin_object(), std::invalid_argument);  // second root
  }
  {
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::invalid_argument);  // mismatch
  }
}

TEST(Json, Uint64RoundTripsExactly) {
  const std::uint64_t big = 0xffffffffffffffffULL;
  EXPECT_EQ(compact([&](JsonWriter& w) {
              w.begin_array().value(big).end_array();
            }),
            "[18446744073709551615]");
}

}  // namespace
}  // namespace egt::util
