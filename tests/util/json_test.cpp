#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

namespace egt::util {
namespace {

std::string compact(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  body(w);
  return os.str();
}

TEST(Json, EmptyObjectAndArray) {
  EXPECT_EQ(compact([](JsonWriter& w) { w.begin_object().end_object(); }),
            "{}");
  EXPECT_EQ(compact([](JsonWriter& w) { w.begin_array().end_array(); }),
            "[]");
}

TEST(Json, ScalarFields) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_object()
        .field("name", "egtsim")
        .field("ssets", 64)
        .field("rate", 0.5)
        .field("ok", true)
        .key("nothing")
        .null()
        .end_object();
  });
  EXPECT_EQ(out,
            "{\"name\":\"egtsim\",\"ssets\":64,\"rate\":0.5,\"ok\":true,"
            "\"nothing\":null}");
}

TEST(Json, NestedContainers) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_object().key("xs").begin_array();
    w.value(1).value(2);
    w.begin_object().field("deep", false).end_object();
    w.end_array().end_object();
  });
  EXPECT_EQ(out, "{\"xs\":[1,2,{\"deep\":false}]}");
}

TEST(Json, PrettyPrintingIndents) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object().field("a", 1).end_object();
  EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::escape("say \"hi\"\n"), "say \\\"hi\\\"\\n");
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(compact([](JsonWriter& w) {
              w.begin_array()
                  .value(std::numeric_limits<double>::infinity())
                  .value(std::nan(""))
                  .end_array();
            }),
            "[null,null]");
}

TEST(Json, CompletionTracking) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  EXPECT_FALSE(w.complete());
  w.end_object();
  EXPECT_TRUE(w.complete());
}

TEST(Json, MisuseIsRejected) {
  {
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.begin_object();
    EXPECT_THROW(w.value(1), std::invalid_argument);  // member without key
  }
  {
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::invalid_argument);  // key inside array
  }
  {
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.begin_object().key("k");
    EXPECT_THROW(w.key("again"), std::invalid_argument);  // two keys
  }
  {
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.begin_object().end_object();
    EXPECT_THROW(w.begin_object(), std::invalid_argument);  // second root
  }
  {
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::invalid_argument);  // mismatch
  }
}

TEST(Json, Uint64RoundTripsExactly) {
  const std::uint64_t big = 0xffffffffffffffffULL;
  EXPECT_EQ(compact([&](JsonWriter& w) {
              w.begin_array().value(big).end_array();
            }),
            "[18446744073709551615]");
}

TEST(JsonValue, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(JsonValue::parse("42").as_u64(), 42u);
}

TEST(JsonValue, ParsesNestedContainers) {
  const auto doc = JsonValue::parse(
      R"({"xs": [1, 2, {"deep": false}], "name": "egtsim"})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.size(), 2u);
  const auto& xs = doc.at("xs");
  ASSERT_TRUE(xs.is_array());
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_DOUBLE_EQ(xs.items()[1].as_number(), 2.0);
  EXPECT_EQ(xs.items()[2].at("deep").as_bool(), false);
  EXPECT_EQ(doc.at("name").as_string(), "egtsim");
  EXPECT_TRUE(doc.has("name"));
  EXPECT_FALSE(doc.has("missing"));
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonValue, KeepsMembersInDocumentOrder) {
  const auto doc = JsonValue::parse(R"({"z": 1, "a": 2})");
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "z");
  EXPECT_EQ(doc.members()[1].first, "a");
}

TEST(JsonValue, DecodesStringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\nd\te")").as_string(),
            "a\"b\\c\nd\te");
  EXPECT_EQ(JsonValue::parse("\"\\u0041\"").as_string(), "A");
  // Non-ASCII \u escapes come back as UTF-8.
  EXPECT_EQ(JsonValue::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
}

TEST(JsonValue, RoundTripsWriterOutput) {
  const std::string out = compact([](JsonWriter& w) {
    w.begin_object()
        .field("name", "egtsim")
        .field("ssets", 64)
        .field("rate", 0.5)
        .field("ok", true)
        .key("nothing")
        .null()
        .key("xs")
        .begin_array()
        .value(1)
        .value(2)
        .end_array()
        .end_object();
  });
  const auto doc = JsonValue::parse(out);
  EXPECT_EQ(doc.at("name").as_string(), "egtsim");
  EXPECT_EQ(doc.at("ssets").as_u64(), 64u);
  EXPECT_DOUBLE_EQ(doc.at("rate").as_number(), 0.5);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_TRUE(doc.at("nothing").is_null());
  EXPECT_EQ(doc.at("xs").size(), 2u);
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("tru"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{} extra"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("nan"), std::runtime_error);
}

TEST(JsonValue, TypeMismatchThrows) {
  const auto doc = JsonValue::parse("{\"a\": 1}");
  EXPECT_THROW(doc.at("a").as_string(), std::runtime_error);
  EXPECT_THROW(doc.at("a").as_bool(), std::runtime_error);
  EXPECT_THROW(doc.at("missing"), std::runtime_error);
  EXPECT_THROW(doc.at("a").items(), std::runtime_error);
}

}  // namespace
}  // namespace egt::util
