#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace egt::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "egt_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b"});
    csv.row({std::string("1"), std::string("x")});
    csv.row({2.0, 3.5});
  }
  EXPECT_EQ(slurp(path_), "a,b\n1,x\n2,3.5\n");
}

TEST_F(CsvTest, RejectsWidthMismatch) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.row({std::string("only-one")}), std::invalid_argument);
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(FmtNum, IntegersAreBare) {
  EXPECT_EQ(fmt_num(3.0), "3");
  EXPECT_EQ(fmt_num(-17.0), "-17");
  EXPECT_EQ(fmt_num(1048576.0), "1048576");
}

TEST(FmtNum, FractionsKeepPrecision) {
  EXPECT_EQ(fmt_num(0.25), "0.25");
  EXPECT_EQ(fmt_num(2.5e-07), "2.5e-07");
}

}  // namespace
}  // namespace egt::util
