#include "par/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

namespace egt::par {
namespace {

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) ++hits[i];
  });
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (std::uint64_t n : {1u, 2u, 17u, 1000u, 4096u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::uint64_t b, std::uint64_t e) {
      for (std::uint64_t i = b; i < e; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::uint64_t, std::uint64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, RepeatedEmptyRangesReturnImmediately) {
  // Regression: n == 0 must short-circuit before the job is published (no
  // lock, no CV round-trip) — a hot loop of empty ranges used to pay the
  // full wait path.
  ThreadPool pool(4);
  for (int i = 0; i < 100000; ++i) {
    pool.parallel_for(0, [](std::uint64_t, std::uint64_t) {
      FAIL() << "body must never run for an empty range";
    });
  }
}

TEST(ThreadPool, TinyJobsClaimedByCallerSkipTheWait) {
  // Regression for the completion wait: when the caller claims every chunk
  // before any worker grabs the job, nothing is outstanding and
  // parallel_for must skip the lock + CV sleep. A tight loop of
  // single-index jobs on a busy pool hits this constantly; the loop being
  // fast (and correct) is the observable.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  constexpr int kJobs = 50000;
  for (int i = 0; i < kJobs; ++i) {
    pool.parallel_for(1, [&](std::uint64_t b, std::uint64_t e) {
      total.fetch_add(e - b, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(kJobs));
}

TEST(ThreadPool, SumReductionMatchesSerial) {
  ThreadPool pool(4);
  constexpr std::uint64_t kN = 100000;
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(kN, [&](std::uint64_t b, std::uint64_t e) {
    std::uint64_t local = 0;
    for (std::uint64_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> count{0};
    pool.parallel_for(64, [&](std::uint64_t b, std::uint64_t e) {
      count.fetch_add(e - b, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 64u);
  }
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::uint64_t b, std::uint64_t) {
                          if (b == 0) throw std::runtime_error("chunk failed");
                        }),
      std::runtime_error);
  // Pool still usable afterwards.
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::uint64_t b, std::uint64_t e) {
    ok.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, SharedPoolSingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
}

TEST(ThreadPool, OversubscribedPoolsCompleteWithoutSpinning) {
  // More workers than cores, several pools at once, many small jobs: with
  // the old busy-spin completion wait this configuration burned every core
  // on yield loops; with condition-variable signalling it must simply
  // finish, with every index covered exactly once per job.
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  std::vector<std::unique_ptr<ThreadPool>> pools;
  for (int p = 0; p < 3; ++p) {
    pools.push_back(std::make_unique<ThreadPool>(2 * hw));
  }
  std::vector<std::thread> drivers;
  std::atomic<std::uint64_t> total{0};
  for (auto& pool : pools) {
    drivers.emplace_back([&pool, &total] {
      for (int round = 0; round < 20; ++round) {
        std::vector<std::atomic<int>> hits(257);
        pool->parallel_for(hits.size(), [&](std::uint64_t b, std::uint64_t e) {
          for (std::uint64_t i = b; i < e; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          }
        });
        for (auto& h : hits) ASSERT_EQ(h.load(), 1);
        total.fetch_add(hits.size(), std::memory_order_relaxed);
      }
    });
  }
  for (auto& d : drivers) d.join();
  EXPECT_EQ(total.load(), 3u * 20u * 257u);
}

}  // namespace
}  // namespace egt::par
