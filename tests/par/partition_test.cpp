#include "par/partition.hpp"

#include <gtest/gtest.h>

namespace egt::par {
namespace {

TEST(BlockPartition, EvenSplit) {
  const BlockPartition p(12, 4);
  for (std::uint64_t r = 0; r < 4; ++r) {
    EXPECT_EQ(p.count(r), 3u);
    EXPECT_EQ(p.begin(r), r * 3);
    EXPECT_EQ(p.end(r), r * 3 + 3);
  }
}

TEST(BlockPartition, RemainderGoesToFirstParts) {
  const BlockPartition p(10, 3);
  EXPECT_EQ(p.count(0), 4u);
  EXPECT_EQ(p.count(1), 3u);
  EXPECT_EQ(p.count(2), 3u);
  EXPECT_EQ(p.end(2), 10u);
}

TEST(BlockPartition, BlocksAreContiguousAndCoverEverything) {
  for (std::uint64_t items : {1u, 7u, 64u, 1000u}) {
    for (std::uint64_t parts : {1u, 2u, 3u, 7u, 64u}) {
      const BlockPartition p(items, parts);
      std::uint64_t covered = 0;
      for (std::uint64_t r = 0; r < parts; ++r) {
        ASSERT_EQ(p.begin(r), covered);
        covered = p.end(r);
      }
      ASSERT_EQ(covered, items);
    }
  }
}

TEST(BlockPartition, SizesDifferByAtMostOne) {
  const BlockPartition p(1023, 64);
  std::uint64_t lo = ~0ULL, hi = 0;
  for (std::uint64_t r = 0; r < 64; ++r) {
    lo = std::min(lo, p.count(r));
    hi = std::max(hi, p.count(r));
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(BlockPartition, OwnerIsConsistentWithBlocks) {
  for (std::uint64_t items : {5u, 17u, 100u}) {
    for (std::uint64_t parts : {1u, 3u, 4u, 9u}) {
      const BlockPartition p(items, parts);
      for (std::uint64_t i = 0; i < items; ++i) {
        const std::uint64_t o = p.owner(i);
        ASSERT_GE(i, p.begin(o));
        ASSERT_LT(i, p.end(o));
      }
    }
  }
}

TEST(BlockPartition, MorePartsThanItems) {
  const BlockPartition p(3, 5);
  EXPECT_EQ(p.count(0), 1u);
  EXPECT_EQ(p.count(2), 1u);
  EXPECT_EQ(p.count(3), 0u);
  EXPECT_EQ(p.owner(2), 2u);
}

TEST(AgentsPerProcessor, MatchesPaperTableVIIIFormula) {
  // Table VIII: population = ssets^2 agents spread over the processors.
  EXPECT_EQ(agents_per_processor(1024, 256), 4096u);
  EXPECT_EQ(agents_per_processor(2048, 256), 16384u);
  EXPECT_EQ(agents_per_processor(4096, 256), 65536u);
  EXPECT_EQ(agents_per_processor(8192, 512), 131072u);
  EXPECT_EQ(agents_per_processor(16384, 256), 1048576u);
  EXPECT_EQ(agents_per_processor(32768, 2048), 524288u);
}

}  // namespace
}  // namespace egt::par
