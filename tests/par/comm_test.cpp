#include "par/comm.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "par/runtime.hpp"

namespace egt::par {
namespace {

TEST(Comm, RankAndSize) {
  run_ranks(4, [](Comm& comm) {
    EXPECT_EQ(comm.size(), 4);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 4);
    EXPECT_EQ(comm.is_root(), comm.rank() == 0);
  });
}

TEST(Comm, PointToPointRoundTrip) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 7, 123);
      EXPECT_EQ(comm.recv_value<int>(1, 8), 321);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 7), 123);
      comm.send_value<int>(0, 8, 321);
    }
  });
}

TEST(Comm, BcastFromRoot) {
  for (int nranks : {1, 2, 3, 4, 7, 8}) {
    run_ranks(nranks, [](Comm& comm) {
      std::uint64_t value = comm.rank() == 0 ? 0xdeadbeefULL : 0;
      comm.bcast_value(value, 0);
      EXPECT_EQ(value, 0xdeadbeefULL);
    });
  }
}

TEST(Comm, BcastFromNonZeroRoot) {
  run_ranks(5, [](Comm& comm) {
    std::vector<std::byte> data;
    if (comm.rank() == 3) {
      data = {std::byte{1}, std::byte{2}, std::byte{3}};
    }
    comm.bcast(data, 3);
    ASSERT_EQ(data.size(), 3u);
    EXPECT_EQ(std::to_integer<int>(data[2]), 3);
  });
}

TEST(Comm, SequentialBcastsDoNotCrossTalk) {
  run_ranks(4, [](Comm& comm) {
    for (int round = 0; round < 20; ++round) {
      int v = comm.rank() == 0 ? round : -1;
      comm.bcast_value(v, 0);
      ASSERT_EQ(v, round);
    }
  });
}

TEST(Comm, GatherCollectsByRank) {
  run_ranks(4, [](Comm& comm) {
    std::vector<std::byte> mine(static_cast<std::size_t>(comm.rank()) + 1,
                                std::byte{static_cast<unsigned char>(comm.rank())});
    auto all = comm.gather(std::move(mine), 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        ASSERT_EQ(all[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r) + 1);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Comm, AllgatherGivesEveryoneEverything) {
  run_ranks(3, [](Comm& comm) {
    std::vector<std::byte> mine{std::byte{static_cast<unsigned char>(
        comm.rank() * 10)}};
    const auto all = comm.allgather(std::move(mine));
    ASSERT_EQ(all.size(), 3u);
    for (int r = 0; r < 3; ++r) {
      ASSERT_EQ(std::to_integer<int>(all[static_cast<std::size_t>(r)][0]),
                r * 10);
    }
  });
}

TEST(Comm, ReduceSumAtRoot) {
  run_ranks(6, [](Comm& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank()), 1.0};
    const auto out = comm.reduce(mine, Comm::ReduceOp::Sum, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(out.size(), 2u);
      EXPECT_DOUBLE_EQ(out[0], 0 + 1 + 2 + 3 + 4 + 5);
      EXPECT_DOUBLE_EQ(out[1], 6.0);
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

TEST(Comm, ReduceMinMax) {
  run_ranks(4, [](Comm& comm) {
    const double r = static_cast<double>(comm.rank());
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(r, Comm::ReduceOp::Max), 3.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(r, Comm::ReduceOp::Min), 0.0);
  });
}

TEST(Comm, AllreduceMatchesOnAllRanks) {
  for (int nranks : {1, 2, 5, 8}) {
    run_ranks(nranks, [nranks](Comm& comm) {
      const auto out = comm.allreduce({1.0}, Comm::ReduceOp::Sum);
      ASSERT_EQ(out.size(), 1u);
      EXPECT_DOUBLE_EQ(out[0], static_cast<double>(nranks));
    });
  }
}

TEST(Comm, BarrierSynchronises) {
  // Every rank increments a shared counter before the barrier; after it,
  // all ranks must observe the full count.
  std::atomic<int> counter{0};
  run_ranks(6, [&](Comm& comm) {
    counter.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(counter.load(), 6);
  });
}

TEST(Comm, TrafficAccountingIsNonZero) {
  const auto report = run_ranks_traced(4, [](Comm& comm) {
    std::uint64_t v = 7;
    comm.bcast_value(v, 0);
  });
  EXPECT_GT(report.messages, 0u);
  EXPECT_GE(report.bytes, 3 * sizeof(std::uint64_t));
}

TEST(Comm, NonBlockingRequestCompletesLate) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      auto req = comm.irecv(1, 5);
      Message out;
      // The sender stalls behind a barrier-ish exchange; the request is
      // open but not yet satisfiable.
      EXPECT_FALSE(req.test(out));
      comm.send_value<int>(1, 1, 0);  // release the sender
      const Message m = req.wait();
      EXPECT_EQ(std::to_integer<int>(m.payload[0]), 77);
    } else {
      (void)comm.recv_value<int>(0, 1);  // wait for the green light
      comm.send(0, 5, {std::byte{77}});
    }
  });
}

TEST(Comm, NonBlockingRequestTestEventuallySucceeds) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      auto req = comm.irecv(1, 9);
      Message out;
      while (!req.test(out)) {
        std::this_thread::yield();
      }
      EXPECT_TRUE(req.done());
      EXPECT_EQ(out.tag, 9);
    } else {
      comm.send(0, 9, {std::byte{1}});
    }
  });
}

TEST(Comm, CompletedRequestRejectsReuse) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      auto req = comm.irecv(1, 3);
      (void)req.wait();
      EXPECT_THROW((void)req.wait(), std::invalid_argument);
      Message m;
      EXPECT_THROW((void)req.test(m), std::invalid_argument);
    } else {
      comm.send(0, 3, {});
    }
  });
}

TEST(Comm, ExceptionInOneRankPropagates) {
  EXPECT_THROW(run_ranks(3,
                         [](Comm& comm) {
                           if (comm.rank() == 2) {
                             throw std::runtime_error("rank 2 failed");
                           }
                         }),
               std::runtime_error);
}

TEST(Comm, SingleRankCollectivesAreNoOps) {
  run_ranks(1, [](Comm& comm) {
    comm.barrier();
    int v = 9;
    comm.bcast_value(v, 0);
    EXPECT_EQ(v, 9);
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(2.5, Comm::ReduceOp::Sum), 2.5);
  });
}

}  // namespace
}  // namespace egt::par
