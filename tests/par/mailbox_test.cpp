#include "par/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace egt::par {
namespace {

Message make_msg(int src, int tag, int value) {
  Message m;
  m.source = src;
  m.tag = tag;
  m.payload.resize(1);
  m.payload[0] = static_cast<std::byte>(value);
  return m;
}

TEST(Mailbox, DeliverThenReceive) {
  Mailbox box;
  box.deliver(make_msg(1, 5, 42));
  const Message m = box.receive(1, 5);
  EXPECT_EQ(m.source, 1);
  EXPECT_EQ(m.tag, 5);
  EXPECT_EQ(std::to_integer<int>(m.payload[0]), 42);
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, WildcardsMatchAnything) {
  Mailbox box;
  box.deliver(make_msg(3, 9, 1));
  const Message m = box.receive(kAnySource, kAnyTag);
  EXPECT_EQ(m.source, 3);
  EXPECT_EQ(m.tag, 9);
}

TEST(Mailbox, SelectiveReceiveSkipsNonMatching) {
  Mailbox box;
  box.deliver(make_msg(1, 1, 10));
  box.deliver(make_msg(2, 2, 20));
  const Message m = box.receive(2, 2);
  EXPECT_EQ(std::to_integer<int>(m.payload[0]), 20);
  EXPECT_EQ(box.pending(), 1u);  // the (1,1) message is still queued
}

TEST(Mailbox, OrderPreservedPerSourceTag) {
  Mailbox box;
  box.deliver(make_msg(1, 1, 10));
  box.deliver(make_msg(1, 1, 11));
  EXPECT_EQ(std::to_integer<int>(box.receive(1, 1).payload[0]), 10);
  EXPECT_EQ(std::to_integer<int>(box.receive(1, 1).payload[0]), 11);
}

TEST(Mailbox, TryReceiveDoesNotBlock) {
  Mailbox box;
  Message m;
  EXPECT_FALSE(box.try_receive(kAnySource, kAnyTag, m));
  box.deliver(make_msg(1, 1, 5));
  EXPECT_FALSE(box.try_receive(1, 2, m));  // wrong tag
  EXPECT_TRUE(box.try_receive(1, 1, m));
  EXPECT_EQ(std::to_integer<int>(m.payload[0]), 5);
}

TEST(Mailbox, BlockingReceiveWakesOnDelivery) {
  Mailbox box;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.deliver(make_msg(7, 3, 99));
  });
  const Message m = box.receive(7, 3);  // blocks until the producer runs
  EXPECT_EQ(std::to_integer<int>(m.payload[0]), 99);
  producer.join();
}

TEST(Mailbox, ReceiveForReturnsImmediatelyWhenQueued) {
  Mailbox box;
  box.deliver(make_msg(1, 5, 42));
  const auto m = box.receive_for(1, 5, std::chrono::nanoseconds(0));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(std::to_integer<int>(m->payload[0]), 42);
}

TEST(Mailbox, ReceiveForTimesOutOnSilence) {
  Mailbox box;
  const auto t0 = std::chrono::steady_clock::now();
  const auto m = box.receive_for(1, 5, std::chrono::milliseconds(30));
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(m.has_value());
  EXPECT_GE(waited, std::chrono::milliseconds(30));
}

TEST(Mailbox, ReceiveForIgnoresNonMatchingTraffic) {
  // A message for another (source, tag) must neither satisfy the wait nor
  // get consumed by it.
  Mailbox box;
  box.deliver(make_msg(2, 9, 7));
  const auto m = box.receive_for(1, 5, std::chrono::milliseconds(20));
  EXPECT_FALSE(m.has_value());
  EXPECT_EQ(box.pending(), 1u);
}

TEST(Mailbox, ReceiveForWakesOnDelivery) {
  Mailbox box;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.deliver(make_msg(7, 3, 99));
  });
  // Deadline far beyond the delivery: the waiter must wake when the
  // message lands, not when the clock runs out.
  const auto t0 = std::chrono::steady_clock::now();
  const auto m = box.receive_for(7, 3, std::chrono::seconds(30));
  const auto waited = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(std::to_integer<int>(m->payload[0]), 99);
  EXPECT_LT(waited, std::chrono::seconds(5));
  producer.join();
}

TEST(Mailbox, ManyProducersAllDelivered) {
  Mailbox box;
  constexpr int kPerThread = 100;
  constexpr int kThreads = 4;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        box.deliver(make_msg(t, 0, i % 256));
      }
    });
  }
  int received = 0;
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    (void)box.receive(kAnySource, kAnyTag);
    ++received;
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(received, kThreads * kPerThread);
  EXPECT_EQ(box.pending(), 0u);
}

}  // namespace
}  // namespace egt::par
