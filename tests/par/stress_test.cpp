// Stress and robustness tests of the mini message-passing runtime: heavy
// interleaved traffic, repeated collectives, larger payloads, odd rank
// counts — the conditions the parallel engine creates over long runs.
#include <gtest/gtest.h>

#include <numeric>

#include "par/runtime.hpp"
#include "util/rng.hpp"

namespace egt::par {
namespace {

TEST(Stress, ManyInterleavedCollectives) {
  for (int nranks : {2, 3, 5, 8}) {
    run_ranks(nranks, [nranks](Comm& comm) {
      for (int round = 0; round < 200; ++round) {
        // bcast -> allreduce -> barrier in a tight loop; any tag confusion
        // or ordering bug deadlocks or corrupts values.
        std::uint64_t v = comm.rank() == round % nranks
                              ? static_cast<std::uint64_t>(round)
                              : 0;
        comm.bcast_value(v, round % nranks);
        ASSERT_EQ(v, static_cast<std::uint64_t>(round));
        const double sum = comm.allreduce_scalar(1.0, Comm::ReduceOp::Sum);
        ASSERT_DOUBLE_EQ(sum, static_cast<double>(nranks));
        comm.barrier();
      }
    });
  }
}

TEST(Stress, RandomPeerToPeerRing) {
  // Every rank sends a token around the ring many times with randomised
  // payload sizes; total checksum must survive.
  constexpr int kRanks = 6;
  run_ranks(kRanks, [](Comm& comm) {
    util::Xoshiro256 rng(1000 + static_cast<unsigned>(comm.rank()));
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    for (int round = 0; round < 100; ++round) {
      std::vector<std::byte> payload(1 + util::uniform_below(rng, 300));
      for (auto& b : payload) {
        b = static_cast<std::byte>(round & 0xff);
      }
      comm.send(next, /*tag=*/round, std::move(payload));
      const Message m = comm.recv(prev, round);
      ASSERT_FALSE(m.payload.empty());
      for (auto b : m.payload) {
        ASSERT_EQ(std::to_integer<int>(b), round & 0xff);
      }
    }
  });
}

TEST(Stress, LargeBroadcastPayload) {
  // A memory-six *mixed* strategy is 32 KiB; make sure multi-chunk
  // payloads traverse the tree intact.
  run_ranks(5, [](Comm& comm) {
    std::vector<std::byte> data;
    if (comm.rank() == 0) {
      data.resize(32 * 1024 + 13);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>(i * 31 & 0xff);
      }
    }
    comm.bcast(data, 0);
    ASSERT_EQ(data.size(), 32u * 1024 + 13);
    for (std::size_t i = 0; i < data.size(); i += 997) {
      ASSERT_EQ(std::to_integer<unsigned>(data[i]), (i * 31) & 0xff);
    }
  });
}

TEST(Stress, ReduceIsDeterministicAcrossRuns) {
  // The binomial combine order is fixed, so floating-point sums must be
  // bit-identical between runs (a pillar of reproducibility).
  auto run_once = [] {
    double result = 0.0;
    run_ranks(7, [&](Comm& comm) {
      // Values chosen to be rounding-sensitive under reordering.
      const double mine = 1.0 / (3.0 + comm.rank()) * 1e-3 + 1e10;
      const double sum = comm.allreduce_scalar(mine, Comm::ReduceOp::Sum);
      if (comm.rank() == 0) result = sum;
    });
    return result;
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_EQ(a, b);  // bitwise
}

TEST(Stress, GatherUnderConcurrentP2PTraffic) {
  run_ranks(4, [](Comm& comm) {
    // Unrelated p2p messages in flight must not be swallowed by the
    // collective's tag matching.
    const int buddy = comm.rank() ^ 1;
    comm.send_value<int>(buddy, /*tag=*/4242, comm.rank());
    auto blocks = comm.gather(
        std::vector<std::byte>{std::byte{static_cast<unsigned char>(
            comm.rank())}},
        0);
    if (comm.rank() == 0) {
      for (int r = 0; r < 4; ++r) {
        ASSERT_EQ(std::to_integer<int>(blocks[static_cast<std::size_t>(r)][0]),
                  r);
      }
    }
    EXPECT_EQ(comm.recv_value<int>(buddy, 4242), buddy);
  });
}

TEST(Stress, RepeatedRunsDoNotLeakState) {
  // Contexts are independent: back-to-back runs with the same lambda must
  // behave identically.
  for (int iteration = 0; iteration < 20; ++iteration) {
    const auto traffic = run_ranks_traced(3, [](Comm& comm) {
      std::uint64_t v = comm.rank() == 0 ? 9 : 0;
      comm.bcast_value(v, 0);
      ASSERT_EQ(v, 9u);
    });
    ASSERT_EQ(traffic.messages, 2u);
  }
}

}  // namespace
}  // namespace egt::par
