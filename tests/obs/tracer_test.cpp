// Flight-recorder unit + concurrency tests (obs/tracer.hpp):
//   * disabled recording is a no-op (the default state must cost nothing);
//   * a session serializes to schema-valid Chrome trace-event JSON with
//     rank/thread attribution, args and balanced flow arrows;
//   * ring wrap-around reports dropped events instead of losing them
//     silently;
//   * concurrent recording from rank threads, pool workers and plain
//     threads is race-free (this test is in the TSan CI job's net).
//
// The tracer is a process-wide singleton, so every test tears down with
// stop() + clear() to leave no state for its neighbours.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/tracer.hpp"
#include "par/runtime.hpp"
#include "par/threadpool.hpp"
#include "util/json.hpp"

namespace egt::obs {
namespace {

class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::instance().stop();
    Tracer::instance().clear();
  }
};

util::JsonValue serialize() {
  std::ostringstream os;
  Tracer::instance().write_chrome_trace(os);
  return util::JsonValue::parse(os.str());
}

TEST_F(TracerTest, DisabledRecordsNothing) {
  ASSERT_FALSE(Tracer::enabled());
  {
    TraceSpan span("test.span", kCatEngine);
    trace_instant("test.instant", kCatEngine);
    trace_flow_start(Tracer::new_flow_id());  // id 0 while disabled
  }
  EXPECT_EQ(Tracer::instance().recorded_events(), 0u);
  EXPECT_EQ(Tracer::new_flow_id(), 0u);
}

TEST_F(TracerTest, SerializesSchemaValidChromeTrace) {
  Tracer& tracer = Tracer::instance();
  tracer.start();
  tracer.set_meta("config_summary", "unit-test");
  {
    TraceSpan span(kGenerationSpan, kCatEngine, "gen", 7);
    trace_instant("ft.kill", kCatFt, "gen", 7);
  }
  const std::uint64_t flow = Tracer::new_flow_id();
  ASSERT_NE(flow, 0u);
  trace_flow_start(flow);
  trace_flow_end(flow);
  tracer.stop();

  const util::JsonValue doc = serialize();
  EXPECT_EQ(doc.at("otherData").at("schema").as_string(), "egt.trace/v1");
  EXPECT_EQ(doc.at("otherData").at("config_summary").as_string(),
            "unit-test");
  EXPECT_EQ(doc.at("otherData").at("dropped_events").as_u64(), 0u);

  bool saw_span = false, saw_instant = false;
  bool saw_flow_s = false, saw_flow_f = false;
  for (const auto& e : doc.at("traceEvents").items()) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "M") continue;  // thread/process name metadata
    if (ph == "X") {
      saw_span = true;
      EXPECT_EQ(e.at("name").as_string(), kGenerationSpan);
      EXPECT_EQ(e.at("cat").as_string(), kCatEngine);
      EXPECT_GE(e.at("dur").as_number(), 0.0);
      EXPECT_EQ(e.at("args").at("gen").as_u64(), 7u);
    } else if (ph == "i") {
      saw_instant = true;
      EXPECT_EQ(e.at("name").as_string(), "ft.kill");
    } else if (ph == "s") {
      saw_flow_s = true;
      EXPECT_EQ(e.at("id").as_u64(), flow);
    } else if (ph == "f") {
      saw_flow_f = true;
      EXPECT_EQ(e.at("id").as_u64(), flow);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_flow_s);
  EXPECT_TRUE(saw_flow_f);
}

TEST_F(TracerTest, RingWrapCountsDroppedEvents) {
  constexpr std::size_t kCapacity = 64;
  constexpr std::size_t kRecorded = 1000;
  Tracer& tracer = Tracer::instance();
  tracer.start(kCapacity);
  for (std::size_t i = 0; i < kRecorded; ++i) {
    trace_instant("wrap.event", kCatEngine, "i", i);
  }
  tracer.stop();
  EXPECT_LE(tracer.recorded_events(), kCapacity);
  EXPECT_EQ(tracer.recorded_events() + tracer.dropped_events(), kRecorded);

  const util::JsonValue doc = serialize();
  EXPECT_EQ(doc.at("otherData").at("dropped_events").as_u64(),
            tracer.dropped_events());
  // The ring keeps the newest events: the final one must have survived.
  bool saw_last = false;
  for (const auto& e : doc.at("traceEvents").items()) {
    if (e.at("ph").as_string() != "i") continue;
    if (e.at("args").at("i").as_u64() == kRecorded - 1) saw_last = true;
  }
  EXPECT_TRUE(saw_last);
}

TEST_F(TracerTest, RankAttributionFollowsScope) {
  Tracer& tracer = Tracer::instance();
  tracer.start();
  EXPECT_EQ(Tracer::current_pid(), 0);
  {
    TraceRankScope scope(3);
    trace_instant("attr.inner", kCatEngine);
  }
  trace_instant("attr.outer", kCatEngine);
  tracer.stop();

  const util::JsonValue doc = serialize();
  for (const auto& e : doc.at("traceEvents").items()) {
    if (e.at("ph").as_string() == "M") continue;
    const std::string name = e.at("name").as_string();
    if (name == "attr.inner") EXPECT_EQ(e.at("pid").as_u64(), 3u);
    if (name == "attr.outer") EXPECT_EQ(e.at("pid").as_u64(), 0u);
  }
}

// Rank threads exchanging traced messages while pool workers and plain
// threads record into their own slabs: the lock-free record path and the
// slab registry must be race-free, and every comm flow must balance.
TEST_F(TracerTest, ConcurrentRecordingFromRanksPoolAndThreads) {
  constexpr int kRanks = 4;
  constexpr int kMessages = 50;
  Tracer& tracer = Tracer::instance();
  tracer.start();

  std::thread extra([] {
    for (int i = 0; i < 500; ++i) {
      TraceSpan span("extra.work", kCatEngine, "i",
                     static_cast<std::uint64_t>(i));
    }
  });
  par::ThreadPool pool(3);
  pool.parallel_for(256, [](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) {
      trace_instant("pool.body", kCatEngine, "i", i);
    }
  });
  par::run_ranks(kRanks, [&](par::Comm& comm) {
    const TraceRankScope rank_scope(comm.rank());
    // Ring exchange: every rank sends kMessages to its right neighbour.
    const int right = (comm.rank() + 1) % kRanks;
    for (int i = 0; i < kMessages; ++i) {
      comm.send(right, /*tag=*/1, std::vector<std::byte>(16));
      (void)comm.recv(par::kAnySource, 1);
    }
  });
  extra.join();
  tracer.stop();

  const util::JsonValue doc = serialize();
  std::size_t flow_s = 0, flow_f = 0, spans = 0;
  for (const auto& e : doc.at("traceEvents").items()) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "s") ++flow_s;
    if (ph == "f") ++flow_f;
    if (ph == "X") ++spans;
  }
  EXPECT_EQ(flow_s, static_cast<std::size_t>(kRanks) * kMessages);
  EXPECT_EQ(flow_f, flow_s);  // every sent message was received
  EXPECT_GT(spans, 0u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST_F(TracerTest, ClearForgetsEventsAndMeta) {
  Tracer& tracer = Tracer::instance();
  tracer.start();
  trace_instant("gone", kCatEngine);
  tracer.set_meta("gone_key", "gone_value");
  tracer.stop();
  tracer.clear();
  EXPECT_EQ(tracer.recorded_events(), 0u);
  const util::JsonValue doc = serialize();
  EXPECT_EQ(doc.at("traceEvents").items().size(), 0u);
  EXPECT_FALSE(doc.at("otherData").has("gone_key"));
}

}  // namespace
}  // namespace egt::obs
