// Instrument semantics: counters, gauges, histogram timers, the RAII
// ScopedTimer and cross-rank registry merging.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace egt::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, KeepsLastWrittenValue) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(Histogram, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.total_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0.0);
}

TEST(Histogram, TracksCountTotalAndExtremes) {
  Histogram h;
  h.record_seconds(0.002);
  h.record_seconds(0.010);
  h.record_seconds(0.004);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.total_seconds(), 0.016, 1e-12);
  EXPECT_NEAR(h.min_seconds(), 0.002, 1e-9);
  EXPECT_NEAR(h.max_seconds(), 0.010, 1e-9);
}

TEST(Histogram, BucketCountsSumToSampleCount) {
  Histogram h;
  // Spread over several decades so multiple buckets fill.
  for (double s : {1e-9, 1e-7, 1e-5, 1e-3, 1e-3, 0.1}) h.record_seconds(s);
  const auto buckets = h.buckets();
  const std::uint64_t total =
      std::accumulate(buckets.begin(), buckets.end(), std::uint64_t{0});
  EXPECT_EQ(total, h.count());
  // 1 ms and 0.1 s land six bit-positions apart: distinct buckets.
  std::size_t nonempty = 0;
  for (auto b : buckets) nonempty += b != 0;
  EXPECT_GE(nonempty, 4u);
}

TEST(Histogram, MergeAddsSamples) {
  Histogram a, b;
  a.record_seconds(0.001);
  b.record_seconds(0.003);
  b.record_seconds(0.0005);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_NEAR(a.total_seconds(), 0.0045, 1e-12);
  EXPECT_NEAR(a.min_seconds(), 0.0005, 1e-9);
  EXPECT_NEAR(a.max_seconds(), 0.003, 1e-9);
}

TEST(Histogram, MergingAnEmptyHistogramChangesNothing) {
  Histogram a, empty;
  a.record_seconds(0.002);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_NEAR(a.min_seconds(), 0.002, 1e-9);
}

TEST(ScopedTimer, RecordsOneSampleOnScopeExit) {
  Histogram h;
  {
    ScopedTimer t(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max_seconds(), 0.001);
}

TEST(ScopedTimer, StopIsIdempotent) {
  Histogram h;
  ScopedTimer t(h);
  t.stop();
  t.stop();
  EXPECT_EQ(h.count(), 1u);
}

TEST(ScopedTimer, NullHistogramIsANoOp) {
  ScopedTimer t(static_cast<Histogram*>(nullptr));
  t.stop();  // must not crash
}

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("engine.generations");
  Counter& b = reg.counter("engine.generations");
  EXPECT_EQ(&a, &b);
  a.inc(5);
  EXPECT_EQ(reg.counter("engine.generations").value(), 5u);
  // Different names, different instruments.
  EXPECT_NE(&reg.histogram("x"), &reg.histogram("y"));
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("b").inc(2);
  reg.counter("a").inc(1);
  reg.gauge("g").set(7.0);
  reg.histogram("phase.game_play").record_seconds(0.5);
  reg.histogram("phase.apply_update").record_seconds(0.25);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a");
  EXPECT_EQ(snap.counters[1].name, "b");
  EXPECT_EQ(snap.counter_value("b"), 2u);
  EXPECT_EQ(snap.counter_value("missing"), 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 7.0);
  EXPECT_NE(snap.find_histogram("phase.game_play"), nullptr);
  EXPECT_EQ(snap.find_counter("zzz"), nullptr);
  EXPECT_NEAR(snap.histogram_seconds("phase.game_play"), 0.5, 1e-9);
  // phase_total_seconds sums only the "phase." histograms.
  reg.histogram("other.timer").record_seconds(10.0);
  EXPECT_NEAR(reg.snapshot().phase_total_seconds(), 0.75, 1e-9);
}

TEST(MetricsRegistry, MergeAddsCountersAndHistograms) {
  MetricsRegistry a, b;
  a.counter("engine.pairs_evaluated").inc(10);
  b.counter("engine.pairs_evaluated").inc(32);
  b.counter("only_in_b").inc(1);
  a.histogram("phase.game_play").record_seconds(0.25);
  b.histogram("phase.game_play").record_seconds(0.75);
  b.gauge("engine.ranks").set(4.0);
  a.merge(b);
  const auto snap = a.snapshot();
  EXPECT_EQ(snap.counter_value("engine.pairs_evaluated"), 42u);
  EXPECT_EQ(snap.counter_value("only_in_b"), 1u);
  const auto* h = snap.find_histogram("phase.game_play");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_NEAR(h->total_seconds, 1.0, 1e-9);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 4.0);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreNotLost) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  Histogram& h = reg.histogram("spans");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record_seconds(1e-6);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

HistogramSample sample_of(const std::vector<double>& seconds) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("q");
  for (const double s : seconds) h.record_seconds(s);
  return *reg.snapshot().find_histogram("q");
}

TEST(HistogramQuantiles, EmptyHistogramReportsZero) {
  const HistogramSample s = sample_of({});
  EXPECT_EQ(s.quantile_seconds(0.50), 0.0);
  EXPECT_EQ(s.quantile_seconds(0.99), 0.0);
}

TEST(HistogramQuantiles, SingleSampleClampsToItsValue) {
  const HistogramSample s = sample_of({0.004});
  // One sample: every quantile is clamped into [min, max] = {0.004}.
  EXPECT_DOUBLE_EQ(s.quantile_seconds(0.0), 0.004);
  EXPECT_DOUBLE_EQ(s.quantile_seconds(0.50), 0.004);
  EXPECT_DOUBLE_EQ(s.quantile_seconds(1.0), 0.004);
}

TEST(HistogramQuantiles, OrderedAndBucketAccurate) {
  // 90 fast samples (~1 us) and 10 slow ones (~1 ms): the median must
  // stay in the fast bucket, p99 in the slow one. Power-of-two buckets
  // bound the estimate within a factor of two of the true value.
  std::vector<double> seconds;
  for (int i = 0; i < 90; ++i) seconds.push_back(1e-6);
  for (int i = 0; i < 10; ++i) seconds.push_back(1e-3);
  const HistogramSample s = sample_of(seconds);

  const double p50 = s.quantile_seconds(0.50);
  const double p95 = s.quantile_seconds(0.95);
  const double p99 = s.quantile_seconds(0.99);
  EXPECT_GE(p50, s.min_seconds);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, s.max_seconds);
  EXPECT_LT(p50, 4e-6);
  EXPECT_GT(p99, 2.5e-4);
}

TEST(PhaseNames, CoverTheFiveGenerationPhases) {
  ASSERT_EQ(std::size(phase::kAll), 5u);
  for (const char* name : phase::kAll) {
    EXPECT_EQ(std::string_view(name).substr(0, 6), "phase.");
  }
}

}  // namespace
}  // namespace egt::obs
