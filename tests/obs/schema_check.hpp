// Shared validator for the egt.run_manifest/v3 schema (manifest.hpp).
// Used by the unit round-trip test and the serial/parallel integration
// test, so the documented schema is enforced in one place.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "obs/manifest.hpp"
#include "util/json.hpp"

namespace egt::obs::testing {

inline void expect_section_object(const util::JsonValue& doc,
                                  const std::string& key) {
  ASSERT_TRUE(doc.has(key)) << "missing section: " << key;
  EXPECT_TRUE(doc.at(key).is_object()) << key << " must be an object";
}

/// Assert a histogram body carries ordered latency quantiles:
/// min <= p50 <= p95 <= p99 <= max (v2 addition).
inline void expect_quantiles(const util::JsonValue& h,
                             const std::string& name) {
  ASSERT_TRUE(h.has("p50_seconds")) << name;
  ASSERT_TRUE(h.has("p95_seconds")) << name;
  ASSERT_TRUE(h.has("p99_seconds")) << name;
  const double p50 = h.at("p50_seconds").as_number();
  const double p95 = h.at("p95_seconds").as_number();
  const double p99 = h.at("p99_seconds").as_number();
  EXPECT_GE(p50, h.at("min_seconds").as_number()) << name;
  EXPECT_GE(p95, p50) << name;
  EXPECT_GE(p99, p95) << name;
  EXPECT_LE(p99, h.at("max_seconds").as_number()) << name;
}

/// Assert `doc` is a well-formed egt.run_manifest/v3 document.
/// `expect_traffic` demands the parallel-only "traffic" section too.
inline void expect_valid_manifest(const util::JsonValue& doc,
                                  bool expect_traffic) {
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema").as_string(), kManifestSchema);
  EXPECT_TRUE(doc.at("tool").is_string());
  EXPECT_TRUE(doc.at("git_describe").is_string());
  EXPECT_FALSE(doc.at("git_describe").as_string().empty());

  expect_section_object(doc, "config");
  EXPECT_TRUE(doc.at("config").at("summary").is_string());
  EXPECT_TRUE(doc.at("config").at("fingerprint").is_number());

  // v3: the game block is optional (benches omit it) but, when present,
  // must describe a complete GameSpec.
  if (doc.has("game")) {
    const auto& g = doc.at("game");
    ASSERT_TRUE(g.is_object());
    const std::string kind = g.at("kind").as_string();
    EXPECT_TRUE(kind == "matrix" || kind == "public_goods") << kind;
    EXPECT_TRUE(g.at("name").is_string());
    EXPECT_GE(g.at("actions").as_u64(), 2u);
    const std::string play = g.at("play").as_string();
    EXPECT_TRUE(play == "iterated" || play == "one_shot") << play;
    ASSERT_TRUE(g.at("labels").is_array());
    EXPECT_EQ(g.at("labels").items().size(), g.at("actions").as_u64());
    EXPECT_GE(g.at("rounds").as_u64(), 1u);
    EXPECT_TRUE(g.at("noise").is_number());
    EXPECT_EQ(g.at("matrix_hash").as_string().size(), 16u);
    if (kind == "public_goods") {
      EXPECT_GT(g.at("pgg_r").as_number(), 0.0);
      EXPECT_GT(g.at("pgg_cost").as_number(), 0.0);
      EXPECT_TRUE(g.at("pgg_k").is_number());
    }
  }

  expect_section_object(doc, "run");
  const auto& run = doc.at("run");
  EXPECT_TRUE(run.at("ranks").is_number());
  EXPECT_TRUE(run.at("generations").is_number());
  EXPECT_GE(run.at("wall_seconds").as_number(), 0.0);

  expect_section_object(doc, "phases");
  for (const auto& [name, ph] : doc.at("phases").members()) {
    ASSERT_TRUE(ph.is_object()) << "phase " << name;
    // Phase keys have the "phase." prefix stripped.
    EXPECT_EQ(name.find("phase."), std::string::npos);
    EXPECT_GE(ph.at("seconds").as_number(), 0.0);
    EXPECT_GE(ph.at("count").as_number(), 0.0);
    EXPECT_GE(ph.at("min_seconds").as_number(), 0.0);
    EXPECT_GE(ph.at("max_seconds").as_number(),
              ph.at("min_seconds").as_number());
    expect_quantiles(ph, name);
  }

  expect_section_object(doc, "timers");
  for (const auto& [name, tm] : doc.at("timers").members()) {
    ASSERT_TRUE(tm.is_object()) << "timer " << name;
    // Timers keep their full dotted name (only "phase." is special-cased).
    EXPECT_NE(name.rfind("phase.", 0), 0u) << name;
    EXPECT_GE(tm.at("seconds").as_number(), 0.0);
    EXPECT_GE(tm.at("count").as_number(), 0.0);
    expect_quantiles(tm, name);
  }

  expect_section_object(doc, "counters");
  for (const auto& [name, v] : doc.at("counters").members()) {
    EXPECT_TRUE(v.is_number()) << "counter " << name;
  }
  expect_section_object(doc, "gauges");

  if (!expect_traffic) return;
  expect_section_object(doc, "traffic");
  const auto& t = doc.at("traffic");
  EXPECT_TRUE(t.at("bytes").is_number());
  EXPECT_TRUE(t.at("messages").is_number());
  expect_section_object(t, "p2p");
  expect_section_object(t, "broadcast");
  // The two classes partition the totals.
  EXPECT_EQ(t.at("p2p").at("messages").as_u64() +
                t.at("broadcast").at("messages").as_u64(),
            t.at("messages").as_u64());
  EXPECT_EQ(t.at("p2p").at("bytes").as_u64() +
                t.at("broadcast").at("bytes").as_u64(),
            t.at("bytes").as_u64());
  ASSERT_TRUE(t.at("per_rank").is_array());
  for (const auto& r : t.at("per_rank").items()) {
    EXPECT_TRUE(r.at("rank").is_number());
    EXPECT_TRUE(r.at("p2p_bytes").is_number());
    EXPECT_TRUE(r.at("p2p_messages").is_number());
    EXPECT_TRUE(r.at("bcast_bytes").is_number());
    EXPECT_TRUE(r.at("bcast_messages").is_number());
  }
}

}  // namespace egt::obs::testing
