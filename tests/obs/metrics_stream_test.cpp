// Live-telemetry stream tests (obs/metrics_stream.hpp): the NDJSON lines
// must parse, carry the documented egt.metrics_stream/v1 fields in
// generation order, respect the sampling gate, deduplicate failover
// replays, and degrade to an inert writer on an unwritable path.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_stream.hpp"
#include "util/json.hpp"

namespace egt::obs {
namespace {

core::SimConfig small_config() {
  core::SimConfig cfg;
  cfg.ssets = 16;
  cfg.memory = 1;
  cfg.generations = 20;
  cfg.seed = 42;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  return cfg;
}

std::vector<util::JsonValue> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<util::JsonValue> docs;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) docs.push_back(util::JsonValue::parse(line));
  }
  return docs;
}

TEST(MetricsStream, WritesSchemaValidLinesInGenerationOrder) {
  const std::string path = ::testing::TempDir() + "egt_stream.ndjson";
  const core::SimConfig cfg = small_config();
  MetricsRegistry registry;
  core::Engine engine(cfg, &registry);

  MetricsStreamWriter writer({path, /*every=*/1});
  ASSERT_TRUE(writer.ok());
  for (std::uint64_t gen = 0; gen < 5; ++gen) {
    engine.step();
    writer.on_generation(gen, engine.population(), registry);
  }
  EXPECT_EQ(writer.lines_written(), 5u);

  const auto docs = read_lines(path);
  ASSERT_EQ(docs.size(), 5u);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    const auto& d = docs[i];
    EXPECT_EQ(d.at("schema").as_string(), kMetricsStreamSchema);
    const std::uint64_t gen = d.at("generation").as_u64();
    if (i > 0) EXPECT_GT(gen, prev);
    prev = gen;
    EXPECT_GE(d.at("wall_seconds").as_number(), 0.0);
    EXPECT_TRUE(d.at("mean_fitness").is_number());
    // All five canonical phases, "phase." prefix stripped.
    for (const char* name : phase::kAll) {
      EXPECT_TRUE(d.at("phases").has(std::string(name).substr(6))) << name;
    }
    EXPECT_TRUE(d.at("counters").at("games_played").is_number());
    EXPECT_TRUE(d.at("counters").at("pairs_evaluated").is_number());
    EXPECT_GE(d.at("strategy_classes").as_u64(), 1u);
    EXPECT_TRUE(d.at("top_class_counts").is_array());
  }
}

TEST(MetricsStream, SamplingGateAndWants) {
  const std::string path = ::testing::TempDir() + "egt_stream_every.ndjson";
  const core::SimConfig cfg = small_config();
  MetricsRegistry registry;
  core::Engine engine(cfg, &registry);
  engine.step();

  MetricsStreamWriter writer({path, /*every=*/5});
  ASSERT_TRUE(writer.ok());
  for (std::uint64_t gen = 0; gen < 20; ++gen) {
    EXPECT_EQ(writer.wants(gen), gen % 5 == 0) << gen;
    writer.on_generation(gen, engine.population(), registry);
  }
  EXPECT_EQ(writer.lines_written(), 4u);  // gens 0, 5, 10, 15
  const auto docs = read_lines(path);
  ASSERT_EQ(docs.size(), 4u);
  EXPECT_EQ(docs.back().at("generation").as_u64(), 15u);
}

TEST(MetricsStream, DeduplicatesReplayedGenerations) {
  const std::string path = ::testing::TempDir() + "egt_stream_dedup.ndjson";
  const core::SimConfig cfg = small_config();
  MetricsRegistry registry;
  core::Engine engine(cfg, &registry);
  engine.step();

  MetricsStreamWriter writer({path, 1});
  ASSERT_TRUE(writer.ok());
  writer.on_generation(3, engine.population(), registry);
  // A failover replay re-commits generations the old master already
  // streamed; the writer must drop them.
  writer.on_generation(3, engine.population(), registry);
  writer.on_generation(2, engine.population(), registry);
  writer.on_generation(4, engine.population(), registry);
  EXPECT_EQ(writer.lines_written(), 2u);
  const auto docs = read_lines(path);
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(docs[0].at("generation").as_u64(), 3u);
  EXPECT_EQ(docs[1].at("generation").as_u64(), 4u);
}

TEST(MetricsStream, UnwritablePathStaysInert) {
  const core::SimConfig cfg = small_config();
  MetricsRegistry registry;
  core::Engine engine(cfg, &registry);
  engine.step();

  MetricsStreamWriter writer(
      {"/nonexistent-dir-egt/stream.ndjson", /*every=*/1});
  EXPECT_FALSE(writer.ok());
  EXPECT_FALSE(writer.wants(0));
  // Emission on a failed writer must be a harmless no-op, not a throw —
  // run_simulation warns once and continues the run.
  writer.on_generation(0, engine.population(), registry);
  EXPECT_EQ(writer.lines_written(), 0u);
}

TEST(MetricsStream, SerialObserverAdapterStreamsEveryGeneration) {
  const std::string path = ::testing::TempDir() + "egt_stream_obs.ndjson";
  core::SimConfig cfg = small_config();
  cfg.generations = 10;
  MetricsRegistry registry;
  core::Engine engine(cfg, &registry);
  MetricsStreamWriter writer({path, 1});
  ASSERT_TRUE(writer.ok());
  MetricsStreamObserver observer(writer, registry);
  engine.run_all(&observer);
  EXPECT_EQ(writer.lines_written(), cfg.generations);
}

}  // namespace
}  // namespace egt::obs
