// MetricsObserver: CSV time-series schema, sampling interval and the
// serial engine producing the same per-phase columns the manifests report.
#include "obs/metrics_observer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/engine.hpp"

namespace egt::obs {
namespace {

core::SimConfig config() {
  core::SimConfig cfg;
  cfg.ssets = 8;
  cfg.memory = 1;
  cfg.generations = 20;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  cfg.seed = 3;
  return cfg;
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

TEST(MetricsObserver, WritesHeaderAndSampledRows) {
  const std::string path = ::testing::TempDir() + "egt_metrics_ts.csv";
  MetricsRegistry reg;
  core::Engine engine(config(), &reg);
  {
    MetricsObserverOptions opts;
    opts.csv_path = path;
    opts.sample_interval = 5;
    MetricsObserver obs(reg, opts);
    engine.run(20, &obs);
    EXPECT_EQ(obs.samples_written(), 4u);  // generations 0, 5, 10, 15
  }  // destructor closes the CSV

  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  const auto cols = split_csv_line(header);
  const auto expected = MetricsObserver::csv_header();
  ASSERT_EQ(cols.size(), expected.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    EXPECT_EQ(cols[i], expected[i]) << "column " << i;
  }

  std::string line;
  int rows = 0;
  std::vector<std::string> last;
  while (std::getline(in, line)) {
    last = split_csv_line(line);
    ASSERT_EQ(last.size(), expected.size());
    ++rows;
  }
  EXPECT_EQ(rows, 4);
  // The final row reflects a live registry: pairs_evaluated of the
  // 8-SSet all-pairs evaluation is at least C(8,2) = 28 already.
  EXPECT_GE(std::stod(last[4]), 28.0);
  std::remove(path.c_str());
}

TEST(MetricsObserver, SamplesEveryGenerationWhenIntervalIsZero) {
  const std::string path = ::testing::TempDir() + "egt_metrics_ts_all.csv";
  MetricsRegistry reg;
  core::Engine engine(config(), &reg);
  {
    MetricsObserverOptions opts;
    opts.csv_path = path;
    opts.sample_interval = 0;
    MetricsObserver obs(reg, opts);
    engine.run(20, &obs);
    EXPECT_EQ(obs.samples_written(), 20u);
  }
  std::remove(path.c_str());
}

TEST(MetricsObserver, NoCsvPathMeansNoRows) {
  MetricsRegistry reg;
  core::Engine engine(config(), &reg);
  MetricsObserverOptions opts;  // csv_path empty, progress off
  MetricsObserver obs(reg, opts);
  engine.run(20, &obs);
  EXPECT_EQ(obs.samples_written(), 0u);
}

TEST(MetricsObserver, PhaseColumnsAreMonotonicallyNonDecreasing) {
  const std::string path = ::testing::TempDir() + "egt_metrics_mono.csv";
  MetricsRegistry reg;
  core::Engine engine(config(), &reg);
  {
    MetricsObserverOptions opts;
    opts.csv_path = path;
    opts.sample_interval = 2;
    MetricsObserver obs(reg, opts);
    engine.run(20, &obs);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  double prev_game = -1.0, prev_wall = -1.0;
  while (std::getline(in, line)) {
    const auto cells = split_csv_line(line);
    const double wall = std::stod(cells[1]);
    const double game = std::stod(cells[8]);  // phase_game_play_s
    EXPECT_GE(wall, prev_wall);
    EXPECT_GE(game, prev_game);
    prev_wall = wall;
    prev_game = game;
  }
  EXPECT_GE(prev_game, 0.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace egt::obs
