// Manifest writer round-trip: emit JSON, parse it back with
// util::JsonValue and validate against the documented schema.
#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "schema_check.hpp"
#include "util/json.hpp"

namespace egt::obs {
namespace {

MetricsRegistry& example_registry(MetricsRegistry& reg) {
  reg.counter("engine.generations").inc(100);
  reg.counter("engine.pairs_evaluated").inc(4950);
  reg.gauge("engine.ranks").set(4.0);
  reg.histogram(phase::kGamePlay).record_seconds(0.5);
  reg.histogram(phase::kGamePlay).record_seconds(0.25);
  reg.histogram(phase::kApplyUpdate).record_seconds(0.125);
  reg.histogram("io.checkpoint").record_seconds(0.01);
  return reg;
}

par::TrafficReport example_traffic() {
  par::TrafficReport t;
  t.per_rank.resize(2);
  t.per_rank[0].bcast_bytes = 300;
  t.per_rank[0].bcast_messages = 30;
  t.per_rank[1].p2p_bytes = 100;
  t.per_rank[1].p2p_messages = 10;
  t.bcast_bytes = 300;
  t.bcast_messages = 30;
  t.p2p_bytes = 100;
  t.p2p_messages = 10;
  t.bytes = 400;
  t.messages = 40;
  return t;
}

TEST(Manifest, SerialRoundTripMatchesSchema) {
  MetricsRegistry reg;
  const MetricsSnapshot snap = example_registry(reg).snapshot();
  ManifestInfo info;
  info.tool = "egtsim/test";
  info.config_summary = "8 SSets, memory-1";
  info.config_fingerprint = 0xabcdef;
  info.generations = 100;
  info.wall_seconds = 1.5;
  info.metrics = &snap;

  std::ostringstream os;
  write_run_manifest(os, info);
  const auto doc = util::JsonValue::parse(os.str());
  testing::expect_valid_manifest(doc, /*expect_traffic=*/false);

  EXPECT_EQ(doc.at("tool").as_string(), "egtsim/test");
  EXPECT_EQ(doc.at("run").at("ranks").as_u64(), 0u);
  EXPECT_EQ(doc.at("run").at("generations").as_u64(), 100u);
  EXPECT_DOUBLE_EQ(doc.at("run").at("wall_seconds").as_number(), 1.5);
  EXPECT_EQ(doc.at("config").at("summary").as_string(), "8 SSets, memory-1");
  // Serial manifests have no traffic section at all.
  EXPECT_FALSE(doc.has("traffic"));
  // Phase keys are prefix-stripped; values round-trip.
  const auto& game = doc.at("phases").at("game_play");
  EXPECT_EQ(game.at("count").as_u64(), 2u);
  EXPECT_NEAR(game.at("seconds").as_number(), 0.75, 1e-9);
  EXPECT_NEAR(game.at("min_seconds").as_number(), 0.25, 1e-6);
  EXPECT_NEAR(game.at("max_seconds").as_number(), 0.5, 1e-6);
  EXPECT_EQ(doc.at("counters").at("engine.pairs_evaluated").as_u64(), 4950u);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("engine.ranks").as_number(), 4.0);
  // Non-phase histograms appear under "timers" with their full name.
  EXPECT_FALSE(doc.at("phases").has("io.checkpoint"));
  EXPECT_EQ(doc.at("timers").at("io.checkpoint").at("count").as_u64(), 1u);
}

TEST(Manifest, ParallelRoundTripIncludesPerRankTraffic) {
  MetricsRegistry reg;
  const MetricsSnapshot snap = example_registry(reg).snapshot();
  const par::TrafficReport traffic = example_traffic();
  ManifestInfo info;
  info.tool = "egtsim/test";
  info.config_summary = "8 SSets, memory-1";
  info.ranks = 2;
  info.generations = 100;
  info.wall_seconds = 0.75;
  info.metrics = &snap;
  info.traffic = &traffic;

  std::ostringstream os;
  write_run_manifest(os, info);
  const auto doc = util::JsonValue::parse(os.str());
  testing::expect_valid_manifest(doc, /*expect_traffic=*/true);

  EXPECT_EQ(doc.at("run").at("ranks").as_u64(), 2u);
  const auto& t = doc.at("traffic");
  EXPECT_EQ(t.at("messages").as_u64(), 40u);
  EXPECT_EQ(t.at("broadcast").at("bytes").as_u64(), 300u);
  ASSERT_EQ(t.at("per_rank").size(), 2u);
  EXPECT_EQ(t.at("per_rank").items()[0].at("bcast_messages").as_u64(), 30u);
  EXPECT_EQ(t.at("per_rank").items()[1].at("p2p_messages").as_u64(), 10u);
}

TEST(Manifest, GameBlockRecordsTheSpec) {
  ManifestInfo info;
  info.tool = "egtsim/test";
  info.config_summary = "s";
  const game::GameSpec spec;  // default: the paper's IPD
  info.game = &spec;
  std::ostringstream os;
  write_run_manifest(os, info);
  const auto doc = util::JsonValue::parse(os.str());
  testing::expect_valid_manifest(doc, /*expect_traffic=*/false);
  const auto& g = doc.at("game");
  EXPECT_EQ(g.at("kind").as_string(), "matrix");
  EXPECT_EQ(g.at("name").as_string(), "ipd");
  EXPECT_EQ(g.at("actions").as_u64(), 2u);
  EXPECT_EQ(g.at("play").as_string(), "iterated");
  EXPECT_EQ(g.at("labels").items()[0].as_string(), "C");
  EXPECT_EQ(g.at("labels").items()[1].as_string(), "D");
  char want_hash[24];
  std::snprintf(want_hash, sizeof want_hash, "%016llx",
                static_cast<unsigned long long>(spec.matrix_hash()));
  EXPECT_EQ(g.at("matrix_hash").as_string(), want_hash);
}

TEST(Manifest, GameBlockRecordsPublicGoodsParameters) {
  ManifestInfo info;
  info.tool = "egtsim/test";
  info.config_summary = "s";
  const auto spec = game::GameSpec::public_goods("pgg", 3.0, 1.0, 4);
  info.game = &spec;
  std::ostringstream os;
  write_run_manifest(os, info);
  const auto doc = util::JsonValue::parse(os.str());
  testing::expect_valid_manifest(doc, /*expect_traffic=*/false);
  const auto& g = doc.at("game");
  EXPECT_EQ(g.at("kind").as_string(), "public_goods");
  EXPECT_DOUBLE_EQ(g.at("pgg_r").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(g.at("pgg_cost").as_number(), 1.0);
  EXPECT_EQ(g.at("pgg_k").as_u64(), 4u);
}

TEST(Manifest, ConfigFieldsHookAddsToolSpecificEntries) {
  ManifestInfo info;
  info.tool = "egtsim/test";
  info.config_summary = "s";
  info.config_fields = [](util::JsonWriter& w) {
    w.field("memory", 3);
    w.field("seed", std::uint64_t{99});
  };
  std::ostringstream os;
  write_run_manifest(os, info);
  const auto doc = util::JsonValue::parse(os.str());
  EXPECT_EQ(doc.at("config").at("memory").as_u64(), 3u);
  EXPECT_EQ(doc.at("config").at("seed").as_u64(), 99u);
}

TEST(Manifest, EmptyMetricsStillProducesValidDocument) {
  ManifestInfo info;
  info.tool = "egtsim/test";
  info.config_summary = "s";
  std::ostringstream os;
  write_run_manifest(os, info);
  const auto doc = util::JsonValue::parse(os.str());
  testing::expect_valid_manifest(doc, /*expect_traffic=*/false);
  EXPECT_EQ(doc.at("phases").size(), 0u);
  EXPECT_EQ(doc.at("counters").size(), 0u);
}

TEST(Manifest, FileWriterCreatesParseableFile) {
  ManifestInfo info;
  info.tool = "egtsim/test";
  info.config_summary = "s";
  const std::string path = ::testing::TempDir() + "egt_manifest.json";
  write_run_manifest_file(path, info);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = util::JsonValue::parse(buf.str());
  obs::testing::expect_valid_manifest(doc, /*expect_traffic=*/false);
  std::remove(path.c_str());
}

TEST(Manifest, FileWriterThrowsOnUnopenablePath) {
  ManifestInfo info;
  info.tool = "egtsim/test";
  EXPECT_THROW(
      write_run_manifest_file("/nonexistent-dir/egt_manifest.json", info),
      std::runtime_error);
}

TEST(Manifest, GitDescribeIsNonEmpty) {
  EXPECT_FALSE(git_describe().empty());
}

}  // namespace
}  // namespace egt::obs
