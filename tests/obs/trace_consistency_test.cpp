// Cross-validation of the two time sources: the flight recorder's phase
// spans (obs/tracer.hpp) and the metrics registry's phase histograms
// (obs/metrics.hpp) wrap the same scopes in the engine, so a traced run's
// per-phase span totals must agree with the manifest timers. A divergence
// means one of the instrumentation sites drifted from the other.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "core/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/json.hpp"

namespace egt::obs {
namespace {

TEST(TraceConsistency, PhaseSpansMatchManifestTimers) {
  core::SimConfig cfg;
  cfg.ssets = 24;
  cfg.memory = 1;
  cfg.generations = 60;
  cfg.seed = 7;
  cfg.fitness_mode = core::FitnessMode::Sampled;
  cfg.game.rounds = 50;

  Tracer& tracer = Tracer::instance();
  tracer.start();
  MetricsRegistry registry;
  core::Engine engine(cfg, &registry);
  engine.run_all();
  tracer.stop();

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  tracer.clear();
  const util::JsonValue doc = util::JsonValue::parse(os.str());
  ASSERT_EQ(doc.at("otherData").at("dropped_events").as_u64(), 0u)
      << "raise the test capacity: a wrapped ring undercounts spans";

  std::map<std::string, double> span_seconds;
  std::uint64_t generation_spans = 0;
  for (const auto& e : doc.at("traceEvents").items()) {
    if (e.at("ph").as_string() != "X") continue;
    const std::string name = e.at("name").as_string();
    if (name == kGenerationSpan) ++generation_spans;
    if (name.rfind("phase.", 0) == 0) {
      span_seconds[name] += e.at("dur").as_number() * 1e-6;  // us -> s
    }
  }
  // initialize() records one extra game_play span before generation 1.
  EXPECT_EQ(generation_spans, cfg.generations);

  const MetricsSnapshot snap = registry.snapshot();
  for (const char* name : phase::kAll) {
    const double timer = snap.histogram_seconds(name);
    const double spans = span_seconds[name];
    // Same scopes, two clocks: allow scheduling noise and the constant
    // per-scope cost difference, but catch a missing or double-counted
    // instrumentation site (those diverge by whole phase totals).
    const double tol = 0.25 * std::max(timer, spans) + 0.005;
    EXPECT_NEAR(spans, timer, tol) << name;
  }
}

}  // namespace
}  // namespace egt::obs
