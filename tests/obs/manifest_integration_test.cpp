// End-to-end observability acceptance:
//   * serial and parallel runs of the same config report identical
//     engine.pairs_evaluated and engine.generations;
//   * a serial run's manifest phase times account for (nearly all of) the
//     measured wall time;
//   * a parallel manifest carries the broadcast vs point-to-point traffic
//     split, per rank — and every manifest validates against the
//     documented egt.run_manifest/v3 schema.
#include <gtest/gtest.h>

#include <sstream>

#include "core/checkpoint.hpp"
#include "core/engine.hpp"
#include "core/parallel_engine.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "schema_check.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace egt::obs {
namespace {

core::SimConfig busy_config() {
  core::SimConfig cfg;
  cfg.ssets = 24;
  cfg.memory = 1;
  cfg.generations = 100;
  cfg.pc_rate = 0.5;
  cfg.mutation_rate = 0.2;
  cfg.seed = 11;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  return cfg;
}

util::JsonValue manifest_doc(const ManifestInfo& info) {
  std::ostringstream os;
  write_run_manifest(os, info);
  return util::JsonValue::parse(os.str());
}

TEST(ManifestIntegration, SerialAndParallelCountersMatch) {
  const core::SimConfig cfg = busy_config();

  MetricsRegistry serial_reg;
  core::Engine engine(cfg, &serial_reg);
  engine.run_all();
  const MetricsSnapshot serial = serial_reg.snapshot();

  core::ParallelRunOptions popts;
  const auto par4 = core::run_parallel(cfg, 4, popts);

  EXPECT_EQ(serial.counter_value("engine.generations"), cfg.generations);
  EXPECT_EQ(par4.metrics.counter_value("engine.generations"),
            cfg.generations);
  EXPECT_EQ(par4.metrics.counter_value("engine.pairs_evaluated"),
            serial.counter_value("engine.pairs_evaluated"));
  EXPECT_EQ(serial.counter_value("engine.pairs_evaluated"),
            engine.pairs_evaluated());
  // Population-dynamics event counts match too (counted once, at rank 0).
  for (const char* name : {"engine.pc_events", "engine.adoptions",
                           "engine.mutations"}) {
    EXPECT_EQ(par4.metrics.counter_value(name), serial.counter_value(name))
        << name;
  }
}

TEST(ManifestIntegration, SerialPhaseTimesAccountForWallTime) {
  // Sampled fitness replays every game each generation, so virtually all
  // wall time sits inside the five instrumented phases.
  core::SimConfig cfg = busy_config();
  cfg.ssets = 48;
  cfg.generations = 60;
  cfg.fitness_mode = core::FitnessMode::Sampled;

  MetricsRegistry reg;
  util::Timer wall;
  core::Engine engine(cfg, &reg);
  engine.run_all();
  const double wall_seconds = wall.seconds();
  const MetricsSnapshot snap = reg.snapshot();

  ManifestInfo info;
  info.tool = "egtsim/test";
  info.config_summary = cfg.summary();
  info.config_fingerprint = core::config_fingerprint(cfg);
  info.generations = cfg.generations;
  info.wall_seconds = wall_seconds;
  info.metrics = &snap;
  const auto doc = manifest_doc(info);
  testing::expect_valid_manifest(doc, /*expect_traffic=*/false);

  double phase_sum = 0.0;
  for (const auto& [name, ph] : doc.at("phases").members()) {
    phase_sum += ph.at("seconds").as_number();
  }
  EXPECT_NEAR(phase_sum, snap.phase_total_seconds(), 1e-9);
  // Acceptance: phases sum to within 10% of the wall time. They are
  // strict sub-intervals of the measured wall span, so the sum can only
  // fall short, never overshoot.
  EXPECT_LE(phase_sum, wall_seconds * 1.001);
  EXPECT_GE(phase_sum, wall_seconds * 0.9)
      << "phases " << phase_sum << "s of wall " << wall_seconds << "s";
  // All five phases appear in the document.
  EXPECT_EQ(doc.at("phases").size(), 5u);
}

TEST(ManifestIntegration, ParallelManifestReportsPerRankTrafficSplit) {
  core::SimConfig cfg = busy_config();
  cfg.comm_pattern = core::CommPattern::PaperBcast;

  constexpr int kRanks = 4;
  util::Timer wall;
  const auto result = core::run_parallel(cfg, kRanks);
  const double wall_seconds = wall.seconds();

  ManifestInfo info;
  info.tool = "egtsim/test";
  info.config_summary = cfg.summary();
  info.config_fingerprint = core::config_fingerprint(cfg);
  info.ranks = kRanks;
  info.generations = cfg.generations;
  info.wall_seconds = wall_seconds;
  info.metrics = &result.metrics;
  info.traffic = &result.traffic;
  const auto doc = manifest_doc(info);
  testing::expect_valid_manifest(doc, /*expect_traffic=*/true);

  const auto& t = doc.at("traffic");
  // The paper's pattern broadcasts every generation plan: broadcast-tree
  // traffic must dominate, and the p2p fitness returns must be visible.
  EXPECT_GT(t.at("broadcast").at("messages").as_u64(), 0u);
  EXPECT_GT(t.at("p2p").at("messages").as_u64(), 0u);
  ASSERT_EQ(t.at("per_rank").size(), static_cast<std::size_t>(kRanks));
  // Rank 0 (the Nature Agent) originates the plan broadcast.
  EXPECT_GT(
      t.at("per_rank").items()[0].at("bcast_messages").as_u64(), 0u);
  // Merged phase timers exist for every phase and stay within the
  // physically possible envelope (kRanks concurrent timelines).
  double phase_sum = 0.0;
  for (const auto& [name, ph] : doc.at("phases").members()) {
    phase_sum += ph.at("seconds").as_number();
  }
  EXPECT_GT(phase_sum, 0.0);
  EXPECT_LE(phase_sum, wall_seconds * kRanks * 1.001);
  EXPECT_EQ(doc.at("phases").size(), 5u);
  // The ranks gauge travels with the manifest.
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("engine.ranks").as_number(),
                   static_cast<double>(kRanks));
}

TEST(ManifestIntegration, ParallelOptionsMergeIntoCallerRegistry) {
  const core::SimConfig cfg = busy_config();
  MetricsRegistry mine;
  core::ParallelRunOptions popts;
  popts.metrics = &mine;
  const auto result = core::run_parallel(cfg, 2, popts);
  const auto snap = mine.snapshot();
  EXPECT_EQ(snap.counter_value("engine.pairs_evaluated"),
            result.metrics.counter_value("engine.pairs_evaluated"));
  EXPECT_EQ(snap.counter_value("engine.generations"), cfg.generations);
  EXPECT_GT(snap.phase_total_seconds(), 0.0);
}

}  // namespace
}  // namespace egt::obs
