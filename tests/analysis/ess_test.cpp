#include "analysis/ess.hpp"

#include <gtest/gtest.h>

#include "game/named.hpp"

namespace egt::analysis {
namespace {

using game::named::all_c;
using game::named::all_d;
using game::named::tit_for_tat;
using game::named::win_stay_lose_shift;

const game::IpdParams kClean{};  // paper payoffs, 200 rounds, no noise

TEST(Ess, AlldResistsAllcInvasion) {
  const auto a = analyze_invasion(game::Strategy(all_d(1)),
                                  game::Strategy(all_c(1)), 16, kClean);
  EXPECT_EQ(a.outcome, InvasionOutcome::Resists);
  EXPECT_LT(a.mutant_fitness, a.resident_fitness);
}

TEST(Ess, AllcIsInvadedByAlld) {
  const auto a = analyze_invasion(game::Strategy(all_c(1)),
                                  game::Strategy(all_d(1)), 16, kClean);
  EXPECT_EQ(a.outcome, InvasionOutcome::Invadable);
  // The lone defector feasts on cooperators: T = 4 every round.
  EXPECT_NEAR(a.mutant_fitness, 4.0, 1e-9);
  EXPECT_LT(a.resident_fitness, 3.0 + 1e-9);
}

TEST(Ess, WslsResistsAlldUnderPaperPayoffs) {
  // The (T+P)/2 = 2.5 < R = 3 condition §V-C's payoff choice creates.
  const auto a =
      analyze_invasion(game::Strategy(win_stay_lose_shift(1)),
                       game::Strategy(all_d(1)), 64, kClean);
  EXPECT_EQ(a.outcome, InvasionOutcome::Resists);
}

TEST(Ess, WslsIsOnlyMarginalAgainstAlldUnderAxelrodPayoffs) {
  // With T = 5: (T+P)/2 = 3 = R — the resistance evaporates (small
  // populations: the mutant even gains an edge from not playing itself).
  game::IpdParams axelrod = kClean;
  axelrod.payoff = game::axelrod_payoff();
  const auto paper =
      analyze_invasion(game::Strategy(win_stay_lose_shift(1)),
                       game::Strategy(all_d(1)), 64, kClean);
  const auto ax =
      analyze_invasion(game::Strategy(win_stay_lose_shift(1)),
                       game::Strategy(all_d(1)), 64, axelrod);
  const double margin_paper = paper.resident_fitness - paper.mutant_fitness;
  const double margin_ax = ax.resident_fitness - ax.mutant_fitness;
  EXPECT_GT(margin_paper, margin_ax);
  EXPECT_NE(ax.outcome, InvasionOutcome::Resists);
}

TEST(Ess, TftIsNeutrallyInvadableByAllc) {
  // TFT and ALLC behave identically among cooperators (no noise): drift.
  const auto a = analyze_invasion(game::Strategy(tit_for_tat(1)),
                                  game::Strategy(all_c(1)), 20, kClean);
  EXPECT_EQ(a.outcome, InvasionOutcome::Neutral);
}

TEST(Ess, NoiseBreaksTftAllcNeutrality) {
  // With errors, ALLC among TFTs is exploited-by-echo differently than
  // TFT-vs-TFT feuds; neutrality disappears one way or the other.
  game::IpdParams noisy = kClean;
  noisy.noise = 0.05;
  const auto a = analyze_invasion(game::Strategy(tit_for_tat(1)),
                                  game::Strategy(all_c(1)), 20, noisy);
  EXPECT_NE(a.outcome, InvasionOutcome::Neutral);
}

TEST(Ess, ExhaustiveSweepFindsAlldUninvadableOneShotStyle) {
  // Among the 16 memory-one pure strategies, ALLD must always be in the
  // uninvadable set (nothing strictly beats a defector sea).
  const auto winners = uninvadable_pure_mem1(32, kClean);
  ASSERT_FALSE(winners.empty());
  bool has_alld = false;
  for (const auto& s : winners) {
    if (s == all_d(1)) has_alld = true;
    // ALLC can never be in the set: ALLD invades it.
    ASSERT_FALSE(s == all_c(1));
  }
  EXPECT_TRUE(has_alld);
}

TEST(Ess, GrimIsUninvadableWithoutNoise) {
  EXPECT_TRUE(is_uninvadable_pure_mem1(game::named::grim(1), 32, kClean));
}

TEST(Ess, ValidatesArguments) {
  EXPECT_THROW((void)analyze_invasion(game::Strategy(all_c(1)),
                                      game::Strategy(all_d(1)), 2, kClean),
               std::invalid_argument);
  // Stochastic memory-two strategies have no analytic evaluator.
  game::IpdParams noisy = kClean;
  noisy.noise = 0.1;
  EXPECT_THROW((void)analyze_invasion(game::Strategy(game::named::all_c(2)),
                                      game::Strategy(game::named::all_d(2)),
                                      8, noisy),
               std::invalid_argument);
}

}  // namespace
}  // namespace egt::analysis
