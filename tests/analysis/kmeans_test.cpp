#include "analysis/kmeans.hpp"

#include <gtest/gtest.h>

#include "game/named.hpp"

namespace egt::analysis {
namespace {

TEST(KMeans, SeparatesObviousClusters) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 10; ++i) points.push_back({0.0, 0.0});
  for (int i = 0; i < 10; ++i) points.push_back({10.0, 10.0});
  const auto res = kmeans(points, 2);
  ASSERT_EQ(res.centroids.size(), 2u);
  EXPECT_EQ(res.cluster_sizes[0] + res.cluster_sizes[1], 20u);
  EXPECT_EQ(res.cluster_sizes[0], 10u);
  EXPECT_LT(res.inertia, 1e-9);
  // All points of one blob share a cluster.
  for (int i = 1; i < 10; ++i) {
    ASSERT_EQ(res.assignment[static_cast<std::size_t>(i)], res.assignment[0]);
  }
  EXPECT_NE(res.assignment[0], res.assignment[10]);
}

TEST(KMeans, DeterministicForFixedSeed) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back({static_cast<double>(i % 7), static_cast<double>(i % 3)});
  }
  const auto a = kmeans(points, 3, 42);
  const auto b = kmeans(points, 3, 42);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, KClampedToPointCount) {
  std::vector<std::vector<double>> points{{1.0}, {2.0}};
  const auto res = kmeans(points, 10);
  EXPECT_LE(res.centroids.size(), 2u);
}

TEST(KMeans, SinglePointSingleCluster) {
  const auto res = kmeans({{3.0, 4.0}}, 1);
  ASSERT_EQ(res.centroids.size(), 1u);
  EXPECT_DOUBLE_EQ(res.centroids[0][0], 3.0);
  EXPECT_DOUBLE_EQ(res.inertia, 0.0);
}

TEST(KMeans, DuplicatePointsDoNotBreakSeeding) {
  std::vector<std::vector<double>> points(20, {1.0, 1.0});
  const auto res = kmeans(points, 4);
  EXPECT_DOUBLE_EQ(res.inertia, 0.0);
}

TEST(KMeans, RejectsBadInput) {
  EXPECT_THROW((void)kmeans({}, 2), std::invalid_argument);
  EXPECT_THROW((void)kmeans({{1.0}, {1.0, 2.0}}, 2), std::invalid_argument);
  EXPECT_THROW((void)kmeans({{1.0}}, 0), std::invalid_argument);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back({static_cast<double>(i % 8), static_cast<double>(i / 8)});
  }
  const double i2 = kmeans(points, 2).inertia;
  const double i8 = kmeans(points, 8).inertia;
  EXPECT_LE(i8, i2);
}

TEST(StrategyMatrix, ReflectsCooperationProbabilities) {
  std::vector<game::Strategy> ss;
  ss.emplace_back(game::named::all_c(1));
  ss.emplace_back(game::named::all_d(1));
  ss.emplace_back(game::MixedStrategy::from_probs({0.5, 0.25, 0.75, 1.0}));
  const pop::Population p(std::move(ss));
  const auto m = strategy_matrix(p);
  ASSERT_EQ(m.size(), 3u);
  ASSERT_EQ(m[0].size(), 4u);
  EXPECT_DOUBLE_EQ(m[0][0], 1.0);
  EXPECT_DOUBLE_EQ(m[1][0], 0.0);
  EXPECT_DOUBLE_EQ(m[2][1], 0.25);
}

TEST(ClusterSortedOrder, GroupsLargestClusterFirst) {
  std::vector<std::vector<double>> points;
  points.push_back({10.0});                              // small cluster
  for (int i = 0; i < 5; ++i) points.push_back({0.0});   // big cluster
  const auto res = kmeans(points, 2);
  const auto order = cluster_sorted_order(res);
  ASSERT_EQ(order.size(), 6u);
  // The first five positions are the big (0.0) cluster.
  for (int i = 0; i < 5; ++i) {
    ASSERT_NE(order[static_cast<std::size_t>(i)], 0u);
  }
  EXPECT_EQ(order[5], 0u);
}

}  // namespace
}  // namespace egt::analysis
