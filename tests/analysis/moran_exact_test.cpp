#include "analysis/meanfield/moran.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/fixation.hpp"
#include "game/named.hpp"
#include "simcheck/stats.hpp"

namespace egt::analysis::meanfield {
namespace {

/// The fixation_test.cpp setting: paper payoff [3,0,4,1], memory-one,
/// PerRoundAverage, where an ALLD mutant leads every ALLC resident by the
/// k-independent gap delta = (N+2)/(N-1).
core::SimConfig alld_vs_allc_config(std::uint32_t n) {
  core::SimConfig cfg;
  cfg.memory = 1;
  cfg.ssets = n;
  cfg.generations = 1;
  cfg.game.rounds = 8;
  cfg.pc_rate = 1.0;
  cfg.mutation_rate = 0.0;
  cfg.beta = 1.0;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  cfg.fitness_scale = core::FitnessScale::PerRoundAverage;
  cfg.seed = 99;
  return cfg;
}

game::Strategy allc() { return game::named::all_c(1); }
game::Strategy alld() { return game::named::all_d(1); }

TEST(MoranExact, ReproducesTheConstantGapClosedForm) {
  // The acceptance-criterion pin: the full chain solve must land on
  // rho = (1 - gamma) / (1 - gamma^N) to <= 1e-12 relative.
  for (const std::uint32_t n : {4u, 8u, 16u, 32u}) {
    const auto cfg = alld_vs_allc_config(n);
    const auto chain = build_moran_chain(cfg, allc(), alld());
    const double delta = (static_cast<double>(n) + 2.0) /
                         (static_cast<double>(n) - 1.0);
    for (std::uint32_t k = 1; k < n; ++k) {
      EXPECT_NEAR(chain.delta[k], delta, 1e-12) << "N " << n << " k " << k;
    }
    const double rho = solve(chain).fixation[1];
    const double closed = constant_gap_closed_form(n, cfg.beta, delta);
    EXPECT_NEAR(rho, closed, 1e-12 * closed) << "N " << n;
    // ... and against the simcheck helper's independent expression.
    EXPECT_NEAR(rho, simcheck::fermi_fixation_probability(delta, cfg.beta, n),
                1e-12 * closed);
    EXPECT_NEAR(exact_fixation_probability(cfg, allc(), alld()), rho, 0.0);
  }
}

TEST(MoranExact, NeutralChainFixatesAtKOverN) {
  auto cfg = alld_vs_allc_config(12);
  cfg.beta = 0.0;
  const auto sol = solve(build_moran_chain(cfg, allc(), alld()));
  for (std::uint32_t k = 0; k <= 12; ++k) {
    EXPECT_NEAR(sol.fixation[k], k / 12.0, 1e-13) << "k " << k;
  }
}

TEST(MoranExact, FixationVectorIsMonotoneWithAbsorbingEnds) {
  const auto cfg = alld_vs_allc_config(10);
  const auto sol = solve(build_moran_chain(cfg, allc(), alld()));
  EXPECT_DOUBLE_EQ(sol.fixation.front(), 0.0);
  EXPECT_DOUBLE_EQ(sol.fixation.back(), 1.0);
  for (std::uint32_t k = 0; k < 10; ++k) {
    EXPECT_LE(sol.fixation[k], sol.fixation[k + 1] + 1e-15);
  }
}

TEST(MoranExact, ProductFormulaAgreesWithTheLinearSolve) {
  // Two independent derivations of rho — the log-space gamma product and
  // the tridiagonal boundary-value solve — must agree to fp precision,
  // including on a chain with a k-dependent gap (coexistence game).
  PairPayoffs hawk_dove{-0.5, 2.0, 0.0, 1.0};
  for (const double beta : {0.0, 0.5, 3.0}) {
    const auto chain =
        build_moran_chain(24, hawk_dove, 1.0 / 23.0, beta, 0.7, false);
    const auto product = solve(chain).fixation;
    const auto linear = fixation_by_linear_solve(chain);
    ASSERT_EQ(product.size(), linear.size());
    for (std::size_t k = 0; k < product.size(); ++k) {
      EXPECT_NEAR(product[k], linear[k], 1e-12) << "beta " << beta;
    }
  }
}

TEST(MoranExact, StrongSelectionStaysFiniteInLogSpace) {
  // beta * delta * N far beyond exp range: the naive gamma product
  // overflows; the log-space evaluation must still give rho in [0, 1].
  const auto chain = build_moran_chain(
      64, PairPayoffs{0.0, -50.0, 50.0, 0.0}, 1.0, 40.0, 1.0, false);
  const auto sol = solve(chain);
  for (double r : sol.fixation) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
  EXPECT_LT(sol.fixation[1], 1e-9);  // the mutant is heavily disfavoured
}

TEST(MoranExact, AbsorptionTimesArePositiveInsideZeroAtEnds) {
  const auto cfg = alld_vs_allc_config(8);
  const auto sol = solve(build_moran_chain(cfg, allc(), alld()));
  EXPECT_DOUBLE_EQ(sol.absorption_time.front(), 0.0);
  EXPECT_DOUBLE_EQ(sol.absorption_time.back(), 0.0);
  for (std::uint32_t k = 1; k < 8; ++k) {
    EXPECT_GT(sol.absorption_time[k], 1.0);  // at least one generation
    EXPECT_GT(sol.conditional_fixation_time[k], 0.0);
    EXPECT_TRUE(std::isfinite(sol.conditional_fixation_time[k]));
  }
  EXPECT_DOUBLE_EQ(sol.conditional_fixation_time.back(), 0.0);
}

TEST(MoranExact, NeutralAbsorptionTimeMatchesTheKnownFormula) {
  // Neutral chain: conditional fixation time from one mutant is the
  // classic (N - 1)^2 / p_step where transitions fire at rate
  // pc * k (N - k) / (N (N - 1)) * 1/2 per direction. For the discrete
  // chain the closed form is t1 = (N - 1) * sum_{k=1}^{N-1} (1/k) /
  // T+_1-ish — rather than re-derive, pin detailed balance instead:
  // theta_k = rho_k * tau_k must satisfy the defining recurrence.
  auto cfg = alld_vs_allc_config(9);
  cfg.beta = 0.0;
  const auto chain = build_moran_chain(cfg, allc(), alld());
  const auto sol = solve(chain);
  for (std::uint32_t k = 1; k < 9; ++k) {
    const double theta_k = sol.fixation[k] * sol.conditional_fixation_time[k];
    const double theta_up =
        k + 1 <= 8 ? sol.fixation[k + 1] * sol.conditional_fixation_time[k + 1]
                   : 0.0;
    const double theta_dn =
        k >= 2 ? sol.fixation[k - 1] * sol.conditional_fixation_time[k - 1]
               : 0.0;
    const double residual = chain.t_plus[k] * theta_up -
                            (chain.t_plus[k] + chain.t_minus[k]) * theta_k +
                            chain.t_minus[k] * theta_dn + sol.fixation[k];
    EXPECT_NEAR(residual, 0.0, 1e-9) << "k " << k;
  }
}

TEST(MoranExact, TeacherBetterGateMakesDominantInvasionsCertain) {
  // With the gate on and a strictly dominant mutant, the chain can only
  // move up: fixation is certain from every interior state.
  auto cfg = alld_vs_allc_config(8);
  cfg.require_teacher_better = true;
  const auto sol = solve(build_moran_chain(cfg, allc(), alld()));
  for (std::uint32_t k = 1; k <= 8; ++k) {
    EXPECT_DOUBLE_EQ(sol.fixation[k], 1.0) << "k " << k;
  }
}

TEST(MoranExact, GateWithZeroGapIsRejectedAsStuck) {
  // Identical strategies under the gate: no adoption can ever fire, the
  // interior states are absorbing and fixation is undefined — exactly the
  // configuration analysis::fixation_probability would spin on forever.
  auto cfg = alld_vs_allc_config(6);
  cfg.require_teacher_better = true;
  EXPECT_THROW((void)build_moran_chain(cfg, allc(), allc()),
               std::invalid_argument);
}

TEST(MoranExact, RejectsNonWellMixedAndNonPcConfigs) {
  auto structured = alld_vs_allc_config(8);
  structured.interaction.kind = core::InteractionSpec::Kind::Ring;
  EXPECT_THROW((void)build_moran_chain(structured, allc(), alld()),
               std::invalid_argument);

  auto moran_rule = alld_vs_allc_config(8);
  moran_rule.update_rule = pop::UpdateRule::Moran;
  EXPECT_THROW((void)build_moran_chain(moran_rule, allc(), alld()),
               std::invalid_argument);

  auto pgg = alld_vs_allc_config(8);
  pgg.memory = 0;
  pgg.game = game::GameSpec::public_goods("pgg_t", 3.0, 1.0);
  EXPECT_THROW((void)mean_pair_payoff(pgg, allc(), alld()),
               std::invalid_argument);
}

// Satellite: the Monte-Carlo estimator pinned against the exact solver at
// N in {4, 8, 16} with Wilson 99.9% acceptance. Deterministic: the MC
// trials are seeded, so the verdict never flakes.
TEST(MoranExact, MonteCarloFixationLandsInsideTheWilsonInterval) {
  struct Case {
    std::uint32_t n;
    std::uint32_t trials;
  };
  for (const auto [n, trials] :
       {Case{4, 500}, Case{8, 400}, Case{16, 250}}) {
    const auto cfg = alld_vs_allc_config(n);
    const double exact = exact_fixation_probability(cfg, allc(), alld());
    const double mc =
        fixation_probability(cfg, allc(), alld(), trials, 100000);
    const auto fixed =
        static_cast<std::uint64_t>(std::llround(mc * trials));
    // z = 3.29: 99.9% two-sided, keeping the pinned-seed test safe from
    // an unlucky (but fixed) draw while still ~3-sigma tight.
    const auto ci = simcheck::wilson(fixed, trials, 3.29);
    EXPECT_TRUE(ci.contains(exact))
        << "N " << n << ": exact " << exact << " outside [" << ci.lo << ", "
        << ci.hi << "] from " << fixed << "/" << trials;
  }
}

}  // namespace
}  // namespace egt::analysis::meanfield
