#include "analysis/coop.hpp"

#include <gtest/gtest.h>

#include "game/markov.hpp"
#include "game/named.hpp"

namespace egt::analysis {
namespace {

using game::named::all_c;
using game::named::all_d;
using game::named::tit_for_tat;
using game::named::win_stay_lose_shift;

pop::Population make_pop(std::vector<game::Strategy> ss) {
  return pop::Population(std::move(ss));
}

TEST(Coop, AllCooperatorsPlayFullCooperation) {
  const auto pop = make_pop({all_c(1), all_c(1), all_c(1)});
  const auto rep = expected_play_cooperation(pop, {});
  EXPECT_DOUBLE_EQ(rep.mean_coop_rate, 1.0);
  EXPECT_DOUBLE_EQ(rep.mean_payoff, 3.0);  // R every round
  for (double c : rep.per_sset_coop) ASSERT_DOUBLE_EQ(c, 1.0);
}

TEST(Coop, AllDefectorsPlayZeroCooperation) {
  const auto pop = make_pop({all_d(1), all_d(1)});
  const auto rep = expected_play_cooperation(pop, {});
  EXPECT_DOUBLE_EQ(rep.mean_coop_rate, 0.0);
  EXPECT_DOUBLE_EQ(rep.mean_payoff, 1.0);  // P every round
}

TEST(Coop, TableAverageAndPlayRateDisagreeForWsls) {
  // WSLS's table averages 0.5 but WSLS pairs actually cooperate (almost)
  // every round — the reason this module exists.
  const auto pop = make_pop({win_stay_lose_shift(1), win_stay_lose_shift(1)});
  const auto rep = expected_play_cooperation(pop, {});
  EXPECT_DOUBLE_EQ(rep.mean_coop_rate, 1.0);
}

TEST(Coop, MixedFieldIsBetweenExtremes) {
  const auto pop = make_pop({all_c(1), all_d(1), tit_for_tat(1)});
  const auto rep = expected_play_cooperation(pop, {});
  EXPECT_GT(rep.mean_coop_rate, 0.0);
  EXPECT_LT(rep.mean_coop_rate, 1.0);
  // ALLD (index 1) never cooperates.
  EXPECT_DOUBLE_EQ(rep.per_sset_coop[1], 0.0);
}

TEST(Coop, PairCooperationMatchesKnownGames) {
  game::IpdParams params;
  // TFT vs ALLD: one cooperative move out of 200.
  EXPECT_NEAR(pair_cooperation(game::Strategy(tit_for_tat(1)),
                               game::Strategy(all_d(1)), params),
              1.0 / 200.0, 1e-12);
  EXPECT_DOUBLE_EQ(pair_cooperation(game::Strategy(all_d(1)),
                                    game::Strategy(tit_for_tat(1)), params),
                   0.0);
}

TEST(Coop, NoiseLowersWslsPairCooperationSlightly) {
  game::IpdParams noisy;
  noisy.noise = 0.02;
  const double c = pair_cooperation(
      game::Strategy(win_stay_lose_shift(1)),
      game::Strategy(win_stay_lose_shift(1)), noisy);
  EXPECT_LT(c, 1.0);
  EXPECT_GT(c, 0.9);  // WSLS re-coordinates after errors
}

TEST(Coop, AnalyticMem1AgreesWithExactPurePath) {
  // The memory-one chain and the cycle-detection path must agree on
  // deterministic pairs (they are exercised by different noise settings).
  game::IpdParams params;
  const game::Strategy a = tit_for_tat(1);
  const game::Strategy b = win_stay_lose_shift(1);
  const double exact = pair_cooperation(a, b, params);        // pure path
  game::IpdParams tiny;
  tiny.noise = 0.0;
  const auto chain = game::markov::finite_outcome_mem1(
      a, b, params.payoff, params.rounds, 0.0);
  EXPECT_NEAR(exact, chain.coop_a, 1e-12);
}

TEST(Coop, StochasticMemory2FallbackIsDeterministicPerSeed) {
  game::IpdParams params;
  params.noise = 0.05;
  util::Xoshiro256 rng(4);
  const game::Strategy a = game::MixedStrategy::random(2, rng);
  const game::Strategy b = game::MixedStrategy::random(2, rng);
  const double c1 = pair_cooperation(a, b, params, 7);
  const double c2 = pair_cooperation(a, b, params, 7);
  EXPECT_DOUBLE_EQ(c1, c2);
}

TEST(Coop, RequiresAtLeastTwoSSets) {
  const auto pop = make_pop({all_c(1)});
  EXPECT_THROW((void)expected_play_cooperation(pop, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace egt::analysis
