#include "analysis/meanfield/preview.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "game/spec/registry.hpp"

namespace egt::analysis::meanfield {
namespace {

core::SimConfig preset_config(const std::string& game, int memory = 0) {
  core::SimConfig cfg;
  const auto* spec = game::find_game(game);
  EXPECT_NE(spec, nullptr) << game;
  cfg.game = *spec;
  cfg.memory = memory;
  cfg.ssets = 64;
  cfg.generations = 4000;
  cfg.pc_rate = 1.0;
  cfg.mutation_rate = 0.01;
  cfg.beta = 5.0;
  cfg.space = pop::StrategySpace::Pure;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  cfg.seed = 4242;
  return cfg;
}

TEST(Preview, MemoryZeroIpdEndsInDefection) {
  const auto cfg = preset_config("ipd");
  const auto r = run_preview(cfg);
  ASSERT_EQ(r.model.classes.size(), 2u);
  // The initial population is ~half cooperators; defection dominates the
  // one-shot PD, so the mean field must drain cooperation.
  EXPECT_GT(r.initial_cooperation, 0.2);
  EXPECT_LT(r.initial_cooperation, 0.8);
  EXPECT_LT(r.final_cooperation, 0.15);
  EXPECT_LT(r.final_cooperation, r.initial_cooperation);
}

TEST(Preview, HawkDoveRelaxesToTheInteriorEquilibrium) {
  auto cfg = preset_config("hawk_dove");
  cfg.ssets = 16;
  cfg.mutation_rate = 0.0;
  cfg.beta = 2.0;
  cfg.generations = 100000;
  const auto r = run_preview(cfg);
  // {R,S,T,P} = {1, 0, 2, -0.5}: the infinite-population ESS is hawk =
  // 2/3, but the engine's self-excluded finite-N fitness shifts the
  // zero-gap point to h* = (N + 1.5) / (1.5 N) — the preview model must
  // carry exactly that correction. Class 1 (always-defect) is hawk; the
  // cooperation headline is the dove share.
  const double n = cfg.ssets;
  const double h_star = (n + 1.5) / (1.5 * n);
  EXPECT_NEAR(r.trajectory.final_state[1], h_star, 5e-3);
  EXPECT_NEAR(r.final_cooperation, 1.0 - h_star, 5e-3);
}

TEST(Preview, MemoryOneEnumeratesAllSixteenTables) {
  auto cfg = preset_config("ipd", /*memory=*/1);
  const auto pm = build_preview_model(cfg);
  ASSERT_EQ(pm.classes.size(), 16u);
  ASSERT_EQ(pm.labels.size(), 16u);
  EXPECT_EQ(std::set<std::string>(pm.labels.begin(), pm.labels.end()).size(),
            16u);
  const double total = std::accumulate(pm.x0.begin(), pm.x0.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Class 0 is the all-cooperate table, class 15 all-defect.
  EXPECT_DOUBLE_EQ(pm.coop[0], 1.0);
  EXPECT_DOUBLE_EQ(pm.coop[15], 0.0);
}

TEST(Preview, RpsPreviewStaysOnTheSimplexWithThreeClasses) {
  auto cfg = preset_config("rps");
  cfg.mutation_rate = 0.05;
  const auto r = run_preview(cfg);
  ASSERT_EQ(r.model.classes.size(), 3u);
  EXPECT_LE(r.trajectory.max_simplex_drift, 1e-9);
  double sum = 0.0;
  for (double v : r.trajectory.final_state) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Preview, BitflipKernelBecomesAHammingNeighbourMatrix) {
  auto cfg = preset_config("ipd", /*memory=*/1);
  cfg.mutation_kernel = pop::MutationKernel::PureBitFlip;
  cfg.mutation_bits = 1;
  const auto pm = build_preview_model(cfg);
  ASSERT_EQ(pm.model.mutation.size(), 16u * 16u);
  for (std::size_t a = 0; a < 16; ++a) {
    double row = 0.0;
    for (std::size_t b = 0; b < 16; ++b) {
      const double p = pm.model.mutation[a * 16 + b];
      row += p;
      const int hamming = __builtin_popcount(static_cast<unsigned>(a ^ b));
      if (hamming == 1) {
        EXPECT_DOUBLE_EQ(p, 0.25);
      } else {
        EXPECT_DOUBLE_EQ(p, 0.0);
      }
    }
    EXPECT_NEAR(row, 1.0, 1e-12);
  }
}

TEST(Preview, InitialMixMatchesTheEnginePopulationExactly) {
  const auto cfg = preset_config("donation");
  const auto pm = build_preview_model(cfg);
  // x0 must be a multiple of 1/ssets per class: it is a classification of
  // the actual make_initial_population output, not an idealized 50/50.
  for (double v : pm.x0) {
    const double scaled = v * cfg.ssets;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
  }
}

TEST(Preview, UnsupportedConfigsAreReportedWithAReason) {
  std::string why;

  auto mixed = preset_config("ipd");
  mixed.space = pop::StrategySpace::Mixed;
  EXPECT_FALSE(preview_supported(mixed, &why));
  EXPECT_NE(why.find("continuum"), std::string::npos);
  EXPECT_THROW((void)build_preview_model(mixed), std::invalid_argument);

  auto deep = preset_config("ipd", /*memory=*/2);
  EXPECT_FALSE(preview_supported(deep, &why));

  auto structured = preset_config("ipd");
  structured.interaction.kind = core::InteractionSpec::Kind::Ring;
  EXPECT_FALSE(preview_supported(structured, &why));

  auto pgg = preset_config("pgg");
  EXPECT_FALSE(preview_supported(pgg, &why));

  auto multiflip = preset_config("ipd", /*memory=*/1);
  multiflip.mutation_kernel = pop::MutationKernel::PureBitFlip;
  multiflip.mutation_bits = 2;
  EXPECT_FALSE(preview_supported(multiflip, &why));

  EXPECT_TRUE(preview_supported(preset_config("stag_hunt"), &why)) << why;
}

}  // namespace
}  // namespace egt::analysis::meanfield
