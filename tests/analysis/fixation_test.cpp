#include "analysis/fixation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "game/named.hpp"
#include "simcheck/stats.hpp"

namespace egt::analysis {
namespace {

core::SimConfig base_config() {
  core::SimConfig cfg;
  cfg.memory = 1;
  cfg.ssets = 8;
  cfg.pc_rate = 1.0;
  cfg.mutation_rate = 0.0;
  cfg.beta = 10.0;
  cfg.seed = 99;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  return cfg;
}

TEST(Fixation, PureImitationEventuallyFixates) {
  auto cfg = base_config();
  cfg.generations = 1;  // run_until_fixation drives the engine itself
  core::Engine engine(cfg);
  const auto result = run_until_fixation(engine, 100000, 1.0);
  ASSERT_TRUE(result.fixated);
  EXPECT_DOUBLE_EQ(result.final_dominant_fraction, 1.0);
  ASSERT_TRUE(result.strategy.has_value());
}

TEST(Fixation, AlreadyFixatedPopulationReturnsImmediately) {
  auto cfg = base_config();
  cfg.mutation_rate = 0.0;
  pop::NatureAgent nature(cfg.nature_config());
  std::vector<game::Strategy> ss(cfg.ssets, game::named::all_c(1));
  core::Engine engine(cfg, core::Engine::RestoredState{
                               0, nature.save_state(),
                               pop::Population(std::move(ss))});
  const auto result = run_until_fixation(engine, 1000, 1.0);
  ASSERT_TRUE(result.fixated);
  EXPECT_EQ(result.generation, 0u);
  EXPECT_EQ(engine.generation(), 0u);  // no work was done
}

TEST(Fixation, ThresholdBelowOneTriggersEarlier) {
  auto cfg = base_config();
  cfg.mutation_rate = 0.05;  // churn keeps full fixation away
  core::Engine engine(cfg);
  const auto result = run_until_fixation(engine, 50000, 0.6);
  // With ongoing mutation the 60% threshold is reachable; 100% rarely is.
  EXPECT_TRUE(result.fixated);
  EXPECT_GE(result.final_dominant_fraction, 0.6);
}

TEST(Fixation, GivesUpAfterBudget) {
  auto cfg = base_config();
  cfg.pc_rate = 0.0;  // nothing ever changes: fixation impossible
  core::Engine engine(cfg);
  const auto result = run_until_fixation(engine, 200, 1.0);
  EXPECT_FALSE(result.fixated);
  EXPECT_EQ(engine.generation(), 200u);
}

TEST(Fixation, CheckIntervalLargerThanBudgetStillChecksTheBoundary) {
  // Regression: with check_interval > max_generations the single stride
  // must be clamped to the budget and followed by a census — a fixation
  // reached inside the budget may not be silently missed.
  auto cfg = base_config();
  cfg.ssets = 2;
  cfg.memory = 0;
  cfg.beta = 50.0;  // ALLD -> ALLC adoption only; fixation in ~2 events
  pop::NatureAgent nature(cfg.nature_config());
  std::vector<game::Strategy> ss = {game::Strategy(game::PureStrategy(0)),
                                    game::named::all_d(0)};
  core::Engine engine(cfg, core::Engine::RestoredState{
                               0, nature.save_state(),
                               pop::Population(std::move(ss))});
  const auto result =
      run_until_fixation(engine, 50, 1.0, /*check_interval=*/1000);
  EXPECT_TRUE(result.fixated);
  EXPECT_EQ(result.generation, 50u);  // the one (clamped) boundary census
  EXPECT_EQ(engine.generation(), 50u);
}

TEST(Fixation, NonDividingIntervalRunsExactlyTheBudget) {
  // 16 does not divide 10: the loop must clamp the final stride, running
  // exactly max_generations — never rounding up to the next interval.
  auto cfg = base_config();
  cfg.pc_rate = 0.0;  // nothing changes: fixation unreachable
  core::Engine engine(cfg);
  const auto result = run_until_fixation(engine, 10, 1.0, 16);
  EXPECT_FALSE(result.fixated);
  EXPECT_EQ(engine.generation(), 10u);
  // The boundary census still ran and reported the dominant share.
  EXPECT_GT(result.final_dominant_fraction, 0.0);
}

TEST(Fixation, ValidatesArguments) {
  auto cfg = base_config();
  core::Engine engine(cfg);
  EXPECT_THROW((void)run_until_fixation(engine, 10, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)run_until_fixation(engine, 10, 1.0, 0),
               std::invalid_argument);
}

TEST(FixationProbability, StrongSelectionFavoursDominantStrategy) {
  // ALLD mutant in an ALLC sea: strictly better against every opponent the
  // population offers — under strong selection it should usually win.
  const auto cfg = base_config();
  const double p = fixation_probability(cfg, game::named::all_c(1),
                                        game::named::all_d(1), 20, 20000);
  EXPECT_GT(p, 0.8);
  // The reverse invasion should essentially never succeed.
  const double q = fixation_probability(cfg, game::named::all_d(1),
                                        game::named::all_c(1), 20, 20000);
  EXPECT_LT(q, 0.1);
}

TEST(FixationProbability, NeutralDriftIsRoughlyOneOverN) {
  // beta = 0: every imitation is a coin flip, so a single mutant fixates
  // with probability ~1/N (Moran neutral drift).
  auto cfg = base_config();
  cfg.beta = 0.0;
  cfg.ssets = 6;
  const double p =
      fixation_probability(cfg, game::named::all_c(1),
                           game::named::tit_for_tat(1), 120, 100000);
  EXPECT_NEAR(p, 1.0 / 6.0, 0.09);
}

TEST(FixationProbability, MatchesClosedFormForConstantFitnessGap) {
  // Closed-form pinning (Traulsen et al. 2007): under the paper payoff
  // [R,S,T,P] = [3,0,4,1] with PerRoundAverage scaling, an ALLD mutant's
  // fitness lead over the ALLC residents is delta = (N+2)/(N-1) no matter
  // how many defectors exist, so the pairwise-comparison chain has the
  // constant backward/forward ratio gamma = exp(-beta * delta) and
  //   rho = (1 - gamma) / (1 - gamma^N).
  auto cfg = base_config();
  cfg.beta = 1.0;
  cfg.ssets = 4;
  cfg.game.rounds = 8;
  const unsigned n = cfg.ssets;
  const double delta = (n + 2.0) / (n - 1.0);
  const double gamma = std::exp(-cfg.beta * delta);
  const double rho = (1.0 - gamma) / (1.0 - std::pow(gamma, n));
  const std::uint32_t trials = 600;
  const double p = fixation_probability(cfg, game::named::all_c(1),
                                        game::named::all_d(1), trials, 50000);
  // 99.9% binomial band around the prediction (z = 3.29).
  const double band = 3.29 * std::sqrt(rho * (1.0 - rho) / trials);
  EXPECT_NEAR(p, rho, band) << "closed form " << rho;
}

TEST(FixationProbability, NeutralClosedFormIsExactlyOneOverN) {
  // The same chain with beta = 0 has gamma = 1 and degenerates to the
  // neutral-drift limit rho = 1/N; pin the formula itself at a few sizes.
  for (const unsigned n : {2u, 4u, 8u, 64u}) {
    EXPECT_DOUBLE_EQ(
        simcheck::fermi_fixation_probability(0.0, /*beta=*/1.0, n),
        1.0 / n);
    EXPECT_DOUBLE_EQ(
        simcheck::fermi_fixation_probability(1.0, /*beta=*/0.0, n),
        1.0 / n);
  }
}

TEST(FixationProbability, WslsResistsAlldInvasion) {
  // The paper's payoffs make WSLS strictly stable against ALLD
  // ((T+P)/2 = 2.5 < R = 3), so ALLD invasions of WSLS must mostly fail.
  const auto cfg = base_config();
  const double p = fixation_probability(cfg, game::named::win_stay_lose_shift(1),
                                        game::named::all_d(1), 20, 20000);
  EXPECT_LT(p, 0.2);
}

}  // namespace
}  // namespace egt::analysis
