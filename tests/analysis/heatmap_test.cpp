#include "analysis/heatmap.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "game/named.hpp"

namespace egt::analysis {
namespace {

class HeatmapTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "egt_heatmap.ppm";
  void TearDown() override { std::remove(path_.c_str()); }

  std::string slurp() {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(HeatmapTest, WritesValidPpmHeaderAndSize) {
  HeatmapOptions opt;
  opt.cell_width = 2;
  opt.cell_height = 3;
  write_heatmap_ppm(path_, {{0.0, 1.0}, {0.5, 0.5}}, opt);
  const std::string data = slurp();
  EXPECT_EQ(data.rfind("P6\n4 6\n255\n", 0), 0u);
  // 4x6 pixels, 3 bytes each, after the 11-byte header.
  EXPECT_EQ(data.size(), 11u + 4u * 6u * 3u);
}

TEST_F(HeatmapTest, CooperateAndDefectGetDistinctColours) {
  write_heatmap_ppm(path_, {{0.0}, {1.0}},
                    {.cell_width = 1, .cell_height = 1, .row_order = {}});
  const std::string data = slurp();
  const auto header_end = data.find("255\n") + 4;
  // Defect pixel (blue-ish): blue channel dominates; cooperate (yellow):
  // red and green dominate.
  const unsigned char d_r = data[header_end + 0], d_b = data[header_end + 2];
  const unsigned char c_r = data[header_end + 3], c_b = data[header_end + 5];
  EXPECT_GT(d_b, d_r);
  EXPECT_GT(c_r, c_b);
}

TEST_F(HeatmapTest, RowOrderPermutesRows) {
  HeatmapOptions opt;
  opt.cell_width = 1;
  opt.cell_height = 1;
  opt.row_order = {1, 0};
  write_heatmap_ppm(path_, {{0.0}, {1.0}}, opt);
  const std::string swapped = slurp();
  opt.row_order = {0, 1};
  write_heatmap_ppm(path_, {{0.0}, {1.0}}, opt);
  const std::string natural = slurp();
  EXPECT_NE(swapped, natural);
}

TEST_F(HeatmapTest, PopulationConvenienceWrapper) {
  std::vector<game::Strategy> ss(4, game::Strategy(game::named::win_stay_lose_shift(1)));
  const pop::Population p(std::move(ss));
  write_population_heatmap(path_, p);
  EXPECT_FALSE(slurp().empty());
}

TEST_F(HeatmapTest, RejectsRaggedInput) {
  EXPECT_THROW(write_heatmap_ppm(path_, {{0.0, 1.0}, {0.5}}, {}),
               std::invalid_argument);
  EXPECT_THROW(write_heatmap_ppm(path_, {}, {}), std::invalid_argument);
}

TEST_F(HeatmapTest, RejectsBadRowOrder) {
  HeatmapOptions opt;
  opt.row_order = {0};  // wrong length for 2 rows
  EXPECT_THROW(write_heatmap_ppm(path_, {{0.0}, {1.0}}, opt),
               std::invalid_argument);
}

TEST(AsciiHeatmap, UsesFourLevels) {
  const std::string art =
      ascii_heatmap({{1.0, 0.6, 0.3, 0.0}}, 10);
  EXPECT_EQ(art, "CcdD\n");
}

TEST(AsciiHeatmap, TruncatesLongOutputs) {
  const std::vector<std::vector<double>> rows(100, std::vector<double>{1.0});
  const std::string art = ascii_heatmap(rows, 5);
  EXPECT_NE(art.find("..."), std::string::npos);
}

}  // namespace
}  // namespace egt::analysis
