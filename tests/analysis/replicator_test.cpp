#include "analysis/meanfield/replicator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace egt::analysis::meanfield {
namespace {

/// Two-strategy model whose class-1 fitness leads class 0 by a constant
/// `delta` regardless of the mix — the mean-field twin of the chain the
/// fixation closed form pins.
ReplicatorModel constant_gap_model(double delta, double beta,
                                   double pc_rate) {
  ReplicatorModel m;
  m.dim = 2;
  m.payoff = {0.0, 0.0, delta, delta};
  m.population = 0;  // infinite: f = payoff * x, unit event rates
  m.beta = beta;
  m.pc_rate = pc_rate;
  return m;
}

/// Hawk-Dove on the registry's numbers {R,S,T,P} = {1, 0, 2, -0.5}
/// (class 0 = dove, class 1 = hawk): interior equilibrium at hawk = 2/3,
/// where the fitness gap — and hence the tanh drift — vanishes for any
/// beta.
ReplicatorModel hawk_dove_model() {
  ReplicatorModel m;
  m.dim = 2;
  m.payoff = {1.0, 0.0, 2.0, -0.5};
  m.population = 0;
  m.beta = 2.0;
  m.pc_rate = 1.0;
  return m;
}

ReplicatorModel rps_model() {
  ReplicatorModel m;
  m.dim = 3;
  m.payoff = {0.0, -1.0, 1.0,  //
              1.0, 0.0,  -1.0,  //
              -1.0, 1.0, 0.0};
  m.population = 0;
  m.beta = 1.5;
  m.pc_rate = 1.0;
  return m;
}

TEST(Replicator, DriftSumsToZeroOnTheSimplex) {
  const auto m = rps_model();
  const std::vector<double> x = {0.5, 0.3, 0.2};
  const auto dx = m.drift(x);
  EXPECT_NEAR(dx[0] + dx[1] + dx[2], 0.0, 1e-15);
}

TEST(Replicator, SimplexInvariantHoldsOverLongIntegrations) {
  const auto m = rps_model();
  IntegrateOptions opts;
  opts.sample_every = 25.0;
  const auto r = integrate(m, {0.6, 0.25, 0.15}, 2000.0, opts);
  EXPECT_LE(r.max_simplex_drift, 1e-9);
  ASSERT_FALSE(r.states.empty());
  for (const auto& state : r.states) {
    double sum = 0.0;
    for (double v : state) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  EXPECT_GT(r.steps, 0u);
}

TEST(Replicator, HawkDoveConvergesToTheEssMix) {
  const auto m = hawk_dove_model();
  const auto r = integrate(m, {0.9, 0.1}, 400.0);
  EXPECT_NEAR(r.final_state[1], 2.0 / 3.0, 1e-6);
  // ... from the other side of the equilibrium too.
  const auto r2 = integrate(m, {0.05, 0.95}, 400.0);
  EXPECT_NEAR(r2.final_state[1], 2.0 / 3.0, 1e-6);
}

TEST(Replicator, RpsCenterIsAFixedPoint) {
  const auto m = rps_model();
  const std::vector<double> center = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  const auto dx = m.drift(center);
  for (double v : dx) EXPECT_NEAR(v, 0.0, 1e-15);
  const auto r = integrate(m, center, 500.0);
  for (double v : r.final_state) EXPECT_NEAR(v, 1.0 / 3.0, 1e-9);
}

TEST(Replicator, ConstantGapMatchesTheLogisticClosedForm) {
  // dx/dt = c x (1 - x) with c = pc * tanh(beta * delta / 2) has the
  // exact solution x(t) = x0 e^{ct} / (1 + x0 (e^{ct} - 1)).
  const double delta = 1.25, beta = 0.8, pc = 0.6, x0 = 0.07;
  const auto m = constant_gap_model(delta, beta, pc);
  const double c = pc * std::tanh(0.5 * beta * delta);
  IntegrateOptions opts;
  opts.tolerance = 1e-11;
  for (const double t : {2.0, 7.5, 20.0, 60.0}) {
    const auto r = integrate(m, {1.0 - x0, x0}, t, opts);
    const double e = std::exp(c * t);
    const double expect = x0 * e / (1.0 + x0 * (e - 1.0));
    EXPECT_NEAR(r.final_state[1], expect, 1e-8) << "t = " << t;
  }
}

TEST(Replicator, FiniteNPrefactorsSlowTheFlowByNMinusOne) {
  // The finite-N drift is pc/(N-1) * the infinite-population drift when
  // the payoff has no self-interaction correction (diagonal-free gap
  // model): integrating N-1 times longer must land on the same point.
  const double delta = 1.0;
  auto inf = constant_gap_model(delta, 1.0, 1.0);
  auto fin = inf;
  fin.population = 33;
  // Kill the self-exclusion difference: with payoff rows constant in the
  // column, (N (Pi x)_i - Pi_ii) / (N - 1) == (Pi x)_i exactly.
  const auto a = integrate(inf, {0.8, 0.2}, 10.0);
  const auto b = integrate(fin, {0.8, 0.2}, 10.0 * (33 - 1));
  EXPECT_NEAR(a.final_state[1], b.final_state[1], 1e-7);
}

TEST(Replicator, MutationPullsTowardTheKernelMix) {
  // pc = 0 isolates the mutation term: dx/dt = mu/N (q - x) with uniform
  // q, so the state relaxes to 1/dim exactly.
  ReplicatorModel m = rps_model();
  m.pc_rate = 0.0;
  m.mutation_rate = 0.5;
  m.population = 10;
  const auto r = integrate(m, {1.0, 0.0, 0.0}, 2000.0);
  for (double v : r.final_state) EXPECT_NEAR(v, 1.0 / 3.0, 1e-7);
}

TEST(Replicator, ExplicitMutationKernelIsHonoured) {
  ReplicatorModel m;
  m.dim = 2;
  m.payoff = {0.0, 0.0, 0.0, 0.0};
  m.population = 0;
  m.pc_rate = 0.0;
  m.mutation_rate = 1.0;
  // Every mutation lands on class 1 regardless of source.
  m.mutation = {0.0, 1.0, 0.0, 1.0};
  const auto r = integrate(m, {1.0, 0.0}, 200.0);
  EXPECT_NEAR(r.final_state[1], 1.0, 1e-9);
}

TEST(Replicator, TighterToleranceTakesMoreSteps) {
  const auto m = rps_model();
  IntegrateOptions loose;
  loose.tolerance = 1e-5;
  IntegrateOptions tight;
  tight.tolerance = 1e-12;
  const auto a = integrate(m, {0.6, 0.25, 0.15}, 300.0, loose);
  const auto b = integrate(m, {0.6, 0.25, 0.15}, 300.0, tight);
  EXPECT_GT(b.steps, a.steps);
}

TEST(Replicator, SampleGridIsHonoured) {
  const auto m = hawk_dove_model();
  IntegrateOptions opts;
  opts.sample_every = 10.0;
  const auto r = integrate(m, {0.5, 0.5}, 100.0, opts);
  ASSERT_GE(r.times.size(), 11u);  // t = 0, 10, ..., 100
  for (std::size_t i = 0; i + 1 < r.times.size(); ++i) {
    EXPECT_LT(r.times[i], r.times[i + 1]);
  }
  EXPECT_DOUBLE_EQ(r.times.front(), 0.0);
  EXPECT_DOUBLE_EQ(r.times.back(), 100.0);
  EXPECT_NEAR(r.times[1], 10.0, 1e-9);
}

TEST(Replicator, SampleAtMatchesDirectIntegration) {
  const auto m = hawk_dove_model();
  const std::vector<double> x0 = {0.8, 0.2};
  const auto states = sample_at(m, x0, {0.0, 5.0, 25.0, 80.0});
  ASSERT_EQ(states.size(), 4u);
  EXPECT_EQ(states[0], x0);
  const auto direct = integrate(m, x0, 25.0);
  EXPECT_NEAR(states[2][1], direct.final_state[1], 1e-8);
}

TEST(Replicator, ValidatesModelAndInitialState) {
  ReplicatorModel bad;
  bad.dim = 2;
  bad.payoff = {1.0};  // wrong size
  EXPECT_THROW((void)integrate(bad, {0.5, 0.5}, 1.0), std::invalid_argument);

  const auto m = hawk_dove_model();
  EXPECT_THROW((void)integrate(m, {0.5, 0.4}, 1.0),  // off the simplex
               std::invalid_argument);
  EXPECT_THROW((void)integrate(m, {0.5, 0.5, 0.0}, 1.0),  // wrong dim
               std::invalid_argument);

  ReplicatorModel bad_kernel = m;
  bad_kernel.mutation = {0.5, 0.4, 0.5, 0.5};  // row 0 sums to 0.9
  bad_kernel.mutation_rate = 0.1;
  EXPECT_THROW((void)integrate(bad_kernel, {0.5, 0.5}, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace egt::analysis::meanfield
