// The explicit SSet-ownership table: initial assignment must match the
// fault-free BlockPartition arithmetic, reassignment must move ONLY the
// dead rank's ranges, and the wire round trip must reject tables that do
// not tile the population.
#include <gtest/gtest.h>

#include "core/wire.hpp"
#include "ft/ownership.hpp"
#include "par/partition.hpp"

namespace egt::ft {
namespace {

using core::wire::Reader;
using core::wire::Writer;

TEST(OwnershipTable, InitialMatchesBlockPartition) {
  const pop::SSetId ssets = 24;
  const int nranks = 5;
  const auto table = OwnershipTable::initial(ssets, nranks);
  const par::BlockPartition part(ssets, nranks);
  ASSERT_EQ(table.ranges().size(), static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    const auto& range = table.ranges()[static_cast<std::size_t>(r)];
    EXPECT_EQ(range.begin, part.begin(static_cast<std::uint64_t>(r)));
    EXPECT_EQ(range.end, part.end(static_cast<std::uint64_t>(r)));
    EXPECT_EQ(range.owner, r);
  }
  for (pop::SSetId i = 0; i < ssets; ++i) {
    EXPECT_EQ(table.owner_of(i),
              static_cast<int>(part.owner(i)));
  }
}

TEST(OwnershipTable, RangesOfCollectsARanksRanges) {
  auto table = OwnershipTable::initial(10, 3);
  const auto ranges = table.ranges_of(1);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].first, 4u);
  EXPECT_EQ(ranges[0].second, 7u);
  EXPECT_TRUE(table.ranges_of(99).empty());
}

TEST(OwnershipTable, ReassignMovesOnlyTheDeadRanksRanges) {
  auto table = OwnershipTable::initial(24, 4);  // 6 SSets per rank
  const auto before_r1 = table.ranges_of(1);
  const auto before_r3 = table.ranges_of(3);
  table.reassign(2, {0, 1, 3});

  // Survivors keep exactly what they had, plus a share of [12, 18).
  EXPECT_TRUE(table.ranges_of(2).empty());
  for (const auto& r : before_r1) {
    EXPECT_EQ(table.owner_of(r.first), 1);
  }
  for (const auto& r : before_r3) {
    EXPECT_EQ(table.owner_of(r.first), 3);
  }
  // The dead range [12, 18) is split 2/2/2 across {0, 1, 3}.
  EXPECT_EQ(table.owner_of(12), 0);
  EXPECT_EQ(table.owner_of(13), 0);
  EXPECT_EQ(table.owner_of(14), 1);
  EXPECT_EQ(table.owner_of(15), 1);
  EXPECT_EQ(table.owner_of(16), 3);
  EXPECT_EQ(table.owner_of(17), 3);

  // Still a tiling of [0, 24).
  pop::SSetId expect = 0;
  for (const auto& r : table.ranges()) {
    EXPECT_EQ(r.begin, expect);
    expect = r.end;
  }
  EXPECT_EQ(expect, 24u);
}

TEST(OwnershipTable, ReassignIsDeterministic) {
  auto a = OwnershipTable::initial(23, 5);
  auto b = OwnershipTable::initial(23, 5);
  a.reassign(3, {0, 1, 2, 4});
  b.reassign(3, {0, 1, 2, 4});
  ASSERT_EQ(a.ranges().size(), b.ranges().size());
  for (std::size_t i = 0; i < a.ranges().size(); ++i) {
    EXPECT_EQ(a.ranges()[i].begin, b.ranges()[i].begin);
    EXPECT_EQ(a.ranges()[i].end, b.ranges()[i].end);
    EXPECT_EQ(a.ranges()[i].owner, b.ranges()[i].owner);
  }
}

TEST(OwnershipTable, NestedReassignStillTiles) {
  auto table = OwnershipTable::initial(17, 5);
  table.reassign(2, {0, 1, 3, 4});
  table.reassign(4, {0, 1, 3});
  pop::SSetId expect = 0;
  for (const auto& r : table.ranges()) {
    ASSERT_EQ(r.begin, expect);
    ASSERT_NE(r.owner, 2);
    ASSERT_NE(r.owner, 4);
    expect = r.end;
  }
  EXPECT_EQ(expect, 17u);
}

TEST(OwnershipTable, EncodeDecodeRoundTrip) {
  auto table = OwnershipTable::initial(24, 4);
  table.reassign(1, {0, 2, 3});
  Writer w;
  table.encode(w);
  const auto blob = w.take();
  Reader r(blob, "ownership table");
  const auto back = OwnershipTable::decode(r);
  r.expect_exhausted();
  ASSERT_EQ(back.ranges().size(), table.ranges().size());
  for (std::size_t i = 0; i < table.ranges().size(); ++i) {
    EXPECT_EQ(back.ranges()[i].begin, table.ranges()[i].begin);
    EXPECT_EQ(back.ranges()[i].end, table.ranges()[i].end);
    EXPECT_EQ(back.ranges()[i].owner, table.ranges()[i].owner);
  }
}

TEST(OwnershipTable, DecodeRejectsNonTilingRanges) {
  // Two ranges with a hole: [0, 4) then [6, 10).
  Writer w;
  w.u32(10);  // ssets
  w.u32(2);   // range count
  w.u32(0);
  w.u32(4);
  w.u32(0);
  w.u32(6);
  w.u32(10);
  w.u32(1);
  const auto blob = w.take();
  Reader r(blob, "ownership table");
  EXPECT_THROW((void)OwnershipTable::decode(r), core::CheckpointError);
}

TEST(OwnershipTable, DecodeRejectsShortCoverage) {
  Writer w;
  w.u32(10);  // ssets
  w.u32(1);   // range count
  w.u32(0);
  w.u32(8);  // stops short of 10
  w.u32(0);
  const auto blob = w.take();
  Reader r(blob, "ownership table");
  EXPECT_THROW((void)OwnershipTable::decode(r), core::CheckpointError);
}

TEST(OwnershipTable, DecodeRejectsTruncation) {
  auto table = OwnershipTable::initial(12, 3);
  Writer w;
  table.encode(w);
  auto blob = w.take();
  blob.resize(blob.size() - 5);
  Reader r(blob, "ownership table");
  EXPECT_THROW((void)OwnershipTable::decode(r), core::CheckpointError);
}

}  // namespace
}  // namespace egt::ft
