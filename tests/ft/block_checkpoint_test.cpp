// Block-checkpoint blob hardening and the CheckpointStore freshness
// contract. The negative tests are the ASan/UBSan canaries: a hostile blob
// must throw CheckpointError, never read out of bounds.
#include <gtest/gtest.h>

#include <cstring>

#include "core/checkpoint_store.hpp"
#include "core/wire.hpp"
#include "ft/block_checkpoint.hpp"

namespace egt::ft {
namespace {

BlockCheckpoint sample(pop::SSetId begin = 4, pop::SSetId end = 8,
                       std::uint32_t cols = 6) {
  BlockCheckpoint c;
  c.config_fingerprint = 0xfeedbeef;
  c.generation = 12;
  c.table_hash = 0xabcdef;
  c.begin = begin;
  c.end = end;
  c.matrix_cols = cols;
  for (pop::SSetId i = begin; i < end; ++i) {
    c.fitness.push_back(0.5 * i);
  }
  c.matrix.resize(static_cast<std::size_t>(end - begin) * cols);
  for (std::size_t i = 0; i < c.matrix.size(); ++i) {
    c.matrix[i] = 0.25 * static_cast<double>(i) - 3.0;
  }
  c.dedup.push_back({0x1111, 0x2222, 2.5});
  c.dedup.push_back({0x1111, 0x3333, -0.75});
  return c;
}

TEST(BlockCheckpoint, EncodeDecodeRoundTrip) {
  const auto c = sample();
  const auto back = BlockCheckpoint::decode(c.encode());
  EXPECT_EQ(back.config_fingerprint, c.config_fingerprint);
  EXPECT_EQ(back.generation, c.generation);
  EXPECT_EQ(back.table_hash, c.table_hash);
  EXPECT_EQ(back.begin, c.begin);
  EXPECT_EQ(back.end, c.end);
  EXPECT_EQ(back.matrix_cols, c.matrix_cols);
  EXPECT_EQ(back.fitness, c.fitness);
  EXPECT_EQ(back.matrix, c.matrix);
  ASSERT_EQ(back.dedup.size(), c.dedup.size());
  for (std::size_t i = 0; i < c.dedup.size(); ++i) {
    EXPECT_EQ(back.dedup[i].a, c.dedup[i].a);
    EXPECT_EQ(back.dedup[i].b, c.dedup[i].b);
    EXPECT_EQ(back.dedup[i].payoff, c.dedup[i].payoff);
  }
}

TEST(BlockCheckpoint, RejectsOversizedDedupCount) {
  // Forge a dedup entry count far larger than the blob: the decoder must
  // reject it before reserving or looping.
  auto c = sample();
  c.dedup.clear();
  auto blob = c.encode();
  const std::uint64_t huge = ~0ull;
  std::memcpy(blob.data() + blob.size() - 8, &huge, sizeof huge);
  EXPECT_THROW((void)BlockCheckpoint::decode(blob), core::CheckpointError);
}

TEST(BlockCheckpoint, SampledModeHasNoMatrix) {
  const auto c = sample(0, 5, /*cols=*/0);
  const auto back = BlockCheckpoint::decode(c.encode());
  EXPECT_EQ(back.matrix_cols, 0u);
  EXPECT_TRUE(back.matrix.empty());
  EXPECT_EQ(back.fitness, c.fitness);
}

TEST(BlockCheckpoint, RejectsTruncationAtEveryLength) {
  const auto blob = sample().encode();
  for (std::size_t len = 0; len < blob.size(); ++len) {
    std::vector<std::byte> cut(blob.begin(),
                               blob.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)BlockCheckpoint::decode(cut), core::CheckpointError)
        << "truncated to " << len << " of " << blob.size() << " bytes";
  }
}

TEST(BlockCheckpoint, RejectsBadMagic) {
  auto blob = sample().encode();
  blob[0] = std::byte{0x00};
  EXPECT_THROW((void)BlockCheckpoint::decode(blob), core::CheckpointError);
}

TEST(BlockCheckpoint, RejectsUnsupportedVersionWithClearMessage) {
  auto blob = sample().encode();
  const std::uint32_t bogus = kBlockCheckpointVersion + 41;
  std::memcpy(blob.data() + 8, &bogus, sizeof bogus);  // magic is 8 bytes
  try {
    (void)BlockCheckpoint::decode(blob);
    FAIL() << "expected CheckpointError";
  } catch (const core::CheckpointError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version"), std::string::npos) << what;
  }
}

TEST(BlockCheckpoint, RejectsTrailingBytes) {
  auto blob = sample().encode();
  blob.push_back(std::byte{0x7f});
  EXPECT_THROW((void)BlockCheckpoint::decode(blob), core::CheckpointError);
}

TEST(BlockCheckpoint, RejectsInvertedRange) {
  // encode() refuses an inverted range, so forge one in the bytes: the
  // begin/end fields sit after magic(8) + version(4) + three u64 headers.
  auto blob = sample().encode();
  const std::uint32_t begin = 9, end = 4;
  std::memcpy(blob.data() + 36, &begin, sizeof begin);
  std::memcpy(blob.data() + 40, &end, sizeof end);
  EXPECT_THROW((void)BlockCheckpoint::decode(blob), core::CheckpointError);
}

TEST(BlockCheckpoint, SlicesExtractSubRanges) {
  const auto c = sample(4, 8, 3);
  EXPECT_TRUE(c.covers(5, 7));
  EXPECT_FALSE(c.covers(3, 7));
  const auto f = c.fitness_slice(5, 7);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_DOUBLE_EQ(f[0], c.fitness[1]);
  EXPECT_DOUBLE_EQ(f[1], c.fitness[2]);
  const auto m = c.matrix_slice(5, 7);
  ASSERT_EQ(m.size(), 6u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(m[i], c.matrix[3 + i]);
  }
}

TEST(CheckpointStore, FindCoveringChecksFreshness) {
  CheckpointStore store;
  const auto c = sample(4, 8, 6);
  store.put(2, c.begin, c.end, c.generation, c.encode());
  EXPECT_EQ(store.entries(), 1u);

  // Exact generation + table hash: hit.
  auto hit = store.find_covering(5, 7, c.generation, c.table_hash);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->begin, 4u);

  // Cached fitness (matrix_cols > 0) is a pure function of the strategy
  // table: an older generation with the same table hash is still bit-exact,
  // so it hits — that is what makes torn-newest fallback possible.
  auto older = store.find_covering(5, 7, c.generation + 3, c.table_hash);
  ASSERT_TRUE(older.has_value());
  EXPECT_EQ(older->generation, c.generation);

  // Foreign table: miss.
  EXPECT_FALSE(
      store.find_covering(5, 7, c.generation, c.table_hash ^ 1).has_value());
  // Range not covered: miss.
  EXPECT_FALSE(
      store.find_covering(2, 7, c.generation, c.table_hash).has_value());
}

TEST(CheckpointStore, SampledBlobsRequireExactGeneration) {
  CheckpointStore store;
  const auto c = sample(0, 5, /*cols=*/0);
  store.put(1, 0, 5, c.generation, c.encode());
  // Sampled fitness depends on the generation's RNG draws: only the exact
  // generation restores bit-exactly.
  EXPECT_TRUE(store.find_covering(0, 5, c.generation, c.table_hash));
  EXPECT_FALSE(store.find_covering(0, 5, c.generation + 1, c.table_hash));
}

TEST(CheckpointStore, RetainsNewestGenerationsPerRange) {
  CheckpointStore store(/*keep=*/2);
  auto c = sample(0, 4, /*cols=*/0);
  for (std::uint64_t gen : {5u, 10u, 15u}) {
    c.generation = gen;
    store.put(1, 0, 4, gen, c.encode());
  }
  EXPECT_EQ(store.entries(), 2u);
  EXPECT_FALSE(store.find_covering(0, 4, 5, c.table_hash).has_value());
  EXPECT_TRUE(store.find_covering(0, 4, 10, c.table_hash).has_value());
  EXPECT_TRUE(store.find_covering(0, 4, 15, c.table_hash).has_value());

  // A resend of the same generation replaces its twin, never duplicates.
  store.put(1, 0, 4, 15, c.encode());
  EXPECT_EQ(store.entries(), 2u);
}

TEST(CheckpointStore, CorruptEntriesAreSkippedNotFatal) {
  CheckpointStore store;
  const auto good = sample(0, 8, 4);
  auto corrupt = good.encode();
  corrupt.resize(corrupt.size() / 2);
  store.put(1, 0, 8, good.generation, corrupt);  // rank 1's blob is damaged
  store.put(2, 0, 8, good.generation, good.encode());  // rank 2's is fine
  const auto hit =
      store.find_covering(0, 8, good.generation, good.table_hash);
  ASSERT_TRUE(hit.has_value()) << "damaged entry must not mask the good one";
  EXPECT_EQ(hit->fitness, good.fitness);
}

TEST(CheckpointStore, TornNewestFallsBackToOlderIntactGeneration) {
  CheckpointStore store;
  auto c = sample(0, 8, 4);
  c.generation = 10;
  store.put(1, 0, 8, 10, c.encode());
  c.generation = 20;
  store.put(1, 0, 8, 20, c.encode(), /*torn=*/true);

  int corrupt_calls = 0;
  const auto hit = store.find_covering(
      0, 8, 20, c.table_hash,
      [&](const std::string& why) {
        ++corrupt_calls;
        EXPECT_FALSE(why.empty());
      });
  ASSERT_TRUE(hit.has_value()) << "torn newest must degrade, not fail";
  EXPECT_EQ(hit->generation, 10u);
  EXPECT_EQ(corrupt_calls, 1);
}

TEST(CheckpointStore, TracksTotalBytesIncludingCrcFooters) {
  CheckpointStore store;
  const auto blob = sample().encode();
  const std::uint64_t stored = blob.size() + core::kCrcFooterBytes;
  store.put(1, 4, 8, 12, blob);
  EXPECT_EQ(store.total_bytes(), stored);
  store.put(2, 8, 12, 12, blob);
  EXPECT_EQ(store.total_bytes(), 2 * stored);
}

}  // namespace
}  // namespace egt::ft
