// FaultPlan parsing, programmatic construction and validation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "ft/fault_plan.hpp"
#include "ft/protocol.hpp"

namespace egt::ft {
namespace {

TEST(FaultPlan, ParsesFullSchema) {
  const auto plan = FaultPlan::parse(R"({
    "schema": "egt.fault_plan/v1",
    "kills":  [ {"rank": 2, "generation": 50} ],
    "drops":  [ {"source": 1, "dest": 0, "tag": "fit",
                 "skip": 2, "count": 3} ],
    "delays": [ {"source": "any", "dest": 0, "tag": "plan_ack",
                 "count": 2, "delay_ms": 40} ]
  })");
  ASSERT_EQ(plan.kills().size(), 1u);
  EXPECT_EQ(plan.kills()[0].rank, 2);
  EXPECT_EQ(plan.kills()[0].generation, 50u);

  ASSERT_EQ(plan.drops().size(), 1u);
  EXPECT_EQ(plan.drops()[0].source, 1);
  EXPECT_EQ(plan.drops()[0].dest, 0);
  EXPECT_EQ(plan.drops()[0].tag, tag::kFit);
  EXPECT_EQ(plan.drops()[0].skip, 2u);
  EXPECT_EQ(plan.drops()[0].count, 3u);

  ASSERT_EQ(plan.delays().size(), 1u);
  EXPECT_EQ(plan.delays()[0].source, kAny);
  EXPECT_EQ(plan.delays()[0].tag, tag::kPlanAck);
  EXPECT_EQ(plan.delays()[0].delay_ms, 40u);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, EmptyDocumentIsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("{}").empty());
}

TEST(FaultPlan, NumericTagsAccepted) {
  const auto plan =
      FaultPlan::parse(R"({"drops": [ {"tag": 4099} ]})");  // 0x1003 = req_fit
  ASSERT_EQ(plan.drops().size(), 1u);
  EXPECT_EQ(plan.drops()[0].tag, tag::kReqFit);
  EXPECT_EQ(plan.drops()[0].source, kAny);
  EXPECT_EQ(plan.drops()[0].dest, kAny);
  EXPECT_EQ(plan.drops()[0].count, 1u) << "count defaults to one";
}

TEST(FaultPlan, TagNamesCoverTheProtocol) {
  EXPECT_EQ(tag::from_name("plan"), tag::kPlan);
  EXPECT_EQ(tag::from_name("plan_ack"), tag::kPlanAck);
  EXPECT_EQ(tag::from_name("req_fit"), tag::kReqFit);
  EXPECT_EQ(tag::from_name("fit"), tag::kFit);
  EXPECT_EQ(tag::from_name("decide"), tag::kDecide);
  EXPECT_EQ(tag::from_name("ping"), tag::kPing);
  EXPECT_EQ(tag::from_name("pong"), tag::kPong);
  EXPECT_EQ(tag::from_name("reconfig"), tag::kReconfig);
  EXPECT_EQ(tag::from_name("reconfig_ack"), tag::kReconfigAck);
  EXPECT_EQ(tag::from_name("req_blocks"), tag::kReqBlocks);
  EXPECT_EQ(tag::from_name("blocks"), tag::kBlocks);
  EXPECT_EQ(tag::from_name("stop"), tag::kStop);
  EXPECT_EQ(tag::from_name("final"), tag::kFinal);
  EXPECT_EQ(tag::from_name("bye"), tag::kBye);
  EXPECT_EQ(tag::from_name("any"), kAny);
}

TEST(FaultPlan, RejectsMalformedInput) {
  EXPECT_THROW((void)FaultPlan::parse("not json"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("[1,2]"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse(R"({"schema": "something/v9"})"),
               std::runtime_error);
  // A kill needs a concrete rank and generation.
  EXPECT_THROW((void)FaultPlan::parse(R"({"kills": [ {"rank": 1} ]})"),
               std::runtime_error);
  // Unknown tag name.
  EXPECT_THROW((void)FaultPlan::parse(R"({"drops": [ {"tag": "warp"} ]})"),
               std::runtime_error);
  // delay_ms makes no sense on a drop rule.
  EXPECT_THROW(
      (void)FaultPlan::parse(R"({"drops": [ {"tag": 1, "delay_ms": 5} ]})"),
      std::runtime_error);
}

TEST(FaultPlan, KillGenerationLookup) {
  FaultPlan plan;
  plan.kill(3, 17);
  ASSERT_TRUE(plan.kill_generation(3).has_value());
  EXPECT_EQ(*plan.kill_generation(3), 17u);
  EXPECT_FALSE(plan.kill_generation(2).has_value());
}

TEST(FaultPlan, ValidateAcceptsExecutablePlans) {
  FaultPlan plan;
  plan.kill(1, 5).kill(2, 9);
  plan.drop({1, 0, tag::kFit, 0, 1, 0});
  EXPECT_NO_THROW(plan.validate(4));
}

TEST(FaultPlan, ValidateAcceptsKillingNature) {
  // Killing rank 0 became a legal plan with master failover; whether a
  // standby exists to survive it is the engine's check, not the plan's.
  FaultPlan plan;
  plan.kill(0, 5);
  EXPECT_NO_THROW(plan.validate(4));
}

TEST(FaultPlan, ValidateRejectsKillingEveryRank) {
  FaultPlan plan;
  for (int r = 0; r < 4; ++r) plan.kill(r, 5);
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
}

TEST(FaultPlan, ValidateRejectsOutOfRangeRanks) {
  FaultPlan kills;
  kills.kill(4, 5);
  EXPECT_THROW(kills.validate(4), std::invalid_argument);
  FaultPlan drops;
  drops.drop({7, kAny, kAny, 0, 1, 0});
  EXPECT_THROW(drops.validate(4), std::invalid_argument);
}

TEST(FaultPlan, ValidateRejectsDoubleKills) {
  FaultPlan plan;
  plan.kill(2, 5).kill(2, 9);
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
}

TEST(FaultPlan, FromFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/egt_fault_plan.json";
  {
    std::ofstream out(path);
    out << R"({"kills": [ {"rank": 1, "generation": 3} ]})";
  }
  const auto plan = FaultPlan::from_file(path);
  ASSERT_EQ(plan.kills().size(), 1u);
  EXPECT_EQ(plan.kills()[0].rank, 1);
  std::remove(path.c_str());
}

TEST(FaultPlan, FromFileMissingFileNamesThePath) {
  try {
    (void)FaultPlan::from_file("/nonexistent/egt.json");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/egt.json"),
              std::string::npos);
  }
}

TEST(MessageFault, WildcardMatching) {
  const MessageFault any{};  // all fields kAny-by-default except skip/count
  EXPECT_TRUE(any.matches(1, 0, tag::kFit));
  const MessageFault exact{1, 0, tag::kFit, 0, 1, 0};
  EXPECT_TRUE(exact.matches(1, 0, tag::kFit));
  EXPECT_FALSE(exact.matches(2, 0, tag::kFit));
  EXPECT_FALSE(exact.matches(1, 2, tag::kFit));
  EXPECT_FALSE(exact.matches(1, 0, tag::kPong));
}

}  // namespace
}  // namespace egt::ft
