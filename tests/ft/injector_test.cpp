// PlanFaultInjector determinism: rules fire at exact match positions, the
// release message (bye) is never droppable, and fired faults show up in
// the metrics registry.
#include <gtest/gtest.h>

#include "ft/fault_plan.hpp"
#include "ft/injector.hpp"
#include "ft/protocol.hpp"
#include "obs/metrics.hpp"
#include "par/fault.hpp"

namespace egt::ft {
namespace {

using par::FaultDecision;

TEST(PlanFaultInjector, SkipAndCountSelectExactSends) {
  FaultPlan plan;
  plan.drop({/*source=*/1, /*dest=*/0, /*tag=*/tag::kFit,
             /*skip=*/2, /*count=*/2, /*delay_ms=*/0});
  PlanFaultInjector inj(plan);
  // Sends 0 and 1 pass (skip), 2 and 3 drop (count), 4+ pass (budget spent).
  for (int i = 0; i < 6; ++i) {
    const auto d = inj.on_send(1, 0, tag::kFit, 16);
    const bool should_drop = (i == 2 || i == 3);
    EXPECT_EQ(d.kind == FaultDecision::Kind::Drop, should_drop)
        << "send #" << i;
  }
  EXPECT_EQ(inj.drops_fired(), 2u);
}

TEST(PlanFaultInjector, NonMatchingSendsDoNotAdvanceTheRule) {
  FaultPlan plan;
  plan.drop({1, 0, tag::kFit, /*skip=*/1, /*count=*/1, 0});
  PlanFaultInjector inj(plan);
  // A storm of unrelated traffic must not consume the skip budget.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(inj.on_send(2, 0, tag::kFit, 8).kind,
              FaultDecision::Kind::Deliver);
    EXPECT_EQ(inj.on_send(1, 0, tag::kBlocks, 8).kind,
              FaultDecision::Kind::Deliver);
  }
  EXPECT_EQ(inj.on_send(1, 0, tag::kFit, 8).kind,
            FaultDecision::Kind::Deliver);  // position 0: skipped
  EXPECT_EQ(inj.on_send(1, 0, tag::kFit, 8).kind,
            FaultDecision::Kind::Drop);  // position 1: fired
}

TEST(PlanFaultInjector, DelayRuleCarriesItsDuration) {
  FaultPlan plan;
  plan.delay({kAny, kAny, kAny, 0, 1, /*delay_ms=*/25});
  PlanFaultInjector inj(plan);
  const auto d = inj.on_send(3, 0, tag::kPong, 4);
  EXPECT_EQ(d.kind, FaultDecision::Kind::Delay);
  EXPECT_EQ(d.delay.count(), 25);
  EXPECT_EQ(inj.delays_fired(), 1u);
}

TEST(PlanFaultInjector, ByeIsExemptFromWildcardDrops) {
  FaultPlan plan;
  plan.drop({kAny, kAny, kAny, 0, /*count=*/1000, 0});
  PlanFaultInjector inj(plan);
  EXPECT_EQ(inj.on_send(0, 1, tag::kBye, 0).kind,
            FaultDecision::Kind::Deliver)
      << "dropping the release message would hang the join, not model a "
         "network fault";
  EXPECT_EQ(inj.on_send(0, 1, tag::kPlan, 64).kind, FaultDecision::Kind::Drop);
}

TEST(PlanFaultInjector, EveryMatchingRuleAdvancesItsPosition) {
  // Rule A claims the first matching send; rule B must still see it, so
  // B's "2nd matching send" stays the 2nd send overall.
  FaultPlan plan;
  plan.drop({1, 0, kAny, /*skip=*/0, /*count=*/1, 0});   // A: drop 1st
  plan.drop({1, 0, kAny, /*skip=*/1, /*count=*/1, 0});   // B: drop 2nd
  PlanFaultInjector inj(plan);
  EXPECT_EQ(inj.on_send(1, 0, tag::kFit, 8).kind, FaultDecision::Kind::Drop);
  EXPECT_EQ(inj.on_send(1, 0, tag::kFit, 8).kind, FaultDecision::Kind::Drop);
  EXPECT_EQ(inj.on_send(1, 0, tag::kFit, 8).kind,
            FaultDecision::Kind::Deliver);
  EXPECT_EQ(inj.drops_fired(), 2u);
}

TEST(PlanFaultInjector, FiredFaultsReachTheMetricsRegistry) {
  obs::MetricsRegistry reg;
  FaultPlan plan;
  plan.drop({kAny, kAny, tag::kFit, 0, 2, 0});
  plan.delay({kAny, kAny, tag::kPong, 0, 1, 15});
  PlanFaultInjector inj(plan, &reg);
  (void)inj.on_send(1, 0, tag::kFit, 8);
  (void)inj.on_send(2, 0, tag::kFit, 8);
  (void)inj.on_send(1, 0, tag::kPong, 4);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("ft.faults.messages_dropped"), 2u);
  EXPECT_EQ(snap.counter_value("ft.faults.messages_delayed"), 1u);
}

}  // namespace
}  // namespace egt::ft
