// A fixed slice of the chaos-soak seed space (tools/chaos_soak sweeps a
// much larger one in CI). Each seed derives a random fault schedule —
// master kills, cascades, drops, delays, torn checkpoints — and the run
// must still reproduce the serial oracle bit for bit.
#include <gtest/gtest.h>

#include "ft/chaos.hpp"

namespace egt::ft {
namespace {

TEST(ChaosSoak, SchedulesAreDeterministic) {
  const auto a = make_chaos_schedule(7);
  const auto b = make_chaos_schedule(7);
  EXPECT_EQ(a.summary, b.summary);
  EXPECT_EQ(a.nranks, b.nranks);
  EXPECT_EQ(a.config.seed, b.config.seed);
  EXPECT_EQ(a.options.plan.kills().size(), b.options.plan.kills().size());
  EXPECT_NE(a.summary, make_chaos_schedule(8).summary)
      << "different seeds should (virtually always) differ";
}

TEST(ChaosSoak, SeedSpaceCoversFailoverAndRecovery) {
  // The schedule generator must actually exercise the machinery: across a
  // modest window of seeds there are master kills, cascades and torn
  // checkpoints — not just fault-free runs.
  int master_kills = 0, multi_kills = 0, torn = 0, drops = 0;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto s = make_chaos_schedule(seed);
    const auto& kills = s.options.plan.kills();
    for (const auto& k : kills) master_kills += k.rank == 0 ? 1 : 0;
    multi_kills += kills.size() > 1 ? 1 : 0;
    torn += s.options.plan.torn_checkpoints().empty() ? 0 : 1;
    drops += s.options.plan.drops().empty() ? 0 : 1;
  }
  EXPECT_GT(master_kills, 0) << "no schedule ever kills the Nature Agent";
  EXPECT_GT(multi_kills, 0);
  EXPECT_GT(torn, 0);
  EXPECT_GT(drops, 0);
}

class ChaosSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSeed, RecoversBitIdentical) {
  const auto outcome = run_chaos_schedule(GetParam());
  EXPECT_TRUE(outcome.ok) << outcome.detail;
}

INSTANTIATE_TEST_SUITE_P(Slice, ChaosSeed, ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace egt::ft
