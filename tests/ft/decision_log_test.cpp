// The egt.ft_declog/v1 record and the standby-side log. The negative
// decode tests are ASan/UBSan canaries: a hostile or truncated blob must
// throw CheckpointError, never read out of bounds.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

#include "core/wire.hpp"
#include "ft/decision_log.hpp"

namespace egt::ft {
namespace {

DecisionLogRecord sample(std::uint64_t gen) {
  DecisionLogRecord rec;
  rec.view = 3;
  rec.generation = gen;
  for (std::size_t i = 0; i < rec.nature.rng.size(); ++i) {
    rec.nature.rng[i] = 0x9e3779b97f4a7c15ull * (i + 1) + gen;
  }
  rec.nature.planned = gen + 1;
  rec.adopted = true;
  rec.has_moran = (gen % 2) == 0;
  rec.pick.reproducer = 5;
  rec.pick.dying = 9;
  rec.epoch = 7;
  rec.table = OwnershipTable::initial(12, 3);
  rec.alive = {0, 2, 3};
  rec.table_hash = 0xdeadbeefcafef00dull;
  return rec;
}

TEST(DecisionLogRecord, EncodeDecodeRoundTrip) {
  const auto rec = sample(41);
  const auto back = DecisionLogRecord::decode_blob(rec.encode_blob());
  EXPECT_EQ(back.view, rec.view);
  EXPECT_EQ(back.generation, rec.generation);
  EXPECT_EQ(back.nature.rng, rec.nature.rng);
  EXPECT_EQ(back.nature.planned, rec.nature.planned);
  EXPECT_EQ(back.adopted, rec.adopted);
  EXPECT_EQ(back.has_moran, rec.has_moran);
  EXPECT_EQ(back.pick.reproducer, rec.pick.reproducer);
  EXPECT_EQ(back.pick.dying, rec.pick.dying);
  EXPECT_EQ(back.epoch, rec.epoch);
  EXPECT_EQ(back.alive, rec.alive);
  EXPECT_EQ(back.table_hash, rec.table_hash);
  ASSERT_EQ(back.table.ranges().size(), rec.table.ranges().size());
  for (std::size_t i = 0; i < rec.table.ranges().size(); ++i) {
    EXPECT_EQ(back.table.ranges()[i].begin, rec.table.ranges()[i].begin);
    EXPECT_EQ(back.table.ranges()[i].end, rec.table.ranges()[i].end);
    EXPECT_EQ(back.table.ranges()[i].owner, rec.table.ranges()[i].owner);
  }
}

TEST(DecisionLogRecord, RejectsTruncationAtEveryLength) {
  const auto blob = sample(8).encode_blob();
  for (std::size_t len = 0; len < blob.size(); ++len) {
    std::vector<std::byte> cut(blob.begin(),
                               blob.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)DecisionLogRecord::decode_blob(cut),
                 core::CheckpointError)
        << "truncated to " << len << " of " << blob.size() << " bytes";
  }
}

TEST(DecisionLogRecord, RejectsBadMagicAndTrailingBytes) {
  auto blob = sample(8).encode_blob();
  auto bad_magic = blob;
  bad_magic[0] = std::byte{0x00};
  EXPECT_THROW((void)DecisionLogRecord::decode_blob(bad_magic),
               core::CheckpointError);
  blob.push_back(std::byte{0x7f});
  EXPECT_THROW((void)DecisionLogRecord::decode_blob(blob),
               core::CheckpointError);
}

TEST(DecisionLogRecord, RejectsUnsupportedVersionWithClearMessage) {
  auto blob = sample(8).encode_blob();
  const std::uint32_t bogus = kDecisionLogVersion + 17;
  std::memcpy(blob.data() + 8, &bogus, sizeof bogus);  // magic is 8 bytes
  try {
    (void)DecisionLogRecord::decode_blob(blob);
    FAIL() << "expected CheckpointError";
  } catch (const core::CheckpointError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version"), std::string::npos) << what;
  }
}

TEST(DecisionLog, NewestAndNextGeneration) {
  DecisionLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.newest(), nullptr);
  EXPECT_EQ(log.next_generation(), 0u)
      << "empty log resumes from scratch";
  log.append(sample(0));
  log.append(sample(1));
  ASSERT_NE(log.newest(), nullptr);
  EXPECT_EQ(log.newest()->generation, 1u);
  EXPECT_EQ(log.next_generation(), 2u);
}

TEST(DecisionLog, AppendIsIdempotentPerGeneration) {
  DecisionLog log;
  log.append(sample(4));
  auto resend = sample(4);
  resend.epoch = 99;  // the resend carries fresher ownership
  log.append(resend);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.newest()->epoch, 99u);
}

TEST(DecisionLog, RequiresGenerationOrder) {
  DecisionLog log;
  log.append(sample(6));
  EXPECT_THROW(log.append(sample(4)), std::exception)
      << "records arrive over FIFO channels; out-of-order is a protocol bug";
}

TEST(DecisionLog, PrunesToRetentionWindow) {
  DecisionLog log;
  for (std::uint64_t gen = 0; gen < 10; ++gen) log.append(sample(gen));
  EXPECT_LE(log.size(), 4u);
  EXPECT_EQ(log.newest()->generation, 9u);
  EXPECT_EQ(log.next_generation(), 10u);
}

}  // namespace
}  // namespace egt::ft
