// Nature Agent failover, tested against the same oracle as every other
// engine: the serial run. Killing the master (rank 0) — alone, together
// with a worker, or cascading into the promoted standby — must still
// reproduce the fault-free strategy table bit for bit, because the
// decision log replicates Nature's RNG trajectory ahead of every decision
// broadcast. Where the recovery path is bit-exact (Sampled recompute,
// fresh block checkpoints) fitness and the merged "engine.*" counters are
// asserted too.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/engine.hpp"
#include "ft/ft_engine.hpp"
#include "obs/metrics.hpp"

namespace egt::ft {
namespace {

using core::Engine;
using core::FitnessMode;
using core::SimConfig;

SimConfig analytic_config() {
  SimConfig cfg;
  cfg.ssets = 24;
  cfg.memory = 1;
  cfg.generations = 60;
  cfg.pc_rate = 0.4;
  cfg.mutation_rate = 0.2;
  cfg.seed = 2024;
  cfg.fitness_mode = FitnessMode::Analytic;
  return cfg;
}

SimConfig sampled_config() {
  auto cfg = analytic_config();
  cfg.fitness_mode = FitnessMode::Sampled;
  cfg.ssets = 10;
  cfg.generations = 15;
  return cfg;
}

/// Failover tests wait out master-silence timeouts, so shrink them: the
/// per-generation compute here is microseconds, and a false-positive
/// eviction would show up as a counter mismatch anyway.
FtRunOptions fast_failover(FtRunOptions opt = {}) {
  opt.detect_timeout_ms = 150.0;
  opt.ping_timeout_ms = 60.0;
  opt.max_pings = 2;
  opt.master_silence_ms = 450.0;
  opt.election_window_ms = 80.0;
  return opt;
}

struct Reference {
  pop::Population population;
  obs::MetricsSnapshot metrics;
};

Reference serial_reference(const SimConfig& cfg) {
  obs::MetricsRegistry reg;
  Engine serial(cfg, &reg);
  serial.run_all();
  return {serial.population(), reg.snapshot()};
}

constexpr const char* kEngineCounters[] = {
    "engine.generations",   "engine.pc_events", "engine.adoptions",
    "engine.moran_events",  "engine.mutations", "engine.pairs_evaluated",
};

void expect_table_equal(const FtResult& ft, const Reference& ref) {
  ASSERT_EQ(ft.population.size(), ref.population.size());
  EXPECT_EQ(ft.population.table_hash(), ref.population.table_hash())
      << "strategy tables diverged";
  for (pop::SSetId i = 0; i < ref.population.size(); ++i) {
    ASSERT_TRUE(ft.population.strategy(i) == ref.population.strategy(i))
        << "strategy diverged at SSet " << i;
  }
}

void expect_fitness_equal(const FtResult& ft, const Reference& ref) {
  for (pop::SSetId i = 0; i < ref.population.size(); ++i) {
    ASSERT_DOUBLE_EQ(ft.population.fitness(i), ref.population.fitness(i))
        << "fitness diverged at SSet " << i;
  }
}

void expect_engine_counters_equal(const FtResult& ft, const Reference& ref) {
  for (const char* name : kEngineCounters) {
    EXPECT_EQ(ft.metrics.counter_value(name), ref.metrics.counter_value(name))
        << "counter " << name << " diverged";
  }
}

TEST(FtFailover, MasterKillFailsOverBitExact) {
  // Rank 0 dies at the top of generation 7; the standby restores Nature
  // from its newest decision-log record and finishes the run. Sampled
  // recompute is a pure function of (population, generation), so even
  // fitness is bit-identical.
  const auto cfg = sampled_config();
  const auto ref = serial_reference(cfg);
  auto opt = fast_failover();
  opt.plan.kill(0, 7);
  const auto ft = run_parallel_ft(cfg, 4, opt);
  expect_table_equal(ft, ref);
  expect_fitness_equal(ft, ref);
  expect_engine_counters_equal(ft, ref);
  EXPECT_EQ(ft.ranks_lost, 1);
  EXPECT_EQ(ft.failovers, 1);
  EXPECT_EQ(ft.metrics.counter_value("ft.failovers"), 1u);
  EXPECT_GE(ft.metrics.counter_value("ft.elections"), 1u);
  EXPECT_GE(ft.metrics.counter_value("ft.log.appends"), 1u);
  EXPECT_GE(ft.metrics.counter_value("ft.log.records"), 1u);
  EXPECT_EQ(ft.generations, cfg.generations);
}

TEST(FtFailover, MasterKillWithCheckpointsRestoresBitExact) {
  // The kill generation is a multiple of checkpoint_every, so the dead
  // master's own blocks are covered by an intact fresh checkpoint: the
  // successor restores them instead of recomputing and even the Analytic
  // incremental fitness state survives bit for bit.
  const auto cfg = analytic_config();
  const auto ref = serial_reference(cfg);
  auto opt = fast_failover();
  opt.plan.kill(0, 12);
  opt.checkpoint_every = 4;
  const auto ft = run_parallel_ft(cfg, 4, opt);
  expect_table_equal(ft, ref);
  expect_fitness_equal(ft, ref);
  expect_engine_counters_equal(ft, ref);
  EXPECT_EQ(ft.failovers, 1);
  EXPECT_GE(ft.metrics.counter_value("ft.recovery.blocks_restored"), 1u);
  EXPECT_EQ(ft.metrics.counter_value("ft.recovery.blocks_recomputed"), 0u);
}

TEST(FtFailover, MasterKillAtGenerationZero) {
  // Rank 0 dies before planning anything: every decision log is empty, the
  // lowest surviving rank wins the election and runs the whole simulation
  // from scratch.
  const auto cfg = sampled_config();
  const auto ref = serial_reference(cfg);
  auto opt = fast_failover();
  opt.plan.kill(0, 0);
  const auto ft = run_parallel_ft(cfg, 3, opt);
  expect_table_equal(ft, ref);
  expect_fitness_equal(ft, ref);
  expect_engine_counters_equal(ft, ref);
  EXPECT_EQ(ft.failovers, 1);
  EXPECT_EQ(ft.generations, cfg.generations);
}

TEST(FtFailover, MasterAndWorkerKilledSameGeneration) {
  // Rank 0 dies at the top of generation 7 and rank 2's kill fires on the
  // promoted master's re-broadcast of that same generation's plan: the
  // successor must handle a worker death in its very first generation.
  const auto cfg = sampled_config();
  const auto ref = serial_reference(cfg);
  auto opt = fast_failover();
  opt.plan.kill(0, 7);
  opt.plan.kill(2, 7);
  const auto ft = run_parallel_ft(cfg, 4, opt);
  expect_table_equal(ft, ref);
  expect_fitness_equal(ft, ref);
  expect_engine_counters_equal(ft, ref);
  EXPECT_EQ(ft.ranks_lost, 2);
  EXPECT_EQ(ft.failovers, 1);
  EXPECT_GE(ft.metrics.counter_value("ft.recoveries"), 1u);
}

TEST(FtFailover, CascadingMasterThenStandbyKill) {
  // With two standbys the log survives a cascade: rank 0 dies, rank 1 is
  // promoted, then rank 1 dies too. Rank 2 — which kept receiving the log
  // from both masters — wins the second election and finishes the run.
  const auto cfg = sampled_config();
  const auto ref = serial_reference(cfg);
  auto opt = fast_failover();
  opt.standby_replicas = 2;
  opt.plan.kill(0, 5);
  opt.plan.kill(1, 9);
  const auto ft = run_parallel_ft(cfg, 4, opt);
  expect_table_equal(ft, ref);
  expect_fitness_equal(ft, ref);
  expect_engine_counters_equal(ft, ref);
  EXPECT_EQ(ft.ranks_lost, 2);
  EXPECT_EQ(ft.failovers, 2);
  EXPECT_EQ(ft.metrics.counter_value("ft.failovers"), 2u);
}

TEST(FtFailover, AbortsWhenEveryLogCopyIsLost) {
  // One standby, and both the master and that standby die at the same
  // generation boundary: the survivors' applied state is ahead of every
  // remaining log, so the run must abort loudly instead of silently
  // diverging from the fault-free trajectory.
  const auto cfg = sampled_config();
  auto opt = fast_failover();
  opt.standby_replicas = 1;
  opt.plan.kill(0, 7);
  opt.plan.kill(1, 7);
  EXPECT_THROW((void)run_parallel_ft(cfg, 4, opt), std::runtime_error);
}

TEST(FtFailover, TornCheckpointFallsBackAndStaysExact) {
  // Rank 2's generation-8 checkpoint is torn mid-write; when rank 2 dies
  // the adopters detect the damage via the CRC footer, fall back (to an
  // older intact entry or a recompute) and the table still matches.
  const auto cfg = analytic_config();
  const auto ref = serial_reference(cfg);
  FtRunOptions opt;  // master survives: default timeouts
  opt.checkpoint_every = 4;
  opt.plan.torn_checkpoint(2, 8);
  opt.plan.kill(2, 10);
  const auto ft = run_parallel_ft(cfg, 4, opt);
  expect_table_equal(ft, ref);
  expect_engine_counters_equal(ft, ref);
  EXPECT_EQ(ft.failovers, 0);
  EXPECT_GE(ft.metrics.counter_value("ft.faults.checkpoints_torn"), 1u);
  EXPECT_GE(ft.metrics.counter_value("ft.checkpoint.fallbacks"), 1u);
}

}  // namespace
}  // namespace egt::ft
