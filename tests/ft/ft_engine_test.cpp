// The fault-tolerance claim, tested the same way the parallel engine's
// equivalence is: a run that loses ranks mid-flight must reproduce the
// fault-free (serial) trajectory — same strategy table, same fitness where
// the recovery path is bit-exact, same merged "engine.*" counters for
// kill-only plans — while the "ft.*" metrics record what the recovery
// machinery actually did.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/engine.hpp"
#include "ft/ft_engine.hpp"
#include "ft/protocol.hpp"
#include "obs/metrics.hpp"

namespace egt::ft {
namespace {

using core::Engine;
using core::FitnessMode;
using core::SimConfig;

SimConfig base_config() {
  SimConfig cfg;
  cfg.ssets = 24;
  cfg.memory = 1;
  cfg.generations = 60;
  cfg.pc_rate = 0.4;
  cfg.mutation_rate = 0.2;
  cfg.seed = 2024;
  cfg.fitness_mode = FitnessMode::Analytic;
  return cfg;
}

SimConfig sampled_config() {
  auto cfg = base_config();
  cfg.fitness_mode = FitnessMode::Sampled;
  cfg.ssets = 10;
  cfg.generations = 15;
  return cfg;
}

/// Serial reference outcome: final population + "engine.*" counters.
struct Reference {
  pop::Population population;
  obs::MetricsSnapshot metrics;
};

Reference serial_reference(const SimConfig& cfg) {
  obs::MetricsRegistry reg;
  Engine serial(cfg, &reg);
  serial.run_all();
  return {serial.population(), reg.snapshot()};
}

constexpr const char* kEngineCounters[] = {
    "engine.generations",   "engine.pc_events", "engine.adoptions",
    "engine.moran_events",  "engine.mutations", "engine.pairs_evaluated",
};

void expect_table_equal(const FtResult& ft, const Reference& ref) {
  ASSERT_EQ(ft.population.size(), ref.population.size());
  EXPECT_EQ(ft.population.table_hash(), ref.population.table_hash())
      << "strategy tables diverged";
  for (pop::SSetId i = 0; i < ref.population.size(); ++i) {
    ASSERT_TRUE(ft.population.strategy(i) == ref.population.strategy(i))
        << "strategy diverged at SSet " << i;
  }
}

void expect_fitness_equal(const FtResult& ft, const Reference& ref) {
  for (pop::SSetId i = 0; i < ref.population.size(); ++i) {
    ASSERT_DOUBLE_EQ(ft.population.fitness(i), ref.population.fitness(i))
        << "fitness diverged at SSet " << i;
  }
}

void expect_engine_counters_equal(const FtResult& ft, const Reference& ref) {
  for (const char* name : kEngineCounters) {
    EXPECT_EQ(ft.metrics.counter_value(name), ref.metrics.counter_value(name))
        << "counter " << name << " diverged";
  }
}

TEST(FtEngine, FaultFreeMatchesSerial) {
  const auto cfg = base_config();
  const auto ref = serial_reference(cfg);
  const auto ft = run_parallel_ft(cfg, 4);
  expect_table_equal(ft, ref);
  expect_fitness_equal(ft, ref);
  expect_engine_counters_equal(ft, ref);
  EXPECT_EQ(ft.ranks_lost, 0);
  EXPECT_EQ(ft.generations, cfg.generations);
  EXPECT_EQ(ft.metrics.counter_value("ft.recoveries"), 0u);
}

TEST(FtEngine, FaultFreeSampledMatchesSerial) {
  const auto cfg = sampled_config();
  const auto ref = serial_reference(cfg);
  const auto ft = run_parallel_ft(cfg, 3);
  expect_table_equal(ft, ref);
  expect_fitness_equal(ft, ref);
  expect_engine_counters_equal(ft, ref);
}

TEST(FtEngine, KillWithFreshCheckpointIsBitExact) {
  // The kill generation is a multiple of checkpoint_every, so the dead
  // rank's last published blob carries exactly the recovery generation:
  // the adopters restore instead of recomputing and even the Analytic
  // incremental fitness state is reproduced bit for bit.
  const auto cfg = base_config();
  const auto ref = serial_reference(cfg);
  FtRunOptions opt;
  opt.plan.kill(2, 12);
  opt.checkpoint_every = 4;
  const auto ft = run_parallel_ft(cfg, 4, opt);
  expect_table_equal(ft, ref);
  expect_fitness_equal(ft, ref);
  expect_engine_counters_equal(ft, ref);
  EXPECT_EQ(ft.ranks_lost, 1);
  EXPECT_EQ(ft.metrics.counter_value("ft.recoveries"), 1u);
  EXPECT_EQ(ft.metrics.counter_value("ft.failures_detected"), 1u);
  EXPECT_EQ(ft.metrics.counter_value("ft.faults.kills"), 1u);
  EXPECT_GE(ft.metrics.counter_value("ft.recovery.blocks_restored"), 1u);
  EXPECT_EQ(ft.metrics.counter_value("ft.recovery.blocks_recomputed"), 0u);
  EXPECT_GE(ft.metrics.counter_value("ft.checkpoint.writes"), 1u);
}

TEST(FtEngine, KillInSampledModeRecomputesBitExact) {
  // Sampled fitness is recomputed from (population, generation) every
  // generation anyway, so recovery-by-recompute is bit-exact without any
  // checkpoint at all.
  const auto cfg = sampled_config();
  const auto ref = serial_reference(cfg);
  FtRunOptions opt;
  opt.plan.kill(1, 7);
  const auto ft = run_parallel_ft(cfg, 3, opt);
  expect_table_equal(ft, ref);
  expect_fitness_equal(ft, ref);
  expect_engine_counters_equal(ft, ref);
  EXPECT_EQ(ft.ranks_lost, 1);
  EXPECT_EQ(ft.metrics.counter_value("ft.recoveries"), 1u);
  EXPECT_GE(ft.metrics.counter_value("ft.recovery.blocks_recomputed"), 1u);
  EXPECT_EQ(ft.metrics.counter_value("ft.recovery.blocks_restored"), 0u);
}

TEST(FtEngine, KillWithoutCheckpointPreservesTrajectory) {
  // Analytic recovery without a covering checkpoint recomputes the block
  // from the replicated strategy table: same values up to FP summation
  // order, so the decision trajectory (and the strategy table) still
  // matches the reference exactly.
  const auto cfg = base_config();
  const auto ref = serial_reference(cfg);
  FtRunOptions opt;
  opt.plan.kill(3, 20);
  const auto ft = run_parallel_ft(cfg, 5, opt);
  expect_table_equal(ft, ref);
  expect_engine_counters_equal(ft, ref);
  EXPECT_EQ(ft.metrics.counter_value("ft.recoveries"), 1u);
  EXPECT_GE(ft.metrics.counter_value("ft.recovery.blocks_recomputed"), 1u);
}

TEST(FtEngine, TwoSimultaneousKillsAreRecoveredNested) {
  // Both workers die at the same generation: the second death is
  // discovered *during* the first recovery's RECONFIG round and must be
  // handled recursively.
  const auto cfg = sampled_config();
  const auto ref = serial_reference(cfg);
  FtRunOptions opt;
  opt.plan.kill(1, 8).kill(3, 8);
  const auto ft = run_parallel_ft(cfg, 5, opt);
  expect_table_equal(ft, ref);
  expect_fitness_equal(ft, ref);
  expect_engine_counters_equal(ft, ref);
  EXPECT_EQ(ft.ranks_lost, 2);
  EXPECT_EQ(ft.metrics.counter_value("ft.recoveries"), 2u);
}

TEST(FtEngine, MoranRuleSurvivesAKill) {
  auto cfg = base_config();
  cfg.update_rule = pop::UpdateRule::Moran;
  cfg.pc_rate = 0.5;
  cfg.generations = 40;
  const auto ref = serial_reference(cfg);
  FtRunOptions opt;
  opt.plan.kill(1, 10);
  opt.checkpoint_every = 5;
  const auto ft = run_parallel_ft(cfg, 4, opt);
  expect_table_equal(ft, ref);
  expect_fitness_equal(ft, ref);
  expect_engine_counters_equal(ft, ref);
  EXPECT_EQ(ft.metrics.counter_value("ft.recoveries"), 1u);
}

TEST(FtEngine, DroppedFitnessReplyIsResentAfterProbe) {
  // The master misses a fitness return, suspects the worker, probes it,
  // finds it alive (false alarm) and resends the request. Nobody dies and
  // the trajectory is untouched.
  const auto cfg = base_config();
  const auto ref = serial_reference(cfg);
  FtRunOptions opt;
  opt.plan.drop({kAny, 0, tag::kFit, /*skip=*/0, /*count=*/1, 0});
  opt.detect_timeout_ms = 80.0;
  opt.ping_timeout_ms = 40.0;
  const auto ft = run_parallel_ft(cfg, 3, opt);
  expect_table_equal(ft, ref);
  expect_fitness_equal(ft, ref);
  EXPECT_EQ(ft.ranks_lost, 0);
  EXPECT_EQ(ft.metrics.counter_value("ft.faults.messages_dropped"), 1u);
  EXPECT_GE(ft.metrics.counter_value("ft.suspected_ranks"), 1u);
  EXPECT_GE(ft.metrics.counter_value("ft.false_alarms"), 1u);
  EXPECT_GE(ft.metrics.counter_value("ft.resends"), 1u);
}

TEST(FtEngine, DroppedDecisionIsHealed) {
  // A lost decision broadcast does not stall anyone: the worker catches up
  // from the decision restated in the next plan (or the Moran gather
  // request) and the replicas converge again.
  const auto cfg = base_config();
  const auto ref = serial_reference(cfg);
  FtRunOptions opt;
  opt.plan.drop({0, kAny, tag::kDecide, /*skip=*/0, /*count=*/1, 0});
  const auto ft = run_parallel_ft(cfg, 3, opt);
  expect_table_equal(ft, ref);
  expect_fitness_equal(ft, ref);
  expect_engine_counters_equal(ft, ref);
  EXPECT_EQ(ft.ranks_lost, 0);
  EXPECT_GE(ft.metrics.counter_value("ft.heals"), 1u);
}

TEST(FtEngine, DelayedAckIsNotAFailure) {
  const auto cfg = base_config();
  const auto ref = serial_reference(cfg);
  FtRunOptions opt;
  opt.plan.delay({kAny, 0, tag::kPlanAck, /*skip=*/3, /*count=*/1, 30});
  const auto ft = run_parallel_ft(cfg, 3, opt);
  expect_table_equal(ft, ref);
  expect_fitness_equal(ft, ref);
  EXPECT_EQ(ft.ranks_lost, 0);
  EXPECT_EQ(ft.metrics.counter_value("ft.failures_detected"), 0u);
  EXPECT_EQ(ft.metrics.counter_value("ft.faults.messages_delayed"), 1u);
}

TEST(FtEngine, FalsePositiveEvictionPreservesTrajectory) {
  // A healthy worker whose ack AND probe replies are all eaten by the
  // network gets evicted. That wastes work (documented pairs over-count)
  // but must not bend the trajectory: the master recovers the rank's
  // blocks as if it had died.
  const auto cfg = base_config();
  const auto ref = serial_reference(cfg);
  FtRunOptions opt;
  opt.plan.drop({2, 0, tag::kPlanAck, /*skip=*/5, /*count=*/1, 0});
  opt.plan.drop({2, 0, tag::kPong, /*skip=*/0, /*count=*/8, 0});
  opt.detect_timeout_ms = 60.0;
  opt.ping_timeout_ms = 30.0;
  opt.max_pings = 2;
  const auto ft = run_parallel_ft(cfg, 4, opt);
  expect_table_equal(ft, ref);
  EXPECT_EQ(ft.ranks_lost, 1);
  EXPECT_EQ(ft.metrics.counter_value("ft.failures_detected"), 1u);
  EXPECT_EQ(ft.metrics.counter_value("ft.faults.kills"), 0u)
      << "nobody actually died";
  for (const char* name :
       {"engine.generations", "engine.pc_events", "engine.adoptions",
        "engine.moran_events", "engine.mutations"}) {
    EXPECT_EQ(ft.metrics.counter_value(name), ref.metrics.counter_value(name))
        << "counter " << name << " diverged";
  }
}

TEST(FtEngine, FtCountersArePreRegistered) {
  // ft.* must appear in every manifest — including the fault-free ones —
  // so dashboards see explicit zeros rather than missing series.
  const auto ft = run_parallel_ft(base_config(), 2);
  for (const char* name :
       {"ft.recoveries", "ft.failures_detected", "ft.suspected_ranks",
        "ft.false_alarms", "ft.resends", "ft.heals", "ft.faults.kills",
        "ft.checkpoint.writes", "ft.checkpoint.bytes",
        "ft.recovery.blocks_restored", "ft.recovery.blocks_recomputed",
        "ft.recovery.pairs_evaluated"}) {
    EXPECT_NE(ft.metrics.find_counter(name), nullptr)
        << name << " missing from merged metrics";
  }
}

TEST(FtEngine, SingleRankRunWorks) {
  // Degenerate deployment: the master owns everything and there is nobody
  // to lose. Still must match the serial engine.
  const auto cfg = sampled_config();
  const auto ref = serial_reference(cfg);
  const auto ft = run_parallel_ft(cfg, 1);
  expect_table_equal(ft, ref);
  expect_fitness_equal(ft, ref);
  expect_engine_counters_equal(ft, ref);
}

TEST(FtEngine, MergesIntoCallerRegistry) {
  obs::MetricsRegistry reg;
  FtRunOptions opt;
  opt.metrics = &reg;
  (void)run_parallel_ft(sampled_config(), 3, opt);
  EXPECT_GT(reg.snapshot().counter_value("engine.generations"), 0u);
}

TEST(FtEngine, RejectsInexecutablePlansAndOptions) {
  const auto cfg = sampled_config();
  {
    // Killing the Nature Agent is only recoverable with a warm standby
    // holding the decision log.
    FtRunOptions opt;
    opt.standby_replicas = 0;
    opt.plan.kill(0, 3);
    EXPECT_THROW((void)run_parallel_ft(cfg, 3, opt), std::invalid_argument);
  }
  {
    FtRunOptions opt;
    opt.plan.kill(7, 3);  // no such rank
    EXPECT_THROW((void)run_parallel_ft(cfg, 3, opt), std::invalid_argument);
  }
  {
    FtRunOptions opt;
    opt.standby_replicas = -1;
    EXPECT_THROW((void)run_parallel_ft(cfg, 3, opt), std::invalid_argument);
  }
  {
    FtRunOptions opt;
    opt.checkpoint_keep = 0;
    EXPECT_THROW((void)run_parallel_ft(cfg, 3, opt), std::invalid_argument);
  }
  {
    FtRunOptions opt;
    opt.master_silence_ms = -1.0;
    EXPECT_THROW((void)run_parallel_ft(cfg, 3, opt), std::invalid_argument);
  }
  {
    FtRunOptions opt;
    opt.detect_timeout_ms = -1.0;
    EXPECT_THROW((void)run_parallel_ft(cfg, 3, opt), std::invalid_argument);
  }
  {
    FtRunOptions opt;
    opt.max_pings = 0;
    EXPECT_THROW((void)run_parallel_ft(cfg, 3, opt), std::invalid_argument);
  }
  EXPECT_THROW((void)run_parallel_ft(cfg, 11), std::invalid_argument)
      << "more ranks than SSets";
}

}  // namespace
}  // namespace egt::ft
