#include "simcheck/config_json.hpp"

#include <gtest/gtest.h>

#include "game/spec/registry.hpp"
#include "simcheck/case.hpp"

namespace egt::simcheck {
namespace {

void expect_round_trip(const core::SimConfig& c) {
  const auto back = config_from_json_text(config_to_json(c));
  EXPECT_EQ(back.memory, c.memory);
  EXPECT_EQ(back.ssets, c.ssets);
  EXPECT_EQ(back.generations, c.generations);
  EXPECT_EQ(back.interaction.kind, c.interaction.kind);
  EXPECT_EQ(back.interaction.ring_k, c.interaction.ring_k);
  EXPECT_EQ(back.interaction.lattice_width, c.interaction.lattice_width);
  EXPECT_EQ(back.interaction.moore, c.interaction.moore);
  EXPECT_EQ(back.game.payoff.reward, c.game.payoff.reward);
  EXPECT_EQ(back.game.payoff.sucker, c.game.payoff.sucker);
  EXPECT_EQ(back.game.payoff.temptation, c.game.payoff.temptation);
  EXPECT_EQ(back.game.payoff.punishment, c.game.payoff.punishment);
  EXPECT_EQ(back.game.rounds, c.game.rounds);
  EXPECT_EQ(back.game.noise, c.game.noise);
  EXPECT_EQ(back.game.kind, c.game.kind);
  EXPECT_EQ(back.game.display_name, c.game.display_name);
  EXPECT_EQ(back.game.actions, c.game.actions);
  EXPECT_EQ(back.game.play, c.game.play);
  EXPECT_EQ(back.game.row_payoff, c.game.row_payoff);
  EXPECT_EQ(back.game.col_payoff, c.game.col_payoff);
  EXPECT_EQ(back.game.pgg_r, c.game.pgg_r);
  EXPECT_EQ(back.game.pgg_cost, c.game.pgg_cost);
  EXPECT_EQ(back.game.pgg_k, c.game.pgg_k);
  EXPECT_EQ(back.pc_rate, c.pc_rate);
  EXPECT_EQ(back.mutation_rate, c.mutation_rate);
  EXPECT_EQ(back.beta, c.beta);
  EXPECT_EQ(back.require_teacher_better, c.require_teacher_better);
  EXPECT_EQ(back.update_rule, c.update_rule);
  EXPECT_EQ(back.space, c.space);
  EXPECT_EQ(back.mutation_kernel, c.mutation_kernel);
  EXPECT_EQ(back.mutation_bits, c.mutation_bits);
  EXPECT_EQ(back.mutation_sigma, c.mutation_sigma);
  EXPECT_EQ(back.fitness_mode, c.fitness_mode);
  EXPECT_EQ(back.fitness_scale, c.fitness_scale);
  EXPECT_EQ(back.lookup, c.lookup);
  EXPECT_EQ(back.comm_pattern, c.comm_pattern);
  EXPECT_EQ(back.seed, c.seed);
  EXPECT_EQ(back.agent_threads, c.agent_threads);
  EXPECT_EQ(back.sset_threads, c.sset_threads);
  EXPECT_EQ(back.dedup, c.dedup);
}

TEST(ConfigJson, DefaultConfigRoundTrips) { expect_round_trip({}); }

TEST(ConfigJson, NonDefaultFieldsRoundTrip) {
  core::SimConfig c;
  c.memory = 3;
  c.ssets = 123;
  c.generations = 98765;
  c.interaction.kind = core::InteractionSpec::Kind::Lattice2D;
  c.interaction.lattice_width = 4;
  c.interaction.moore = true;
  c.game.rounds = 17;
  c.game.noise = 0.0625;
  c.pc_rate = 0.75;
  c.mutation_rate = 0.125;
  c.beta = 2.5;
  c.require_teacher_better = true;
  c.space = pop::StrategySpace::Mixed;
  c.mutation_kernel = pop::MutationKernel::MixedGaussian;
  c.mutation_sigma = 0.2;
  c.fitness_mode = core::FitnessMode::SampledFrozen;
  c.fitness_scale = core::FitnessScale::Total;
  c.lookup = game::LookupMode::LinearSearch;
  c.comm_pattern = core::CommPattern::ReplicatedNature;
  c.seed = 0xdeadbeefu;  // 32-bit: the documented JSON exactness range
  c.agent_threads = 2;
  c.sset_threads = 1;
  c.dedup = false;
  expect_round_trip(c);
}

TEST(ConfigJson, EveryRegistryPresetRoundTrips) {
  for (const auto& g : game::registry()) {
    core::SimConfig c;
    c.game = g;
    if (c.game.requires_memory0()) c.memory = 0;
    expect_round_trip(c);
  }
}

TEST(ConfigJson, DefaultIpdStaysByteStable) {
  // v2 repro compatibility: the wire v3 game fields are emitted only when
  // they differ from the IPD defaults, so a default config's game object
  // must not mention any of them.
  const std::string json = config_to_json(core::SimConfig{});
  // ("kind" can't be probed this way: the interaction object uses it too.)
  for (const char* key :
       {"\"name\"", "\"actions\"", "\"play\"", "\"row_payoff\"",
        "\"col_payoff\"", "\"pgg_r\"", "\"public_goods\""}) {
    EXPECT_EQ(json.find(key), std::string::npos) << key;
  }
}

TEST(ConfigJson, FuzzedConfigsRoundTrip) {
  for (std::uint64_t fuzz_seed = 1; fuzz_seed <= 40; ++fuzz_seed) {
    expect_round_trip(sample_case(fuzz_seed).config);
  }
}

TEST(ConfigJson, MissingKeysKeepDefaults) {
  const auto c =
      config_from_json_text(R"({"schema":"egt.sim_config/v1","ssets":7})");
  EXPECT_EQ(c.ssets, 7u);
  const core::SimConfig defaults;
  EXPECT_EQ(c.generations, defaults.generations);
  EXPECT_EQ(c.fitness_mode, defaults.fitness_mode);
}

TEST(ConfigJson, RejectsUnknownEnumName) {
  EXPECT_THROW(config_from_json_text(
                   R"({"schema":"egt.sim_config/v1","fitness_mode":"bogus"})"),
               std::runtime_error);
}

TEST(ConfigJson, RejectsWrongSchema) {
  EXPECT_THROW(config_from_json_text(R"({"schema":"egt.other/v1"})"),
               std::runtime_error);
}

}  // namespace
}  // namespace egt::simcheck
