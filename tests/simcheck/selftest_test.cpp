#include "simcheck/selftest.hpp"

#include <gtest/gtest.h>

#include "simcheck/repro.hpp"
#include "simcheck/shrink.hpp"

namespace egt::simcheck {
namespace {

// The acceptance gate of the whole harness: a deliberately injected
// off-by-one in a copy of the dedup fitness path must be caught by the
// differential comparison and delta-debugged to a <= 4-SSet repro.
TEST(SelfTest, CatchesAndShrinksInjectedDedupBug) {
  const auto result = run_self_test(/*seed=*/1);
  EXPECT_TRUE(result.caught) << "bug not detected";
  EXPECT_TRUE(result.shrunk);
  EXPECT_LE(result.final_ssets, 4u) << result.detail;
  EXPECT_TRUE(result.passed());
  EXPECT_FALSE(result.detail.empty());
}

TEST(Shrink, PassingSpecIsReturnedUntouched) {
  CaseSpec spec;
  spec.config.ssets = 4;
  spec.config.generations = 6;
  spec.config.game.rounds = 4;
  spec.config.seed = 7;
  spec.engines = {EngineKind::Parallel};
  ASSERT_TRUE(normalize_spec(spec));
  const auto shrunk = shrink_case(spec);
  EXPECT_TRUE(shrunk.result.passed());
  EXPECT_EQ(shrunk.accepted, 0);
  EXPECT_EQ(shrunk.spec.config.ssets, spec.config.ssets);
}

TEST(Repro, RoundTripsThroughJson) {
  const auto self = run_self_test(/*seed=*/2);
  ASSERT_TRUE(self.passed());
  const auto result = run_case(self.repro);
  ASSERT_FALSE(result.passed());

  const auto json = repro_to_json(result);
  const auto parsed = parse_repro(json);
  EXPECT_EQ(parsed.spec.config.ssets, self.repro.config.ssets);
  EXPECT_EQ(parsed.spec.config.generations, self.repro.config.generations);
  EXPECT_EQ(parsed.spec.config.seed, self.repro.config.seed);
  EXPECT_EQ(parsed.spec.engines, self.repro.engines);
  ASSERT_TRUE(parsed.trace.has_value());
  EXPECT_EQ(parsed.trace->size(), result.reference.trace.size());
}

TEST(Repro, ReplayReproducesTheFailureDeterministically) {
  const auto self = run_self_test(/*seed=*/3);
  ASSERT_TRUE(self.passed());
  const auto json = repro_to_json(run_case(self.repro));

  const auto replay = replay_repro(json);
  EXPECT_FALSE(replay.result.passed())
      << "repro no longer fails — replay is not deterministic";
  // The embedded reference trace must match the fresh reference run: the
  // file alone pins the trajectory.
  EXPECT_FALSE(replay.recorded_divergence.has_value())
      << replay.recorded_divergence->detail;
}

TEST(Repro, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse_repro("not json"), std::runtime_error);
  EXPECT_THROW((void)parse_repro(R"({"schema":"egt.other/v9"})"),
               std::runtime_error);
  EXPECT_THROW((void)parse_repro(
                   R"({"schema":"egt.simcheck_repro/v1","engines":["x"]})"),
               std::runtime_error);
}

}  // namespace
}  // namespace egt::simcheck
