#include "simcheck/case.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace egt::simcheck {
namespace {

core::SimConfig small_config() {
  core::SimConfig c;
  c.ssets = 6;
  c.generations = 10;
  c.game.rounds = 4;
  c.pc_rate = 0.6;
  c.mutation_rate = 0.25;
  c.seed = 4242;
  return c;
}

TEST(CheckpointExact, FollowsModeRules) {
  auto c = small_config();
  c.fitness_mode = core::FitnessMode::Sampled;
  EXPECT_TRUE(checkpoint_exact(c));
  c.fitness_mode = core::FitnessMode::SampledFrozen;
  EXPECT_FALSE(checkpoint_exact(c));
  c.fitness_mode = core::FitnessMode::Analytic;
  EXPECT_TRUE(checkpoint_exact(c));  // memory 1
  c.memory = 2;
  c.space = pop::StrategySpace::Pure;
  c.game.noise = 0.0;
  EXPECT_TRUE(checkpoint_exact(c));  // deterministic pure pairs
  c.game.noise = 0.05;
  EXPECT_FALSE(checkpoint_exact(c));  // stochastic memory-2: frozen fallback
}

TEST(RunCase, AllEnginesAgreeOnAFixedSpec) {
  CaseSpec spec;
  spec.config = small_config();
  spec.config.fitness_mode = core::FitnessMode::Sampled;
  spec.nranks = 3;
  spec.sset_threads = 2;
  spec.restore_at = 4;
  spec.ft_checkpoint_every = 2;
  spec.engines = {EngineKind::Parallel, EngineKind::ParallelReplicated,
                  EngineKind::SerialThreads, EngineKind::SerialRestore,
                  EngineKind::ParallelFt};
  ASSERT_TRUE(normalize_spec(spec));
  const auto result = run_case(spec);
  for (const auto& f : result.failures) {
    ADD_FAILURE() << engine_kind_name(f.engine) << ": " << f.what;
  }
  EXPECT_TRUE(result.passed());
  EXPECT_EQ(result.outcomes.size(), 5u);
  ASSERT_TRUE(result.reference.ok);
  EXPECT_EQ(result.reference.trace.size(), spec.config.generations);
}

TEST(RunCase, FaultyFtOnCheckpointBoundaryStaysOnTrajectory) {
  CaseSpec spec;
  spec.config = small_config();
  spec.config.fitness_mode = core::FitnessMode::Analytic;
  spec.nranks = 3;
  spec.ft_checkpoint_every = 2;
  spec.kills = {{/*rank=*/1, /*generation=*/4}};
  spec.engines = {EngineKind::ParallelFtFaulty};
  ASSERT_TRUE(normalize_spec(spec));
  ASSERT_EQ(spec.engines.size(), 1u);
  const auto result = run_case(spec);
  for (const auto& f : result.failures) {
    ADD_FAILURE() << engine_kind_name(f.engine) << ": " << f.what;
  }
  EXPECT_TRUE(result.passed());
}

// CaseSpec has no equality operator; compare the fields that pin the draw
// (full config equality is covered by the JSON round-trip tests).
bool same_draw(const CaseSpec& a, const CaseSpec& b) {
  return a.config.ssets == b.config.ssets &&
         a.config.generations == b.config.generations &&
         a.config.seed == b.config.seed && a.nranks == b.nranks &&
         a.engines == b.engines;
}

TEST(SampleCase, IsDeterministicPerSeed) {
  EXPECT_TRUE(same_draw(sample_case(17), sample_case(17)));
  EXPECT_FALSE(same_draw(sample_case(17), sample_case(18)));
}

TEST(SampleCase, ProducesValidNormalizedSpecs) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    auto spec = sample_case(seed);
    ASSERT_FALSE(spec.engines.empty()) << "seed " << seed;
    EXPECT_NO_THROW(spec.config.validate()) << "seed " << seed;
    EXPECT_GE(spec.nranks, 1) << "seed " << seed;
    EXPECT_LE(static_cast<pop::SSetId>(spec.nranks), spec.config.ssets);
    if (spec.restore_at != 0) {
      EXPECT_LT(spec.restore_at, spec.config.generations);
    }
    for (const auto& k : spec.kills) {
      EXPECT_GE(k.rank, 1) << "master kills are failover-undefined";
      EXPECT_LT(k.rank, spec.nranks);
      ASSERT_GT(spec.ft_checkpoint_every, 0u);
      EXPECT_EQ(k.generation % spec.ft_checkpoint_every, 0u);
    }
  }
}

TEST(NormalizeSpec, RepairsOutOfRangeFields) {
  CaseSpec spec;
  spec.config = small_config();
  spec.config.ssets = 4;
  spec.nranks = 9;        // > ssets
  spec.restore_at = 99;   // >= generations
  spec.engines = {EngineKind::Parallel, EngineKind::Parallel,
                  EngineKind::SerialRestore};
  ASSERT_TRUE(normalize_spec(spec));
  EXPECT_LE(static_cast<pop::SSetId>(spec.nranks), spec.config.ssets);
  // Duplicate engine entries collapse; the restore variant needs a valid
  // split point and is either repaired or dropped.
  EXPECT_EQ(std::count(spec.engines.begin(), spec.engines.end(),
                       EngineKind::Parallel),
            1);
}

TEST(NormalizeSpec, DropsFrozenModeFaultyVariant) {
  CaseSpec spec;
  spec.config = small_config();
  spec.config.fitness_mode = core::FitnessMode::SampledFrozen;
  spec.nranks = 3;
  spec.ft_checkpoint_every = 2;
  spec.kills = {{1, 2}};
  spec.engines = {EngineKind::Parallel, EngineKind::ParallelFtFaulty};
  ASSERT_TRUE(normalize_spec(spec));
  EXPECT_EQ(std::count(spec.engines.begin(), spec.engines.end(),
                       EngineKind::ParallelFtFaulty),
            0);
}

}  // namespace
}  // namespace egt::simcheck
