#include "simcheck/trace.hpp"

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/wire.hpp"
#include "util/rng.hpp"

namespace egt::simcheck {
namespace {

core::TracePoint sample_point(std::uint64_t gen) {
  core::TracePoint p;
  p.generation = gen;
  p.nature.rng = {util::mix64(gen + 1), util::mix64(gen + 2),
                  util::mix64(gen + 3), util::mix64(gen + 4)};
  p.nature.planned = gen + 1;
  p.pc = (gen % 2) == 0;
  p.teacher = static_cast<std::uint32_t>(gen % 7);
  p.learner = static_cast<std::uint32_t>(gen % 5);
  p.adopted = (gen % 3) == 0;
  p.moran = (gen % 4) == 0;
  p.reproducer = static_cast<std::uint32_t>(gen % 11);
  p.dying = static_cast<std::uint32_t>(gen % 13);
  p.mutated = (gen % 5) == 0;
  p.mutation_target = static_cast<std::uint32_t>(gen % 17);
  p.table_hash = util::mix64(gen + 99);
  p.fitness_hash = util::mix64(gen + 123);
  return p;
}

std::vector<core::TracePoint> sample_stream(std::uint64_t n) {
  std::vector<core::TracePoint> points;
  for (std::uint64_t g = 0; g < n; ++g) points.push_back(sample_point(g));
  return points;
}

TEST(TraceCodec, RoundTripsAllFields) {
  const auto points = sample_stream(9);
  const auto decoded = decode_trace(encode_trace(points));
  ASSERT_EQ(decoded.size(), points.size());
  EXPECT_FALSE(compare_traces(points, decoded).has_value());
}

TEST(TraceCodec, EmptyStreamRoundTrips) {
  const std::vector<core::TracePoint> empty;
  EXPECT_TRUE(decode_trace(encode_trace(empty)).empty());
}

TEST(TraceCodec, RejectsTruncationAtEveryLength) {
  const auto blob = encode_trace(sample_stream(3));
  for (std::size_t len = 0; len < blob.size(); ++len) {
    auto cut = blob;
    cut.resize(len);
    EXPECT_THROW((void)decode_trace(cut), core::CheckpointError)
        << "truncated to " << len << " of " << blob.size() << " bytes";
  }
}

TEST(TraceCodec, HexRoundTrips) {
  const auto blob = encode_trace(sample_stream(4));
  EXPECT_EQ(from_hex(to_hex(blob)), blob);
  EXPECT_THROW((void)from_hex("abc"), std::runtime_error);   // odd length
  EXPECT_THROW((void)from_hex("zz"), std::runtime_error);    // non-hex
}

TEST(TraceCompare, ReportsFirstDivergentField) {
  const auto a = sample_stream(6);
  auto b = a;
  b[3].adopted = !b[3].adopted;
  b[5].table_hash ^= 1;  // later divergence must not mask the first
  const auto div = compare_traces(a, b);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(div->generation, 3u);
  EXPECT_NE(div->detail.find("adoption"), std::string::npos) << div->detail;
}

TEST(TraceCompare, LengthMismatchDivergesAtMissingGeneration) {
  const auto a = sample_stream(5);
  const auto b = sample_stream(3);
  const auto div = compare_traces(a, b);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(div->generation, 3u);
}

TEST(TraceCompare, UnrecordedFitnessHashIsNotCompared) {
  const auto a = sample_stream(4);
  auto b = a;
  for (auto& p : b) p.fitness_hash = 0;  // block-owning recorder
  EXPECT_FALSE(compare_traces(a, b).has_value());
}

TEST(TraceRecorderTest, KeysByGenerationLastWriteWins) {
  TraceRecorder rec;
  rec.on_point(sample_point(0));
  rec.on_point(sample_point(2));  // gap at 1
  EXPECT_EQ(rec.contiguous_points().size(), 1u);
  rec.on_point(sample_point(1));
  EXPECT_EQ(rec.contiguous_points().size(), 3u);
  auto replanned = sample_point(2);
  replanned.table_hash = 777;  // ft failover re-emits the crash generation
  rec.on_point(replanned);
  EXPECT_EQ(rec.contiguous_points()[2].table_hash, 777u);
}

TEST(TraceHook, SerialEngineEmitsOnePointPerGeneration) {
  core::SimConfig cfg;
  cfg.ssets = 6;
  cfg.generations = 12;
  cfg.game.rounds = 4;
  cfg.fitness_mode = core::FitnessMode::Analytic;
  cfg.seed = 31;
  TraceRecorder rec;
  core::Engine engine(cfg);
  engine.set_trace(&rec);
  engine.run_all();
  const auto points = rec.contiguous_points();
  ASSERT_EQ(points.size(), cfg.generations);
  for (std::uint64_t g = 0; g < points.size(); ++g) {
    EXPECT_EQ(points[g].generation, g);
    EXPECT_NE(points[g].table_hash, 0u);
    EXPECT_NE(points[g].fitness_hash, 0u);
  }
  EXPECT_EQ(points.back().table_hash, engine.population().table_hash());
}

}  // namespace
}  // namespace egt::simcheck
