#include "simcheck/kernels.hpp"

#include <gtest/gtest.h>

#include "game/simd.hpp"

namespace egt::simcheck {
namespace {

TEST(KernelChecks, FullSuitePasses) {
  const KernelReport report = run_kernel_checks(20120427);
  ASSERT_EQ(report.checks.size(), 4u);
  for (const auto& c : report.checks) {
    EXPECT_TRUE(c.passed) << c.name << ": " << c.detail;
    // The cross-kernel check runs zero cases when the AVX2 kernel is
    // compiled out or the CPU lacks it; every other check always runs.
    if (c.name == "mem1.avx2_vs_scalar" && !report.avx2_available) continue;
    EXPECT_GT(c.cases, 0u) << c.name;
  }
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.avx2_available, game::simd::compiled_with_avx2() &&
                                       game::simd::cpu_supports_avx2());
}

TEST(KernelChecks, DeterministicForASeed) {
  const KernelReport a = run_kernel_checks(7);
  const KernelReport b = run_kernel_checks(7);
  ASSERT_EQ(a.checks.size(), b.checks.size());
  for (std::size_t i = 0; i < a.checks.size(); ++i) {
    EXPECT_EQ(a.checks[i].cases, b.checks[i].cases);
    EXPECT_EQ(a.checks[i].worst_rel, b.checks[i].worst_rel);
  }
}

}  // namespace
}  // namespace egt::simcheck
