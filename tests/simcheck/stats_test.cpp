#include "simcheck/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace egt::simcheck {
namespace {

TEST(Wilson, MatchesHandComputedInterval) {
  // 40/100 at z = 1.96: classic textbook numbers.
  const auto ci = wilson(40, 100, 1.96);
  EXPECT_NEAR(ci.lo, 0.3094, 5e-4);
  EXPECT_NEAR(ci.hi, 0.4980, 5e-4);
  EXPECT_TRUE(ci.contains(0.4));
}

TEST(Wilson, DegenerateCountsStayInsideUnitInterval) {
  const auto all = wilson(50, 50, kZ99TwoSided);
  EXPECT_LE(all.hi, 1.0);
  EXPECT_GT(all.lo, 0.8);
  const auto none = wilson(0, 50, kZ99TwoSided);
  EXPECT_GE(none.lo, 0.0);
  EXPECT_LT(none.hi, 0.2);
  const auto empty = wilson(0, 0, kZ99TwoSided);
  EXPECT_EQ(empty.lo, 0.0);
  EXPECT_EQ(empty.hi, 1.0);
}

TEST(Wilson, WiderConfidenceGivesWiderInterval) {
  const auto narrow = wilson(30, 100, 1.96);
  const auto wide = wilson(30, 100, kZ99TwoSided);
  EXPECT_LT(wide.lo, narrow.lo);
  EXPECT_GT(wide.hi, narrow.hi);
}

TEST(ChiSquareQuantile, ApproximatesTabulatedValues) {
  // Tabulated upper-1% chi-square quantiles; Wilson–Hilferty is good to a
  // few parts in a thousand at these df.
  EXPECT_NEAR(chi_square_quantile99(10), 23.209, 0.15);
  EXPECT_NEAR(chi_square_quantile99(15), 30.578, 0.15);
  EXPECT_NEAR(chi_square_quantile99(30), 50.892, 0.2);
}

TEST(FermiFixation, NeutralLimitIsOneOverN) {
  EXPECT_DOUBLE_EQ(fermi_fixation_probability(0.0, 1.0, 8), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(fermi_fixation_probability(2.0, 0.0, 5), 1.0 / 5.0);
}

TEST(FermiFixation, StrongSelectionApproachesOneMinusGamma) {
  const double beta = 4.0, delta = 1.0;
  const double gamma = std::exp(-beta * delta);
  EXPECT_NEAR(fermi_fixation_probability(delta, beta, 32), 1.0 - gamma,
              1e-12);
}

TEST(FermiFixation, DisadvantageousMutantRarelyFixes) {
  EXPECT_LT(fermi_fixation_probability(-2.0, 1.0, 8), 0.01);
}

TEST(StatisticalSuite, QuickSuitePassesWithPinnedSeed) {
  const auto report = run_statistical_suite(/*seed=*/20120427, /*quick=*/true);
  ASSERT_EQ(report.checks.size(), 10u);
  for (const auto& c : report.checks) {
    EXPECT_TRUE(c.passed) << c.name << ": observed " << c.observed << " in ["
                          << c.expected_lo << ", " << c.expected_hi << "] — "
                          << c.detail;
    EXPECT_FALSE(c.detail.empty());
  }
  EXPECT_TRUE(report.passed());
}

TEST(StatisticalSuite, ReportsAllTenObservables) {
  const auto report = run_statistical_suite(/*seed=*/5, /*quick=*/true);
  ASSERT_EQ(report.checks.size(), 10u);
  EXPECT_EQ(report.checks[0].name, "fermi_adoption_rate");
  EXPECT_EQ(report.checks[1].name, "fixation_probability");
  EXPECT_EQ(report.checks[2].name, "stationary_uniform");
  EXPECT_EQ(report.checks[3].name, "cooperation_rate_noise");
  EXPECT_EQ(report.checks[4].name, "replicator_traj_ipd");
  EXPECT_EQ(report.checks[5].name, "replicator_traj_hawk_dove");
  EXPECT_EQ(report.checks[6].name, "replicator_traj_stag_hunt");
  EXPECT_EQ(report.checks[7].name, "replicator_traj_rps");
  EXPECT_EQ(report.checks[8].name, "moran_exact_closed_form");
  EXPECT_EQ(report.checks[9].name, "moran_mc_vs_exact");
}

TEST(StatisticalSuite, TrajectoryPresetsMatchTheSuiteOrder) {
  const auto& presets = replicator_stat_presets();
  ASSERT_EQ(presets.size(), 4u);
  EXPECT_EQ(presets[0], "ipd");
  EXPECT_EQ(presets[1], "hawk_dove");
  EXPECT_EQ(presets[2], "stag_hunt");
  EXPECT_EQ(presets[3], "rps");
}

TEST(ReplicatorTrajectoryCheck, SweepsPresetsBeyondTheSuiteList) {
  // The nightly sweep runs registry presets outside the default four; the
  // checker must accept any preview-compilable preset by name.
  const auto c =
      check_replicator_trajectory("donation", /*seed=*/20120427,
                                  /*quick=*/true);
  EXPECT_EQ(c.name, "replicator_traj_donation");
  EXPECT_TRUE(c.passed) << c.detail;
}

TEST(ReplicatorTrajectoryCheck, RejectsUnknownPresets) {
  EXPECT_THROW(
      (void)check_replicator_trajectory("no_such_game", 1, true),
      std::invalid_argument);
}

TEST(MoranObservables, ExactSolverCheckIsDeterministic) {
  const auto a = run_statistical_suite(/*seed=*/1, /*quick=*/true).checks[8];
  const auto b = run_statistical_suite(/*seed=*/2, /*quick=*/true).checks[8];
  EXPECT_EQ(a.name, "moran_exact_closed_form");
  // Pure linear algebra: the verdict and the observed relative error are
  // seed-independent, and the tolerance is the 1e-12 acceptance bound.
  EXPECT_TRUE(a.passed);
  EXPECT_DOUBLE_EQ(a.observed, b.observed);
  EXPECT_DOUBLE_EQ(a.expected_hi, 1e-12);
}

}  // namespace
}  // namespace egt::simcheck
