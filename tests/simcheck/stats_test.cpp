#include "simcheck/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace egt::simcheck {
namespace {

TEST(Wilson, MatchesHandComputedInterval) {
  // 40/100 at z = 1.96: classic textbook numbers.
  const auto ci = wilson(40, 100, 1.96);
  EXPECT_NEAR(ci.lo, 0.3094, 5e-4);
  EXPECT_NEAR(ci.hi, 0.4980, 5e-4);
  EXPECT_TRUE(ci.contains(0.4));
}

TEST(Wilson, DegenerateCountsStayInsideUnitInterval) {
  const auto all = wilson(50, 50, kZ99TwoSided);
  EXPECT_LE(all.hi, 1.0);
  EXPECT_GT(all.lo, 0.8);
  const auto none = wilson(0, 50, kZ99TwoSided);
  EXPECT_GE(none.lo, 0.0);
  EXPECT_LT(none.hi, 0.2);
  const auto empty = wilson(0, 0, kZ99TwoSided);
  EXPECT_EQ(empty.lo, 0.0);
  EXPECT_EQ(empty.hi, 1.0);
}

TEST(Wilson, WiderConfidenceGivesWiderInterval) {
  const auto narrow = wilson(30, 100, 1.96);
  const auto wide = wilson(30, 100, kZ99TwoSided);
  EXPECT_LT(wide.lo, narrow.lo);
  EXPECT_GT(wide.hi, narrow.hi);
}

TEST(ChiSquareQuantile, ApproximatesTabulatedValues) {
  // Tabulated upper-1% chi-square quantiles; Wilson–Hilferty is good to a
  // few parts in a thousand at these df.
  EXPECT_NEAR(chi_square_quantile99(10), 23.209, 0.15);
  EXPECT_NEAR(chi_square_quantile99(15), 30.578, 0.15);
  EXPECT_NEAR(chi_square_quantile99(30), 50.892, 0.2);
}

TEST(FermiFixation, NeutralLimitIsOneOverN) {
  EXPECT_DOUBLE_EQ(fermi_fixation_probability(0.0, 1.0, 8), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(fermi_fixation_probability(2.0, 0.0, 5), 1.0 / 5.0);
}

TEST(FermiFixation, StrongSelectionApproachesOneMinusGamma) {
  const double beta = 4.0, delta = 1.0;
  const double gamma = std::exp(-beta * delta);
  EXPECT_NEAR(fermi_fixation_probability(delta, beta, 32), 1.0 - gamma,
              1e-12);
}

TEST(FermiFixation, DisadvantageousMutantRarelyFixes) {
  EXPECT_LT(fermi_fixation_probability(-2.0, 1.0, 8), 0.01);
}

TEST(StatisticalSuite, QuickSuitePassesWithPinnedSeed) {
  const auto report = run_statistical_suite(/*seed=*/20120427, /*quick=*/true);
  ASSERT_EQ(report.checks.size(), 4u);
  for (const auto& c : report.checks) {
    EXPECT_TRUE(c.passed) << c.name << ": observed " << c.observed << " in ["
                          << c.expected_lo << ", " << c.expected_hi << "] — "
                          << c.detail;
    EXPECT_FALSE(c.detail.empty());
  }
  EXPECT_TRUE(report.passed());
}

TEST(StatisticalSuite, ReportsAllFourObservables) {
  const auto report = run_statistical_suite(/*seed=*/5, /*quick=*/true);
  ASSERT_EQ(report.checks.size(), 4u);
  EXPECT_EQ(report.checks[0].name, "fermi_adoption_rate");
  EXPECT_EQ(report.checks[1].name, "fixation_probability");
  EXPECT_EQ(report.checks[2].name, "stationary_uniform");
  EXPECT_EQ(report.checks[3].name, "cooperation_rate_noise");
}

}  // namespace
}  // namespace egt::simcheck
