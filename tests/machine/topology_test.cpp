#include "machine/topology.hpp"

#include <gtest/gtest.h>

namespace egt::machine {
namespace {

TEST(Torus, PowerOfTwoCountsGetPowerOfTwoBoxes) {
  for (std::uint64_t p : {1u, 2u, 8u, 128u, 1024u, 262144u}) {
    const Torus3D t(p);
    EXPECT_EQ(t.nodes(), p) << p;
    EXPECT_TRUE(t.power_of_two_shape()) << t.to_string();
    EXPECT_DOUBLE_EQ(t.mapping_penalty(), 1.0);
  }
}

TEST(Torus, DimsAreNearCubic) {
  const Torus3D t(262144);  // 2^18 -> 64 x 64 x 64
  const auto d = t.dims();
  EXPECT_EQ(d[0], 64u);
  EXPECT_EQ(d[1], 64u);
  EXPECT_EQ(d[2], 64u);
}

TEST(Torus, NonPowerOfTwoPartitionGetsPenalty) {
  // The paper's 72-rack case: 294,912 = 2^15 * 9 processors.
  const Torus3D t(294912);
  EXPECT_EQ(t.nodes(), 294912u);
  EXPECT_FALSE(t.power_of_two_shape());
  EXPECT_NEAR(t.mapping_penalty(), 1.15, 1e-12);
}

TEST(Torus, ExplicitDims) {
  const Torus3D t(4, 2, 8);
  EXPECT_EQ(t.nodes(), 64u);
  EXPECT_EQ(t.to_string(), "4x2x8");
}

TEST(Torus, SingleNodeHasZeroDistance) {
  const Torus3D t(1);
  EXPECT_DOUBLE_EQ(t.average_hops(), 0.0);
  EXPECT_EQ(t.diameter(), 0u);
}

TEST(Torus, AverageHopsOfSmallRing) {
  // Ring of 4 per dimension: distances {0,1,2,1}, mean 1 per dimension.
  const Torus3D t(4, 4, 4);
  EXPECT_DOUBLE_EQ(t.average_hops(), 3.0);
  EXPECT_EQ(t.diameter(), 6u);
}

TEST(Torus, AverageHopsGrowsWithMachineSize) {
  EXPECT_LT(Torus3D(64).average_hops(), Torus3D(4096).average_hops());
  EXPECT_LT(Torus3D(4096).average_hops(), Torus3D(262144).average_hops());
}

TEST(Torus, BisectionLinksScaleWithCrossSection) {
  const Torus3D t(8, 8, 8);
  EXPECT_DOUBLE_EQ(t.bisection_links(), 4.0 * 64.0);
}

TEST(Torus, RejectsZeroNodes) {
  EXPECT_THROW(Torus3D(0), std::invalid_argument);
  EXPECT_THROW(Torus3D(0, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace egt::machine
