#include "machine/perfsim.hpp"

#include <gtest/gtest.h>

namespace egt::machine {
namespace {

Workload small_study() {
  // Table VI setting: 1,024 SSets, 1,000 generations, pc_rate 0.01.
  Workload w;
  w.memory = 1;
  w.ssets = 1024;
  w.generations = 1000;
  w.pc_rate = 0.01;
  w.mutation_rate = 0.05;
  return w;
}

TEST(PerfSim, MoreProcessorsNeverSlowerOnComputeBoundRuns) {
  const PerfSimulator sim(bluegene_l());
  double prev = 1e30;
  for (std::uint64_t p : {128u, 256u, 512u, 1024u, 2048u}) {
    const auto r = sim.simulate(small_study(), p);
    EXPECT_LT(r.total_seconds, prev) << p;
    prev = r.total_seconds;
  }
}

TEST(PerfSim, ComputeDominatesAtSmallScaleCommAtHuge) {
  const PerfSimulator sim(bluegene_p());
  Workload w = small_study();
  w.memory = 6;
  const auto small = sim.simulate(w, 128);
  EXPECT_GT(small.compute_seconds, small.comm_seconds);
  // Strong-scaled to vastly more processors than work, communication and
  // overhead take over.
  const auto huge = sim.simulate(w, 262144);
  EXPECT_LT(huge.compute_seconds / huge.total_seconds, 0.7);
}

TEST(PerfSim, StrongScalingEfficiencyDegradesGracefully) {
  const PerfSimulator sim(bluegene_l());
  const auto base = sim.simulate(small_study(), 128);
  const auto r512 = sim.simulate(small_study(), 512);
  const auto r2048 = sim.simulate(small_study(), 2048);
  const double e512 = strong_scaling_efficiency(base, r512);
  const double e2048 = strong_scaling_efficiency(base, r2048);
  EXPECT_LE(e512, 1.02);
  EXPECT_GT(e512, 0.5);
  EXPECT_LT(e2048, e512);  // efficiency decreases with processor count
}

TEST(PerfSim, WeakScalingIsNearlyFlat) {
  // Fig. 6: constant work per processor, runtime ~constant from 1k to 262k.
  const PerfSimulator sim(bluegene_p());
  Workload w;
  w.memory = 6;
  w.generations = 100;
  w.pc_rate = 0.01;
  w.games_per_sset = 256;  // fixed per-SSet game count (see EXPERIMENTS.md)
  std::vector<double> times;
  for (std::uint64_t p : {1024u, 8192u, 65536u, 262144u}) {
    w.ssets = 4096 * p;  // 4,096 SSets per processor
    times.push_back(sim.simulate(w, p).total_seconds);
  }
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_NEAR(times[i] / times[0], 1.0, 0.05) << i;
  }
}

TEST(PerfSim, EventCountsFollowRates) {
  const PerfSimulator sim(bluegene_l());
  Workload w = small_study();
  w.generations = 20000;
  w.pc_rate = 0.1;
  w.mutation_rate = 0.05;
  const auto r = sim.simulate(w, 256);
  EXPECT_NEAR(static_cast<double>(r.pc_events) / 20000.0, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(r.mutations) / 20000.0, 0.05, 0.007);
}

TEST(PerfSim, MutationPayloadGrowsWithMemory) {
  const PerfSimulator sim(bluegene_l());
  Workload w1 = small_study();
  w1.mutation_rate = 1.0;  // every generation ships a strategy
  Workload w6 = w1;
  w6.memory = 6;
  const auto r1 = sim.simulate(w1, 256);
  const auto r6 = sim.simulate(w6, 256);
  EXPECT_GT(r6.bytes_broadcast, r1.bytes_broadcast);
}

TEST(PerfSim, NonPowerOfTwoPaysMappingPenalty) {
  const PerfSimulator sim(bluegene_p());
  Workload w = small_study();
  const auto good = sim.simulate(w, 262144);
  const auto bad = sim.simulate(w, 294912);  // 72 racks
  EXPECT_DOUBLE_EQ(good.mapping_penalty, 1.0);
  EXPECT_NEAR(bad.mapping_penalty, 1.15, 1e-12);
}

TEST(PerfSim, LinearLookupCostsMoreThanIndexed) {
  const PerfSimulator sim(bluegene_l());
  Workload w = small_study();
  w.memory = 4;
  const auto fast = sim.simulate(w, 256, game::LookupMode::Indexed);
  const auto slow = sim.simulate(w, 256, game::LookupMode::LinearSearch);
  EXPECT_GT(slow.compute_seconds, 2.0 * fast.compute_seconds);
}

TEST(PerfSim, MemoryFeasibilityCheck) {
  const PerfSimulator sim(bluegene_l());
  Workload w = small_study();
  w.memory = 6;
  EXPECT_TRUE(sim.simulate(w, 256).fits_in_memory);
  // Mixed memory-six strategies: 32 KB each; a million SSets on few nodes
  // would blow the 512 MB of a BG/L node.
  w.pure_strategies = false;
  w.ssets = 1u << 20;
  EXPECT_FALSE(sim.simulate(w, 16).fits_in_memory);
}

TEST(PerfSim, MoranRuleCostsFarMoreCommAtScale) {
  const PerfSimulator sim(bluegene_p());
  Workload w = small_study();
  w.ssets = 1u << 22;
  w.games_per_sset = 1;
  w.memory = 6;
  const auto pc = sim.simulate(w, 262144);
  w.moran_rule = true;
  const auto moran = sim.simulate(w, 262144);
  EXPECT_GT(moran.comm_seconds, 10.0 * pc.comm_seconds);
  EXPECT_GT(moran.bytes_p2p, pc.bytes_p2p);
}

TEST(PerfSim, NatureOverheadExtendsRuntimeLinearly) {
  const PerfSimulator sim(bluegene_l());
  Workload w = small_study();
  const auto base = sim.simulate(w, 512);
  w.nature_overhead_us = 5000.0;
  const auto slow = sim.simulate(w, 512);
  EXPECT_NEAR(slow.total_seconds - base.total_seconds,
              5e-3 * static_cast<double>(w.generations), 1e-6);
}

TEST(PerfSim, ReportIsDeterministic) {
  const PerfSimulator sim(bluegene_l());
  const auto a = sim.simulate(small_study(), 512);
  const auto b = sim.simulate(small_study(), 512);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.pc_events, b.pc_events);
}

TEST(PerfSim, RejectsBadArguments) {
  const PerfSimulator sim(bluegene_l());
  EXPECT_THROW((void)sim.simulate(small_study(), 0), std::invalid_argument);
  Workload w = small_study();
  w.generations = 0;
  EXPECT_THROW((void)sim.simulate(w, 16), std::invalid_argument);
}

}  // namespace
}  // namespace egt::machine
