#include "machine/costmodel.hpp"

#include <gtest/gtest.h>

namespace egt::machine {
namespace {

TEST(CostModel, DefaultTableIsMonotoneInMemoryForLinearSearch) {
  const auto t = default_round_costs();
  for (int m = 1; m <= 6; ++m) {
    EXPECT_GT(t.linear_ns[static_cast<std::size_t>(m)],
              t.linear_ns[static_cast<std::size_t>(m - 1)])
        << "memory " << m;
  }
}

TEST(CostModel, LinearSearchNeverBeatsIndexed) {
  const auto t = default_round_costs();
  for (int m = 0; m <= 6; ++m) {
    EXPECT_GE(t.ns(m, game::LookupMode::LinearSearch),
              t.ns(m, game::LookupMode::Indexed));
  }
}

TEST(CostModel, ScalesWithMachineComputeFactor) {
  const auto table = default_round_costs();
  const CostModel host(table, calibration_host());
  const CostModel bgl(table, bluegene_l());
  EXPECT_GT(bgl.round_seconds(1, game::LookupMode::Indexed),
            5.0 * host.round_seconds(1, game::LookupMode::Indexed));
}

TEST(CostModel, CalibrationProducesPositiveMonotoneCosts) {
  // Tiny sample: just verifies plumbing, not statistical quality.
  const auto t = calibrate_host(/*sample_rounds=*/40000, /*seed=*/3);
  for (int m = 0; m <= 6; ++m) {
    ASSERT_GT(t.indexed_ns[static_cast<std::size_t>(m)], 0.0);
    ASSERT_GT(t.linear_ns[static_cast<std::size_t>(m)], 0.0);
  }
  // Linear search across 4096 states must dwarf indexed lookup at mem-6.
  EXPECT_GT(t.linear_ns[6], 3.0 * t.indexed_ns[6]);
}

TEST(StrategyTableBytes, PureAndMixedSizes) {
  // 1,024 memory-six pure strategies: 1024 * 4096 bits = 512 KiB.
  EXPECT_DOUBLE_EQ(strategy_table_bytes(1024, 6, true), 512.0 * 1024);
  // Mixed stores a double per state.
  EXPECT_DOUBLE_EQ(strategy_table_bytes(1024, 1, false), 1024.0 * 4 * 8);
}

TEST(StrategyTableBytes, PaperMemoryLimitStory) {
  // §VI-B.1: the state matrix must fit in the 512 MB BG/L node. A billion
  // SSets of memory-6 pure strategies would need ~512 GB — the replicated
  // table is only feasible because each node keeps the strategies it needs.
  EXPECT_GT(strategy_table_bytes(1u << 30, 6, true),
            bluegene_l().memory_per_node_bytes);
  EXPECT_LT(strategy_table_bytes(4096, 6, true),
            bluegene_l().memory_per_node_bytes);
}

TEST(MaxMemorySteps, BglSupportsMemorySixAtPaperScales) {
  // The paper ran memory-six with 1,024 SSets on BG/L — the table fits.
  EXPECT_EQ(max_memory_steps(bluegene_l(), 1024, true), 6);
  // Mixed (probabilistic) memory-six tables are 64x larger but still fit
  // at 1,024 SSets.
  EXPECT_EQ(max_memory_steps(bluegene_l(), 1024, false), 6);
  // A hundred million SSets of replicated pure tables no longer do.
  EXPECT_LT(max_memory_steps(bluegene_l(), 100'000'000, true), 6);
}

TEST(MaxMemorySteps, TinyNodeDegradesGracefully) {
  MachineSpec tiny = bluegene_l();
  tiny.memory_per_node_bytes = 100.0;  // 100 bytes
  EXPECT_EQ(max_memory_steps(tiny, 1024, true), -1);
  tiny.memory_per_node_bytes = 2048.0;
  EXPECT_GE(max_memory_steps(tiny, 1024, true), 0);
  EXPECT_LT(max_memory_steps(tiny, 1024, true), 3);
}

TEST(MachineSpecs, PresetsAreDistinctAndNamed) {
  EXPECT_EQ(bluegene_l().name, "BlueGene/L");
  EXPECT_EQ(bluegene_p().name, "BlueGene/P");
  EXPECT_GT(bluegene_l().compute_scale, bluegene_p().compute_scale);
  EXPECT_GT(bluegene_p().memory_per_node_bytes,
            bluegene_l().memory_per_node_bytes);
  EXPECT_EQ(spec_by_name("bgl").name, "BlueGene/L");
  EXPECT_EQ(spec_by_name("host").compute_scale, 1.0);
  EXPECT_THROW(spec_by_name("cray"), std::invalid_argument);
}

}  // namespace
}  // namespace egt::machine
